"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in fully offline environments where pip's
PEP 517 editable-install path is unavailable (no ``wheel`` package and no
network access), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
