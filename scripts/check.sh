#!/usr/bin/env bash
# Tier-1 repo check: byte-compile the package and run the fast test profile.
#
# Usage: scripts/check.sh [--serve] [extra pytest args...]
# Examples:
#   scripts/check.sh                 # compileall + fast tier-1 tests
#   scripts/check.sh --serve         # compileall + the opt-in serve lane
#                                    # (HTTP e2e, sharding, adaptive QoS)
#   scripts/check.sh -m slow         # compileall + the slow lane
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
# (No intermediate array: expanding an empty array under `set -u` breaks
# on bash < 4.4, e.g. macOS's default bash 3.2.)
if [[ "${1:-}" == "--serve" ]]; then
    shift
    python -m pytest -x -q -m serve "$@"
else
    python -m pytest -x -q "$@"
fi
