#!/usr/bin/env bash
# Tier-1 repo check: byte-compile the package and run the fast test profile.
#
# Usage: scripts/check.sh [--serve|--telemetry|--alerts|--trace|--cluster|--chaos|--soak|--soak-long]
#                         [extra args...]
# Examples:
#   scripts/check.sh                 # compileall + fast tier-1 tests
#   scripts/check.sh --serve         # compileall + the opt-in serve lane
#                                    # (HTTP e2e, sharding, adaptive QoS)
#   scripts/check.sh --telemetry     # compileall + every telemetry test
#                                    # (bus/timeline/coordinator tier-1
#                                    # plus the SSE/dashboard e2e)
#   scripts/check.sh --alerts        # compileall + the alert suite (unit,
#                                    # stateful lifecycle properties, and
#                                    # the chaos degradation contract)
#   scripts/check.sh --trace         # compileall + the tracing suite
#                                    # (tracer units, span-tree properties,
#                                    # HTTP/cluster propagation e2e, and
#                                    # the chaos trace-survives-kill test)
#   scripts/check.sh --cluster       # compileall + every cluster test
#                                    # (documents/membership/ledger/socket
#                                    # tier-1 plus the two-process CLI
#                                    # worker demo over localhost sockets)
#   scripts/check.sh --chaos         # compileall + the fault-injection
#                                    # conformance suite (kills, corruption,
#                                    # frozen peers; deterministic seeds)
#   scripts/check.sh --soak          # timed soak: full stack under churn
#                                    # (extra args go to repro.chaos.soak,
#                                    # e.g. --soak --duration 300)
#   scripts/check.sh --soak-long     # soak with the trend profile: RSS and
#                                    # spool growth sampled and asserted
#                                    # bounded, network+disk faults on
#   scripts/check.sh -m slow         # compileall + the slow lane
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
# (No intermediate array: expanding an empty array under `set -u` breaks
# on bash < 4.4, e.g. macOS's default bash 3.2.)
if [[ "${1:-}" == "--serve" ]]; then
    shift
    python -m pytest -x -q -m serve "$@"
elif [[ "${1:-}" == "--telemetry" ]]; then
    shift
    # The whole telemetry suite, serve-marked SSE/dashboard e2e included,
    # plus the serving-side telemetry integration tests.
    python -m pytest -x -q -m "" tests/telemetry \
        tests/serve/test_telemetry_serve.py "$@"
elif [[ "${1:-}" == "--alerts" ]]; then
    shift
    # Alert engine end to end: rule/sink/history unit tests, the stateful
    # lifecycle machine, and the chaos-lane degradation contract (alert
    # fires during an injected replica kill, resolves after recovery).
    python -m pytest -x -q -m "" \
        tests/telemetry/test_alerts.py \
        tests/telemetry/test_alerts_stateful.py \
        tests/chaos/test_chaos_alerts.py "$@"
elif [[ "${1:-}" == "--trace" ]]; then
    shift
    # Everything trace-marked: sampling/exemplar units, Hypothesis
    # span-tree well-formedness under concurrent batching, the HTTP
    # front-door waterfall, cluster trace propagation, and the chaos
    # trace-survives-replica-kill contract.
    python -m pytest -x -q -m trace "$@"
elif [[ "${1:-}" == "--cluster" ]]; then
    shift
    # The whole cluster suite: the socket-free tier-1 tests plus the
    # cluster-marked two-process demo (a real `repro.cli worker` child
    # leasing sweep points over localhost sockets).
    python -m pytest -x -q -m "" tests/cluster "$@"
elif [[ "${1:-}" == "--chaos" ]]; then
    shift
    python -m pytest -x -q -m chaos "$@"
elif [[ "${1:-}" == "--soak" ]]; then
    shift
    python -m repro.chaos.soak "$@"
elif [[ "${1:-}" == "--soak-long" ]]; then
    shift
    python -m repro.chaos.soak --long "$@"
else
    python -m pytest -x -q "$@"
fi
