#!/usr/bin/env bash
# Tier-1 repo check: byte-compile the package and run the fast test profile.
#
# Usage: scripts/check.sh [extra pytest args...]
# Examples:
#   scripts/check.sh                 # compileall + fast tests
#   scripts/check.sh -m serve        # compileall + the opt-in serving lane
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo "== pytest =="
python -m pytest -x -q "$@"
