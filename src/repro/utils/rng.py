"""Deterministic random-number handling.

Every stochastic component in the reproduction (dataset generation, weight
initialization, training shuffles, synthetic hardware testbenches) draws from
a :class:`numpy.random.Generator` created through :func:`new_rng`, so that
experiments are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import random

import numpy as np

#: Seed used across the repository when no explicit seed is given.
DEFAULT_SEED = 2020


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new, independent NumPy random generator.

    Parameters
    ----------
    seed:
        Seed for the generator.  ``None`` falls back to :data:`DEFAULT_SEED`
        (not to OS entropy) so that "unseeded" code stays reproducible.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def seed_everything(seed: int = DEFAULT_SEED) -> None:
    """Seed Python's and NumPy's global random state.

    Library code never uses the global state, but user scripts and tests may;
    seeding it keeps ad-hoc experimentation reproducible too.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))


def derive_seed(base_seed: int, *tags: object) -> int:
    """Derive a child seed from a base seed and a sequence of tags.

    Used to give each model / dataset / experiment an independent but
    deterministic random stream, e.g. ``derive_seed(2020, "resnet18", "init")``.
    """
    text = f"{base_seed}::" + "::".join(str(tag) for tag in tags)
    digest = 0
    for char in text:
        digest = (digest * 1000003 + ord(char)) % (2**31 - 1)
    return digest
