"""Per-directory disk budgets: quota, count-and-degrade, never raise.

Three subsystems write unbounded-ish streams to disk -- the telemetry
event spools (:mod:`repro.telemetry.bus`), the shard metrics/QoS exchange
(:mod:`repro.serve.sharding`) and the content-addressed sweep results
store (:mod:`repro.eval.sweep`).  All of them are *auxiliary* to the
serving and evaluation hot paths: running a disk out of space must degrade
them (drop an event, skip a publish, refuse to persist an artifact) with a
counter, never raise ``ENOSPC`` into the path that computes answers.

:class:`DiskBudget` is the shared mechanism: a byte quota over one
directory, tracked incrementally (``admit`` charges, ``release`` credits)
and re-grounded by periodic rescans of the real directory usage -- so
rotation, external deletion and foreign writers (a
:class:`~repro.chaos.actors.DiskFiller` squeezing the quota, a crashed
peer's leftover files) are all observed within one rescan interval.
Writers consult ``admit`` before writing and report write-time ``ENOSPC``
via ``note_enospc``; both degrade paths count into the budget's snapshot
so dashboards and chaos verdicts can see exactly what was shed.
"""

from __future__ import annotations

import errno
import os
import threading
import time


def directory_bytes(directory: str) -> int:
    """Total size of the regular files directly under ``directory``.

    Spool/exchange/store directories are flat by construction; a vanished
    directory (torn down mid-shutdown) counts as empty.
    """
    total = 0
    try:
        with os.scandir(directory) as entries:
            for entry in entries:
                try:
                    if entry.is_file(follow_symlinks=False):
                        total += entry.stat(follow_symlinks=False).st_size
                except OSError:
                    continue
    except OSError:
        return 0
    return total


def is_enospc(exc: OSError) -> bool:
    """Whether an ``OSError`` is the disk-full family (ENOSPC/EDQUOT)."""
    return exc.errno in (errno.ENOSPC, getattr(errno, "EDQUOT", errno.ENOSPC))


class DiskBudget:
    """A byte quota over one directory, with degrade accounting.

    ``admit(nbytes)`` answers whether a write of ``nbytes`` fits the quota
    and charges it; a refused write is counted (``denied_writes`` /
    ``denied_bytes``).  ``max_bytes <= 0`` means unlimited (every write
    admitted) -- the accounting still runs, so an unlimited budget is a
    free usage probe.  The incremental estimate is re-grounded against the
    real directory every ``rescan_interval_s`` (files deleted by rotation
    or reaping, foreign files appearing) so the charge never drifts far
    from the truth.

    Thread-safe: spool writers append from batcher worker threads while
    the chaos :class:`~repro.chaos.actors.DiskFiller` squeezes the quota
    from the schedule thread.
    """

    def __init__(
        self,
        directory: str,
        max_bytes: int = 0,
        *,
        name: str = "disk",
        rescan_interval_s: float = 2.0,
        clock=time.monotonic,
    ):
        self.directory = str(directory)
        self.name = name
        self.rescan_interval_s = float(rescan_interval_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._max_bytes = int(max_bytes)
        self._used = directory_bytes(self.directory)
        self._scanned_at = self._clock()
        self.denied_writes = 0
        self.denied_bytes = 0
        self.enospc_errors = 0

    # -- quota -------------------------------------------------------------
    @property
    def max_bytes(self) -> int:
        with self._lock:
            return self._max_bytes

    def set_max_bytes(self, max_bytes: int) -> None:
        """Re-size the quota (the :class:`DiskFiller`'s squeeze point)."""
        with self._lock:
            self._max_bytes = int(max_bytes)

    @property
    def limited(self) -> bool:
        with self._lock:
            return self._max_bytes > 0

    # -- usage tracking ----------------------------------------------------
    def _maybe_rescan(self) -> None:
        now = self._clock()
        if now - self._scanned_at >= self.rescan_interval_s:
            self._used = directory_bytes(self.directory)
            self._scanned_at = now

    def usage_bytes(self, refresh: bool = False) -> int:
        with self._lock:
            if refresh:
                self._used = directory_bytes(self.directory)
                self._scanned_at = self._clock()
            else:
                self._maybe_rescan()
            return self._used

    def release(self, nbytes: int) -> None:
        """Credit bytes reclaimed by the caller (a deleted generation)."""
        with self._lock:
            self._used = max(0, self._used - int(nbytes))

    # -- the degrade contract ---------------------------------------------
    def admit(self, nbytes: int) -> bool:
        """Charge a write of ``nbytes`` if it fits; count the denial if not."""
        nbytes = max(0, int(nbytes))
        with self._lock:
            self._maybe_rescan()
            if self._max_bytes > 0 and self._used + nbytes > self._max_bytes:
                self.denied_writes += 1
                self.denied_bytes += nbytes
                return False
            self._used += nbytes
            return True

    def note_enospc(self) -> None:
        """Record a write that failed with ``ENOSPC`` despite admission."""
        with self._lock:
            self.enospc_errors += 1

    @property
    def degraded(self) -> bool:
        """Whether this budget has ever had to shed a write."""
        with self._lock:
            return bool(self.denied_writes or self.enospc_errors)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "directory": self.directory,
                "max_bytes": self._max_bytes,
                "used_bytes": self._used,
                "denied_writes": self.denied_writes,
                "denied_bytes": self.denied_bytes,
                "enospc_errors": self.enospc_errors,
                "degraded": bool(self.denied_writes or self.enospc_errors),
            }
