"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; this
module renders them as aligned monospace tables without external deps.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render ``headers`` and ``rows`` as an aligned plain-text table."""
    rendered_rows = [[_render_cell(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_mapping(mapping: dict[str, object], float_fmt: str = ".3f") -> str:
    """Render a flat ``key: value`` mapping, one entry per line."""
    lines = []
    for key, value in mapping.items():
        lines.append(f"{key}: {_render_cell(value, float_fmt)}")
    return "\n".join(lines)
