"""Shared utilities: deterministic RNG, result caching and table rendering."""

from repro.utils.rng import new_rng, seed_everything
from repro.utils.cache import ArtifactCache, default_cache
from repro.utils.tables import format_table

__all__ = [
    "new_rng",
    "seed_everything",
    "ArtifactCache",
    "default_cache",
    "format_table",
]
