"""On-disk caching of expensive artifacts (trained models, calibration data).

Training even the scaled-down CNN zoo takes tens of seconds per model, and
several benchmarks share the same trained checkpoints.  The cache stores NumPy
archives keyed by a configuration hash under ``<repo>/artifacts`` (or the
directory given by the ``REPRO_CACHE_DIR`` environment variable).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np


def _stable_hash(config: dict) -> str:
    """Return a short, stable hash of a JSON-serializable configuration."""
    encoded = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def default_cache_dir() -> Path:
    """Resolve the cache directory (env var override, else ``./artifacts``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.cwd() / "artifacts"


class ArtifactCache:
    """A tiny content-addressed store for dictionaries of NumPy arrays."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, name: str, config: dict) -> Path:
        return self.root / f"{name}-{_stable_hash(config)}.npz"

    def has(self, name: str, config: dict) -> bool:
        """Return whether an artifact for this name/config pair exists."""
        return self._path(name, config).exists()

    def load(self, name: str, config: dict) -> dict[str, np.ndarray] | None:
        """Load a cached artifact, or ``None`` when absent or unreadable."""
        path = self._path(name, config)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {key: archive[key] for key in archive.files}
        except (OSError, ValueError):
            return None

    def save(self, name: str, config: dict, arrays: dict[str, np.ndarray]) -> Path:
        """Persist a dictionary of arrays; returns the file path."""
        path = self._path(name, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **arrays)
        return path


_DEFAULT_CACHE: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """Return the process-wide default :class:`ArtifactCache`."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ArtifactCache()
    return _DEFAULT_CACHE
