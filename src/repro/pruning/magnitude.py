"""Iterative magnitude pruning with retraining.

The paper uses "simple magnitude-based pruning that iteratively prunes a
certain percentage of the model weights followed by retraining" (Section
V-A, after Han et al.).  We prune convolution weights layer-wise by magnitude,
retrain for a few epochs with the pruned weights masked to zero, and repeat
until the target sparsity is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers.conv import Conv2d
from repro.nn.module import Module, Parameter
from repro.nn.train import TrainConfig, Trainer


@dataclass
class PruningSchedule:
    """How to reach the target sparsity."""

    target_sparsity: float
    steps: int = 2
    retrain_epochs: int = 2
    lr: float = 0.01

    def __post_init__(self):
        if not 0.0 <= self.target_sparsity < 1.0:
            raise ValueError("target_sparsity must lie in [0, 1)")
        if self.steps < 1:
            raise ValueError("steps must be positive")


def _prunable_parameters(model: Module) -> dict[str, Parameter]:
    """Convolution weights are the pruning targets (biases and BN are kept)."""
    params: dict[str, Parameter] = {}
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            params[f"{name}.weight"] = module.weight
    return params


def magnitude_masks(
    model: Module, sparsity: float
) -> dict[str, np.ndarray]:
    """Per-layer binary masks keeping the largest-magnitude weights.

    The same fraction is pruned in every convolution layer (layer-wise
    unstructured pruning).
    """
    masks: dict[str, np.ndarray] = {}
    for name, param in _prunable_parameters(model).items():
        values = np.abs(param.value).reshape(-1)
        if sparsity <= 0.0:
            masks[name] = np.ones_like(param.value, dtype=bool)
            continue
        cutoff_index = int(np.floor(sparsity * values.size))
        cutoff_index = min(max(cutoff_index, 0), values.size - 1)
        threshold = np.partition(values, cutoff_index)[cutoff_index]
        masks[name] = np.abs(param.value) > threshold
    return masks


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero out the pruned weights in place."""
    params = _prunable_parameters(model)
    for name, mask in masks.items():
        params[name].value *= mask


def sparsity_of(model: Module) -> float:
    """Fraction of zero-valued convolution weights in the model."""
    params = _prunable_parameters(model)
    total = sum(param.size for param in params.values())
    zeros = sum(int((param.value == 0).sum()) for param in params.values())
    if total == 0:
        return 0.0
    return zeros / total


class _MaskedTrainer(Trainer):
    """Trainer that re-applies pruning masks after every optimizer step."""

    def __init__(self, model: Module, config: TrainConfig, masks: dict[str, np.ndarray]):
        super().__init__(model, config)
        self._masks = masks
        original_step = self.optimizer.step

        def masked_step() -> None:
            original_step()
            apply_masks(model, self._masks)

        self.optimizer.step = masked_step  # type: ignore[method-assign]


def iterative_magnitude_prune(
    model: Module,
    train_images: np.ndarray,
    train_labels: np.ndarray,
    schedule: PruningSchedule,
    val_images: np.ndarray | None = None,
    val_labels: np.ndarray | None = None,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Prune ``model`` in place to the target sparsity; returns the final masks."""
    masks: dict[str, np.ndarray] = {}
    for step in range(1, schedule.steps + 1):
        step_sparsity = schedule.target_sparsity * step / schedule.steps
        masks = magnitude_masks(model, step_sparsity)
        apply_masks(model, masks)
        if schedule.retrain_epochs > 0:
            config = TrainConfig(
                epochs=schedule.retrain_epochs,
                lr=schedule.lr,
                lr_decay_epochs=(),
                seed=seed + step,
            )
            trainer = _MaskedTrainer(model, config, masks)
            trainer.fit(train_images, train_labels, val_images, val_labels)
            apply_masks(model, masks)
    model.eval()
    return masks
