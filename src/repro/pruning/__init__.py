"""Weight pruning used by the paper's 4-thread study (Fig. 10)."""

from repro.pruning.magnitude import (
    PruningSchedule,
    apply_masks,
    iterative_magnitude_prune,
    magnitude_masks,
    sparsity_of,
)

__all__ = [
    "PruningSchedule",
    "magnitude_masks",
    "apply_masks",
    "iterative_magnitude_prune",
    "sparsity_of",
]
