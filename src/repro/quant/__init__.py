"""Post-training quantization: the paper's 8-bit baseline and PTQ comparisons.

The paper quantizes each CNN with "a simple 8-bit uniform min-max
quantization, using symmetric unsigned quantization for activations and
symmetric signed quantization for weights", per-layer for activations and
per-kernel for weights, after a short statistics-gathering (calibration) run
(Section V-A).  This subpackage implements that pipeline, the whole-model
robustness sweeps of Fig. 7, and the static 4-bit PTQ baselines (ACIQ / LBQ
style) used in Tables IV and V.
"""

from repro.quant.quantizer import (
    QuantizedTensor,
    WeightQuantization,
    dequantize,
    quantize_activations,
    quantize_weights_per_channel,
)
from repro.quant.engine import ExactEngine, IntMatmulEngine, LayerContext
from repro.quant.calibration import CalibrationResult, calibrate_model
from repro.quant.qmodel import QuantizedModel, QuantConfig
from repro.quant.robustness import ReducedPrecisionEngine, robustness_sweep
from repro.quant.baselines import aciq_clip_engine, lbq_search_engine

__all__ = [
    "QuantizedTensor",
    "WeightQuantization",
    "quantize_activations",
    "quantize_weights_per_channel",
    "dequantize",
    "IntMatmulEngine",
    "ExactEngine",
    "LayerContext",
    "CalibrationResult",
    "calibrate_model",
    "QuantizedModel",
    "QuantConfig",
    "ReducedPrecisionEngine",
    "robustness_sweep",
    "aciq_clip_engine",
    "lbq_search_engine",
]
