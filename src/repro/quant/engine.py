"""Integer matmul engine interface.

A quantized convolution/linear layer is executed as an integer matrix
multiplication between unsigned 8-bit activations ``X`` (shape ``(M, K)``)
and signed 8-bit weights ``W`` (shape ``(K, N)``).  The *engine* decides how
that multiplication is carried out:

* :class:`ExactEngine` -- the conventional accelerator: every MAC is an exact
  8b-8b operation (the paper's OS-SA baseline).
* :class:`repro.core.engine.NBSMTEngine` -- the paper's contribution: T
  threads share each MAC and collide into reduced-precision operations.
* :class:`repro.quant.robustness.ReducedPrecisionEngine` -- the whole-model
  worst-case reduction of Fig. 7 (A4W8 / A8W4 / A4W4).

Engines receive a :class:`LayerContext` describing the layer being executed
so they can apply per-layer settings (thread count, reordering permutation)
and record per-layer statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np


@dataclass
class LayerContext:
    """Per-layer execution context handed to the matmul engine.

    Attributes
    ----------
    name:
        Qualified module name of the layer inside its model.
    kind:
        ``"conv"`` or ``"linear"``.
    threads:
        Number of NB-SMT threads this layer runs with (1 = conventional).
    permutation:
        Optional reordering permutation of the K dimension (Section IV-B);
        ``None`` means natural order.
    stats:
        Free-form dictionary engines may use to accumulate per-layer
        statistics (collision counts, utilization, MSE, MAC breakdown...).
    """

    name: str
    kind: str = "conv"
    threads: int = 2
    permutation: np.ndarray | None = None
    stats: dict[str, float] = field(default_factory=dict)

    def add_stat(self, key: str, value: float) -> None:
        self.stats[key] = self.stats.get(key, 0.0) + float(value)


class IntMatmulEngine(Protocol):
    """Anything that can execute the quantized ``X @ W`` product."""

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        """Return integer accumulators of shape ``(M, N)``.

        ``x_q`` holds unsigned 8-bit activation values, ``w_q`` signed 8-bit
        weight values (both stored in wider integer dtypes).
        """
        ...  # pragma: no cover - protocol signature only


def exact_int_matmul(x_q: np.ndarray, w_q: np.ndarray) -> np.ndarray:
    """Exact integer matmul computed in float64 (lossless for 8-bit operands)."""
    return np.rint(x_q.astype(np.float64) @ w_q.astype(np.float64)).astype(np.int64)


class ExactEngine:
    """The conventional accelerator: exact 8b-8b MACs, no threads, no noise."""

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        ctx.add_stat("macs", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
        return exact_int_matmul(x_q, w_q)
