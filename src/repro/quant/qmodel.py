"""Quantized model executor.

Wraps a trained floating-point model and replaces the matrix multiplication
inside selected convolution (and optionally linear) layers with a quantized
integer execution carried out by a pluggable engine.  This mirrors the
paper's simulator: "the convolution operations are mapped to matrix
multiplication operations to fit the hardware simulator" (Section V-A), and
the first convolution layer and the fully-connected layers are left intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy
from repro.quant.calibration import CalibrationResult
from repro.quant.engine import ExactEngine, IntMatmulEngine, LayerContext
from repro.quant.quantizer import (
    dequantize,
    quantize_activations,
    quantize_weights_per_channel,
)


@dataclass
class QuantConfig:
    """Which layers are quantized and with how many bits."""

    act_bits: int = 8
    wgt_bits: int = 8
    skip_first_conv: bool = True
    include_linear: bool = False
    depthwise_single_thread: bool = True


@dataclass
class QuantizedLayer:
    """Book-keeping for one layer executed by the quantized engine."""

    name: str
    module: Module
    kind: str
    context: LayerContext
    original_matmul: object = None
    engine: IntMatmulEngine | None = None


def _is_depthwise(module: Module) -> bool:
    return isinstance(module, Conv2d) and module.groups > 1


class QuantizedModel:
    """Executes a model with quantized convolutions through an engine.

    The wrapper is installed on construction and removed by :meth:`remove`
    (or by using the instance as a context manager).  The underlying model's
    floating-point parameters are never modified.
    """

    def __init__(
        self,
        model: Module,
        calibration: CalibrationResult,
        engine: IntMatmulEngine | None = None,
        config: QuantConfig | None = None,
    ):
        self.model = model
        self.calibration = calibration
        self.config = config or QuantConfig()
        self.default_engine: IntMatmulEngine = engine or ExactEngine()
        self.layers: dict[str, QuantizedLayer] = {}
        self._select_layers()
        self._install()

    # -- layer selection / installation ------------------------------------
    def _select_layers(self) -> None:
        first_conv_seen = False
        for name, module in self.model.named_modules():
            if isinstance(module, Conv2d):
                if self.config.skip_first_conv and not first_conv_seen:
                    first_conv_seen = True
                    continue
                first_conv_seen = True
                if name not in self.calibration.act_scales:
                    raise KeyError(f"layer {name!r} missing from calibration result")
                threads = 1 if (
                    self.config.depthwise_single_thread and _is_depthwise(module)
                ) else 2
                context = LayerContext(name=name, kind="conv", threads=threads)
                self.layers[name] = QuantizedLayer(name, module, "conv", context)
            elif self.config.include_linear and isinstance(module, Linear):
                if name not in self.calibration.act_scales:
                    raise KeyError(f"layer {name!r} missing from calibration result")
                context = LayerContext(name=name, kind="linear", threads=1)
                self.layers[name] = QuantizedLayer(name, module, "linear", context)

    def _make_hook(self, layer: QuantizedLayer):
        act_scale = self.calibration.scale_for(layer.name)
        config = self.config

        def hook(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
            engine = layer.engine or self.default_engine
            x_q = quantize_activations(cols, act_scale, bits=config.act_bits)
            w_q = quantize_weights_per_channel(weight_2d, bits=config.wgt_bits)
            accumulators = engine.matmul(x_q.values, w_q.values, layer.context)
            return dequantize(accumulators, act_scale, w_q.scales)

        return hook

    def _install(self) -> None:
        for layer in self.layers.values():
            layer.original_matmul = layer.module.matmul_fn
            layer.module.matmul_fn = self._make_hook(layer)

    def remove(self) -> None:
        """Restore the original floating-point matmuls."""
        for layer in self.layers.values():
            if layer.original_matmul is not None:
                layer.module.matmul_fn = layer.original_matmul
                layer.original_matmul = None

    def __enter__(self) -> "QuantizedModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()

    # -- configuration -------------------------------------------------------
    def layer_names(self) -> list[str]:
        return list(self.layers)

    def set_engine(
        self, engine: IntMatmulEngine, layer_names: list[str] | None = None
    ) -> None:
        """Set the engine for all layers (default) or a subset."""
        if layer_names is None:
            self.default_engine = engine
            for layer in self.layers.values():
                layer.engine = None
            return
        for name in layer_names:
            self.layers[name].engine = engine

    def set_threads(self, threads: int | dict[str, int]) -> None:
        """Set the NB-SMT thread count globally or per layer."""
        if isinstance(threads, int):
            for layer in self.layers.values():
                if self.config.depthwise_single_thread and _is_depthwise(layer.module):
                    layer.context.threads = 1
                else:
                    layer.context.threads = threads
            return
        for name, count in threads.items():
            self.layers[name].context.threads = count

    def thread_assignment(self) -> dict[str, int]:
        return {name: layer.context.threads for name, layer in self.layers.items()}

    def set_permutations(self, permutations: dict[str, np.ndarray | None]) -> None:
        """Install per-layer K-dimension reordering permutations."""
        for name, permutation in permutations.items():
            if name in self.layers:
                self.layers[name].context.permutation = permutation

    def clear_stats(self) -> None:
        for layer in self.layers.values():
            layer.context.stats = {}

    def collect_stats(self) -> dict[str, dict[str, float]]:
        return {name: dict(layer.context.stats) for name, layer in self.layers.items()}

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64
    ) -> float:
        """Top-1 accuracy of the quantized model."""
        return evaluate_accuracy(self.model, images, labels, batch_size=batch_size)

    def forward(self, images: np.ndarray) -> np.ndarray:
        self.model.eval()
        return self.model(images)
