"""Quantized model executor.

Wraps a trained floating-point model and replaces the matrix multiplication
inside selected convolution (and optionally linear) layers with a quantized
integer execution carried out by a pluggable engine.  This mirrors the
paper's simulator: "the convolution operations are mapped to matrix
multiplication operations to fit the hardware simulator" (Section V-A), and
the first convolution layer and the fully-connected layers are left intact.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy
from repro.quant.calibration import CalibrationResult
from repro.quant.engine import ExactEngine, IntMatmulEngine, LayerContext
from repro.quant.quantizer import (
    dequantize,
    quantize_activations,
    quantize_weights_per_channel,
)


@dataclass
class QuantConfig:
    """Which layers are quantized and with how many bits.

    ``cache_weight_quant`` caches each layer's per-channel weight
    quantization across calls (weights do not change during evaluation); the
    cache is validated against a cheap value fingerprint and refreshed
    automatically when the weights are mutated in place (e.g. by pruning).
    """

    act_bits: int = 8
    wgt_bits: int = 8
    skip_first_conv: bool = True
    include_linear: bool = False
    depthwise_single_thread: bool = True
    cache_weight_quant: bool = True


def unwrap_matmul_fn(fn):
    """Follow the ``__wrapped__`` chain down to the float matmul function.

    Quantization hooks installed by :class:`QuantizedModel` carry a
    ``__wrapped__`` attribute pointing at the function they replaced, so any
    code that needs the model's pristine floating-point behavior (notably
    calibration) can recover it even when a hook is installed.
    """
    while hasattr(fn, "__wrapped__"):
        fn = fn.__wrapped__
    return fn


@dataclass
class QuantizedLayer:
    """Book-keeping for one layer executed by the quantized engine."""

    name: str
    module: Module
    kind: str
    context: LayerContext
    original_matmul: object = None
    engine: IntMatmulEngine | None = None
    hook: object = None


def _is_depthwise(module: Module) -> bool:
    return isinstance(module, Conv2d) and module.groups > 1


class QuantizedModel:
    """Executes a model with quantized convolutions through an engine.

    The wrapper is installed on construction and removed by :meth:`remove`
    (or by using the instance as a context manager).  The underlying model's
    floating-point parameters are never modified.
    """

    def __init__(
        self,
        model: Module,
        calibration: CalibrationResult,
        engine: IntMatmulEngine | None = None,
        config: QuantConfig | None = None,
    ):
        self.model = model
        self.calibration = calibration
        self.config = config or QuantConfig()
        self.default_engine: IntMatmulEngine = engine or ExactEngine()
        self.layers: dict[str, QuantizedLayer] = {}
        self._select_layers()
        self._install()

    # -- layer selection / installation ------------------------------------
    def _select_layers(self) -> None:
        first_conv_seen = False
        for name, module in self.model.named_modules():
            if isinstance(module, Conv2d):
                if self.config.skip_first_conv and not first_conv_seen:
                    first_conv_seen = True
                    continue
                first_conv_seen = True
                if name not in self.calibration.act_scales:
                    raise KeyError(f"layer {name!r} missing from calibration result")
                threads = 1 if (
                    self.config.depthwise_single_thread and _is_depthwise(module)
                ) else 2
                context = LayerContext(name=name, kind="conv", threads=threads)
                self.layers[name] = QuantizedLayer(name, module, "conv", context)
            elif self.config.include_linear and isinstance(module, Linear):
                if name not in self.calibration.act_scales:
                    raise KeyError(f"layer {name!r} missing from calibration result")
                context = LayerContext(name=name, kind="linear", threads=1)
                self.layers[name] = QuantizedLayer(name, module, "linear", context)

    def _make_hook(self, layer: QuantizedLayer):
        act_scale = self.calibration.scale_for(layer.name)
        config = self.config
        weight_cache: dict[str, object] = {}

        def weight_fingerprint(weight_2d: np.ndarray) -> tuple:
            # Position-weighted projections make the fingerprint sensitive
            # to row/column permutations and sign-balanced edits that a
            # plain sum would miss; collisions would need a mutation
            # crafted against the cached random projection vectors.
            probes = weight_cache.get("probes")
            if probes is None or probes[0].shape[0] != weight_2d.shape[0]:
                rng = np.random.default_rng(0x5EED)
                probes = (
                    rng.standard_normal(weight_2d.shape[0]),
                    rng.standard_normal(weight_2d.shape[1]),
                )
                weight_cache["probes"] = probes
            row_probe, col_probe = probes
            return (
                weight_2d.shape,
                weight_2d.dtype,
                float(weight_2d.sum()),
                float(row_probe @ weight_2d @ col_probe),
            )

        def hook(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
            engine = layer.engine or self.default_engine
            x_q = quantize_activations(cols, act_scale, bits=config.act_bits)
            if config.cache_weight_quant:
                fingerprint = weight_fingerprint(weight_2d)
                if weight_cache.get("fingerprint") != fingerprint:
                    weight_cache["fingerprint"] = fingerprint
                    weight_cache["quant"] = quantize_weights_per_channel(
                        weight_2d, bits=config.wgt_bits
                    )
                w_q = weight_cache["quant"]
            else:
                w_q = quantize_weights_per_channel(weight_2d, bits=config.wgt_bits)
            accumulators = engine.matmul(x_q.values, w_q.values, layer.context)
            return dequantize(accumulators, act_scale, w_q.scales)

        return hook

    def _install(self) -> None:
        """Install (or re-install) this wrapper's hooks; idempotent.

        Quantization wrappers do not stack: if another wrapper's hook is
        currently installed on a module, it is *replaced*, and the pristine
        floating-point function (recovered through the ``__wrapped__`` chain)
        becomes the restore target.  A displaced wrapper re-installs itself
        the next time it is used (see :meth:`_ensure_installed`).
        """
        for layer in self.layers.values():
            current = layer.module.matmul_fn
            if layer.hook is not None and current is layer.hook:
                continue
            layer.original_matmul = unwrap_matmul_fn(current)
            if layer.hook is None:
                hook = self._make_hook(layer)
                # Expose the pristine float function so calibration (and
                # float_execution) can bypass installed quantization hooks.
                hook.__wrapped__ = layer.original_matmul
                layer.hook = hook
            layer.module.matmul_fn = layer.hook

    def ensure_installed(self) -> None:
        """Public alias of :meth:`_ensure_installed`.

        Callers that may run after this wrapper was removed (e.g. a sweep
        point evaluated after ``clear_harness_cache()`` closed the cached
        harness mid-sweep) can call this to re-install the hooks before
        touching the model directly.
        """
        self._ensure_installed()

    def _ensure_installed(self) -> None:
        """Re-install hooks that were displaced and later removed.

        Only modules currently holding their *pristine float* function are
        re-hooked: a foreign wrapper (another quantization wrapper, a
        calibration observer, a test probe) is left in place, since it either
        delegates to this wrapper's hook or intentionally replaces it.
        """
        for layer in self.layers.values():
            if (
                layer.hook is not None
                and layer.module.matmul_fn is layer.hook.__wrapped__
            ):
                layer.original_matmul = layer.hook.__wrapped__
                layer.module.matmul_fn = layer.hook

    def remove(self) -> None:
        """Restore the original floating-point matmuls.

        Only hooks that are still installed are removed; a module whose hook
        was displaced by another wrapper is left untouched.
        """
        for layer in self.layers.values():
            if (
                layer.original_matmul is not None
                and layer.module.matmul_fn is layer.hook
            ):
                layer.module.matmul_fn = layer.original_matmul
            layer.original_matmul = None

    def __enter__(self) -> "QuantizedModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.remove()

    @contextmanager
    def float_execution(self):
        """Temporarily run the wrapped model with its float matmuls.

        Unlike :meth:`remove` followed by a re-install, this restores the
        *pristine* float functions even when several quantization wrappers
        have been stacked on the same model, and puts the currently installed
        hooks back afterwards.
        """
        installed = {
            name: layer.module.matmul_fn for name, layer in self.layers.items()
        }
        try:
            for layer in self.layers.values():
                layer.module.matmul_fn = unwrap_matmul_fn(layer.module.matmul_fn)
            yield self
        finally:
            for name, layer in self.layers.items():
                layer.module.matmul_fn = installed[name]

    # -- configuration -------------------------------------------------------
    def layer_names(self) -> list[str]:
        return list(self.layers)

    def set_engine(
        self, engine: IntMatmulEngine, layer_names: list[str] | None = None
    ) -> None:
        """Set the engine for all layers (default) or a subset."""
        if layer_names is None:
            self.default_engine = engine
            for layer in self.layers.values():
                layer.engine = None
            return
        for name in layer_names:
            self.layers[name].engine = engine

    def set_threads(self, threads: int | dict[str, int]) -> None:
        """Set the NB-SMT thread count globally or per layer."""
        if isinstance(threads, int):
            for layer in self.layers.values():
                if self.config.depthwise_single_thread and _is_depthwise(layer.module):
                    layer.context.threads = 1
                else:
                    layer.context.threads = threads
            return
        for name, count in threads.items():
            self.layers[name].context.threads = count

    def thread_assignment(self) -> dict[str, int]:
        return {name: layer.context.threads for name, layer in self.layers.items()}

    def set_permutations(self, permutations: dict[str, np.ndarray | None]) -> None:
        """Install per-layer K-dimension reordering permutations."""
        for name, permutation in permutations.items():
            if name in self.layers:
                self.layers[name].context.permutation = permutation

    def clear_stats(self) -> None:
        for layer in self.layers.values():
            layer.context.stats = {}

    def collect_stats(self) -> dict[str, dict[str, float]]:
        return {name: dict(layer.context.stats) for name, layer in self.layers.items()}

    def warm(self, images: np.ndarray) -> None:
        """Prime the quantized execution path without polluting statistics.

        Runs one forward pass through the installed hooks so that every
        per-layer cache on the serving hot path is populated before real
        traffic arrives: the per-channel weight-quantization cache, the
        engine's per-(layer, threads) executors and their lookup tables,
        and the BLAS/im2col scratch allocations.  Context statistics
        accumulated by the warm-up are discarded (engine-side statistics
        are the caller's to reset -- the engine may be shared).
        """
        self._ensure_installed()
        self.model.eval()
        self.model(images)
        self.clear_stats()

    # -- evaluation -------------------------------------------------------------
    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
        workers: int = 1,
    ) -> float:
        """Top-1 accuracy of the quantized model.

        ``workers > 1`` shards the images across a process pool (fork-based;
        falls back to serial execution where fork is unavailable) and merges
        the per-shard statistics back into this process: per-layer context
        stats always, and the default engine's NB-SMT layer statistics when
        it collects any (engines installed as per-layer overrides only
        contribute context stats).
        """
        self._ensure_installed()
        if workers > 1:
            from repro.eval.parallel import evaluate_sharded

            engine = self.default_engine
            return evaluate_sharded(
                self,
                images,
                labels,
                batch_size=batch_size,
                workers=workers,
                # Reduce the default engine's per-layer NB-SMT statistics
                # back into this process (per-layer engine overrides keep
                # only their context stats, as documented).
                engine=engine if hasattr(engine, "layer_stats") else None,
            )
        return evaluate_accuracy(self.model, images, labels, batch_size=batch_size)

    def forward(self, images: np.ndarray) -> np.ndarray:
        self._ensure_installed()
        self.model.eval()
        return self.model(images)
