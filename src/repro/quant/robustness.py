"""Whole-model on-the-fly precision reduction (the robustness study of Fig. 7).

A 2-threaded SySMT at worst reduces *every* activation (or weight) to 4 bits;
a 4-threaded SySMT at worst reduces both.  Fig. 7 measures those worst cases
by quantizing the entire model on the fly -- exactly the same rounding and
truncation the PEs apply, with no recalibration -- giving the lower accuracy
bound of the NB-SMT execution (A4W8 / A8W4 / A4W4 operating points).
"""

from __future__ import annotations

import numpy as np

from repro.core.precision import (
    act_fits_4bit,
    reduce_act_to_4bit_msb,
    reduce_wgt_to_4bit_msb,
    wgt_fits_4bit,
)
from repro.quant.engine import LayerContext, exact_int_matmul

#: The operating points of Fig. 7, as (reduce_activations, reduce_weights).
OPERATING_POINTS: dict[str, tuple[bool, bool]] = {
    "A8W8": (False, False),
    "A4W8": (True, False),
    "A8W4": (False, True),
    "A4W4": (True, True),
}


class ReducedPrecisionEngine:
    """Unconditionally reduce activations and/or weights to 4 bits on the fly.

    Values that already fit in 4 bits are untouched (they are exactly
    representable by the 4-bit path); wider values are rounded to the nearest
    multiple of 16 and truncated to their MSBs, exactly as the PE does.
    """

    def __init__(self, reduce_activations: bool, reduce_weights: bool):
        self.reduce_activations = reduce_activations
        self.reduce_weights = reduce_weights

    @classmethod
    def from_point(cls, point: str) -> "ReducedPrecisionEngine":
        if point not in OPERATING_POINTS:
            raise KeyError(
                f"unknown operating point {point!r}; known: {sorted(OPERATING_POINTS)}"
            )
        return cls(*OPERATING_POINTS[point])

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        x_eff = x_q
        w_eff = w_q
        if self.reduce_activations:
            x_eff = np.where(act_fits_4bit(x_q), x_q, reduce_act_to_4bit_msb(x_q))
        if self.reduce_weights:
            w_eff = np.where(wgt_fits_4bit(w_q), w_q, reduce_wgt_to_4bit_msb(w_q))
        ctx.add_stat("macs", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
        return exact_int_matmul(x_eff, w_eff)


def robustness_sweep(
    qmodel,
    images: np.ndarray,
    labels: np.ndarray,
    points: tuple[str, ...] = ("A8W8", "A4W8", "A8W4", "A4W4"),
    batch_size: int = 64,
) -> dict[str, float]:
    """Accuracy of a quantized model at each Fig. 7 operating point.

    ``qmodel`` is a :class:`repro.quant.qmodel.QuantizedModel`; its engine is
    temporarily replaced for each operating point and restored afterwards.
    """
    original_engine = qmodel.default_engine
    accuracies: dict[str, float] = {}
    try:
        for point in points:
            qmodel.set_engine(ReducedPrecisionEngine.from_point(point))
            accuracies[point] = qmodel.evaluate(images, labels, batch_size=batch_size)
    finally:
        qmodel.set_engine(original_engine)
    return accuracies
