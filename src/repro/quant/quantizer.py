"""Uniform min-max quantization primitives.

Conventions follow the paper (Section V-A):

* **Activations** are quantized per layer with a symmetric *unsigned* 8-bit
  quantizer: ``q = clip(round(x / scale), 0, 255)``.  Activations feeding the
  NB-SMT layers are post-ReLU and therefore non-negative.
* **Weights** are quantized per kernel (per output channel) with a symmetric
  *signed* 8-bit quantizer: ``q = clip(round(w / scale), -127, 127)``.

Each dot product is therefore rescaled by exactly two factors -- the layer's
activation scale and the kernel's weight scale -- which is what makes the
hardware implementation efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of levels used for unsigned activations (8 bits).
ACT_QMAX = 255
#: Extreme magnitude for signed weights (8 bits, symmetric, no -128).
WGT_QMAX = 127


@dataclass
class QuantizedTensor:
    """An integer tensor together with the scale that dequantizes it."""

    values: np.ndarray
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float32) * self.scale


@dataclass
class WeightQuantization:
    """Per-output-channel quantized weights for one layer."""

    values: np.ndarray          # int8-valued array, shape (K, N)
    scales: np.ndarray          # shape (N,)

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float32) * self.scales[None, :]


def activation_scale(max_value: float, bits: int = 8) -> float:
    """Scale mapping ``[0, max_value]`` onto the unsigned integer grid."""
    qmax = 2**bits - 1
    if max_value <= 0:
        return 1.0
    return float(max_value) / qmax


def quantize_activations(
    x: np.ndarray, scale: float, bits: int = 8
) -> QuantizedTensor:
    """Quantize activations to unsigned ``bits``-bit integers.

    Negative inputs are clipped to zero; the NB-SMT layers only ever see
    post-ReLU activations, so this clipping is a no-op in practice.
    """
    qmax = 2**bits - 1
    q = np.clip(np.rint(x / scale), 0, qmax)
    return QuantizedTensor(q.astype(np.int32), scale)


def quantize_weights_per_channel(
    weight_2d: np.ndarray, bits: int = 8
) -> WeightQuantization:
    """Quantize a ``(K, N)`` weight matrix symmetrically per output channel."""
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.abs(weight_2d).max(axis=0)
    scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    q = np.clip(np.rint(weight_2d / scales[None, :]), -qmax, qmax)
    return WeightQuantization(q.astype(np.int32), scales.astype(np.float64))


def dequantize(
    accumulators: np.ndarray, act_scale: float, weight_scales: np.ndarray
) -> np.ndarray:
    """Rescale integer matmul accumulators back to floating point.

    ``accumulators`` has shape ``(M, N)``; each column ``n`` is scaled by the
    activation scale times the weight scale of output channel ``n``.
    """
    return (accumulators.astype(np.float64) * act_scale * weight_scales[None, :]).astype(
        np.float32
    )
