"""Statistics-gathering (calibration) pass.

Mirrors the paper's "quick statistics gathering run" (Section V-A): on a
random subset of the training set it

1. averages the per-layer activation min/max values used for the 8-bit
   activation quantizer,
2. optionally re-estimates the batch-norm running statistics, and
3. logs the per-column activation statistics used by the data-arrangement
   (reordering) mechanism of Section IV-B.

None of these steps involves gradient computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module
from repro.quant.quantizer import activation_scale

#: Quantized activation values below this threshold fit in the 4-bit LSBs.
FOUR_BIT_LIMIT = 16


@dataclass
class ColumnStats:
    """Per-K-column activation statistics of one lowered layer.

    ``p_wide`` is the probability that the column's quantized activation
    needs more than 4 bits; ``p_nonzero`` the probability that it is nonzero.
    Columns with high ``p_wide`` are the ones the reordering mechanism tries
    to pair with sparse columns of the other thread.
    """

    p_wide: np.ndarray
    p_nonzero: np.ndarray

    @property
    def num_columns(self) -> int:
        return int(self.p_wide.shape[0])


@dataclass
class CalibrationResult:
    """Everything the quantized executor needs about one model."""

    act_max: dict[str, float] = field(default_factory=dict)
    act_scales: dict[str, float] = field(default_factory=dict)
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)
    num_batches: int = 0

    def scale_for(self, layer_name: str) -> float:
        return self.act_scales[layer_name]


def _target_layers(model: Module, include_linear: bool) -> dict[str, Module]:
    """Layers whose matmul inputs we observe (all convs, optionally linears)."""
    targets: dict[str, Module] = {}
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            targets[name] = module
        elif include_linear and isinstance(module, Linear):
            targets[name] = module
    return targets


def recalibrate_batchnorm(
    model: Module, images: np.ndarray, batch_size: int = 64
) -> None:
    """Re-estimate BN running statistics with a cumulative moving average."""
    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn.reset_running_stats()
    model.train()
    num_batches = max(1, (images.shape[0] + batch_size - 1) // batch_size)
    for index in range(num_batches):
        batch = images[index * batch_size : (index + 1) * batch_size]
        if batch.shape[0] == 0:
            break
        momentum = 1.0 / (index + 1)
        for bn in bn_layers:
            bn.momentum = momentum
        model(batch)
    for bn in bn_layers:
        bn.momentum = 0.1
    model.eval()


def calibrate_model(
    model: Module,
    images: np.ndarray,
    batch_size: int = 64,
    include_linear: bool = False,
    recalibrate_bn: bool = True,
    collect_column_stats: bool = True,
) -> CalibrationResult:
    """Run the statistics-gathering pass and return a :class:`CalibrationResult`.

    Calibration must observe the model's *floating-point* behavior.  If a
    :class:`~repro.quant.qmodel.QuantizedModel` is currently installed on the
    model, its hooks are bypassed for the duration of this function (both the
    batch-norm recalibration and the statistics passes), then restored:
    calibrating through quantized execution would bake quantization noise
    into the BN statistics and the activation scales.
    """
    from repro.quant.qmodel import unwrap_matmul_fn

    targets = _target_layers(model, include_linear)
    installed = {name: layer.matmul_fn for name, layer in targets.items()}
    originals = {name: unwrap_matmul_fn(fn) for name, fn in installed.items()}
    try:
        for name, layer in targets.items():
            layer.matmul_fn = originals[name]
        result = _calibrate_float_model(
            model, images, batch_size, targets, originals,
            recalibrate_bn, collect_column_stats,
        )
    finally:
        for name, layer in targets.items():
            layer.matmul_fn = installed[name]
    return result


def _calibrate_float_model(
    model: Module,
    images: np.ndarray,
    batch_size: int,
    targets: dict[str, Module],
    originals: dict[str, object],
    recalibrate_bn: bool,
    collect_column_stats: bool,
) -> CalibrationResult:
    if recalibrate_bn:
        recalibrate_batchnorm(model, images, batch_size)
    model.eval()

    result = CalibrationResult()

    # Pass 1: per-batch max of the lowered activation matrix, averaged.
    max_sums = {name: 0.0 for name in targets}
    batch_counts = {name: 0 for name in targets}

    def make_max_observer(name: str, original):
        def observer(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
            max_sums[name] += float(np.clip(cols, 0.0, None).max(initial=0.0))
            batch_counts[name] += 1
            return original(cols, weight_2d)

        return observer

    try:
        for name, layer in targets.items():
            layer.matmul_fn = make_max_observer(name, originals[name])
        num_batches = 0
        for start in range(0, images.shape[0], batch_size):
            model(images[start : start + batch_size])
            num_batches += 1
    finally:
        for name, layer in targets.items():
            layer.matmul_fn = originals[name]

    result.num_batches = num_batches
    for name in targets:
        count = max(batch_counts[name], 1)
        result.act_max[name] = max_sums[name] / count
        result.act_scales[name] = activation_scale(result.act_max[name])

    if not collect_column_stats:
        return result

    # Pass 2: per-column probability of needing 8 bits / being nonzero,
    # measured on the quantized activations (needs the scales from pass 1).
    wide_sums: dict[str, np.ndarray] = {}
    nonzero_sums: dict[str, np.ndarray] = {}
    row_counts = {name: 0 for name in targets}

    def make_column_observer(name: str, original):
        def observer(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
            scale = result.act_scales[name]
            q = np.clip(np.rint(cols / scale), 0, 255)
            wide = (q >= FOUR_BIT_LIMIT).sum(axis=0)
            nonzero = (q > 0).sum(axis=0)
            if name not in wide_sums:
                wide_sums[name] = np.zeros(cols.shape[1], dtype=np.float64)
                nonzero_sums[name] = np.zeros(cols.shape[1], dtype=np.float64)
            if wide_sums[name].shape[0] == cols.shape[1]:
                wide_sums[name] += wide
                nonzero_sums[name] += nonzero
                row_counts[name] += cols.shape[0]
            return original(cols, weight_2d)

        return observer

    try:
        for name, layer in targets.items():
            layer.matmul_fn = make_column_observer(name, originals[name])
        for start in range(0, images.shape[0], batch_size):
            model(images[start : start + batch_size])
    finally:
        for name, layer in targets.items():
            layer.matmul_fn = originals[name]

    for name in targets:
        if name not in wide_sums:
            continue
        rows = max(row_counts[name], 1)
        result.column_stats[name] = ColumnStats(
            p_wide=(wide_sums[name] / rows).astype(np.float64),
            p_nonzero=(nonzero_sums[name] / rows).astype(np.float64),
        )
    return result
