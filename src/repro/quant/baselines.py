"""Static 4-bit post-training-quantization baselines (Table IV comparison).

The paper compares the 2-threaded SySMT against two PTQ methods that
carefully choose static quantization parameters:

* **ACIQ** (Banner et al.) -- analytically clips the tensor range assuming a
  Laplace distribution and quantizes to the reduced bit-width within the
  clipped range.
* **LBQ** (Kravchik et al.) -- searches per-layer quantization parameters
  that minimize the layer output error.

Both are re-implemented here in spirit: they receive the already-quantized
8-bit integer tensors (the same operands the NB-SMT engine sees) and requantize
the selected operand to a static 4-bit grid whose clipping value is chosen
analytically (ACIQ) or by a per-layer MSE search (LBQ).  Unlike NB-SMT, the
reduction applies to *every* value of the selected operand, but the grid is
optimized rather than fixed to the 4-bit MSBs.
"""

from __future__ import annotations

import numpy as np

from repro.quant.engine import LayerContext, exact_int_matmul

#: ACIQ's optimal clipping multiplier for a Laplace distribution at 4 bits.
ACIQ_LAPLACE_ALPHA_4BIT = 5.03


def _requantize_unsigned(x: np.ndarray, clip_value: float, bits: int) -> np.ndarray:
    """Re-quantize non-negative integers onto a ``bits``-bit grid in [0, clip]."""
    levels = 2**bits - 1
    clip_value = max(float(clip_value), 1.0)
    step = clip_value / levels
    q = np.clip(np.rint(np.clip(x, 0, clip_value) / step), 0, levels)
    return np.rint(q * step).astype(np.int64)


def _requantize_signed(w: np.ndarray, clip_value: float, bits: int) -> np.ndarray:
    """Re-quantize signed integers onto a symmetric ``bits``-bit grid."""
    levels = 2 ** (bits - 1) - 1
    clip_value = max(float(clip_value), 1.0)
    step = clip_value / levels
    q = np.clip(np.rint(np.clip(w, -clip_value, clip_value) / step), -levels, levels)
    return np.rint(q * step).astype(np.int64)


class StaticLowBitEngine:
    """Base class: per-layer static requantization of one operand to 4 bits."""

    def __init__(self, act_bits: int = 4, wgt_bits: int = 8):
        self.act_bits = act_bits
        self.wgt_bits = wgt_bits
        self._act_clips: dict[str, float] = {}
        self._wgt_clips: dict[str, float] = {}

    # subclasses provide the clip selection rules -------------------------------
    def _choose_act_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        raise NotImplementedError

    def _choose_wgt_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        raise NotImplementedError

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        x_eff = x_q
        w_eff = w_q
        if self.act_bits < 8:
            if ctx.name not in self._act_clips:
                self._act_clips[ctx.name] = self._choose_act_clip(x_q, w_q)
            x_eff = _requantize_unsigned(x_q, self._act_clips[ctx.name], self.act_bits)
        if self.wgt_bits < 8:
            if ctx.name not in self._wgt_clips:
                self._wgt_clips[ctx.name] = self._choose_wgt_clip(x_q, w_q)
            w_eff = _requantize_signed(w_q, self._wgt_clips[ctx.name], self.wgt_bits)
        ctx.add_stat("macs", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
        return exact_int_matmul(x_eff, w_eff)


class ACIQEngine(StaticLowBitEngine):
    """Analytic Laplace clipping (ACIQ-style)."""

    def _choose_act_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        values = x_q[x_q > 0].astype(np.float64)
        if values.size == 0:
            return 255.0
        laplace_b = float(np.mean(np.abs(values - values.mean())))
        clip = ACIQ_LAPLACE_ALPHA_4BIT * max(laplace_b, 1e-3)
        return float(min(max(clip, 16.0), 255.0))

    def _choose_wgt_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        values = w_q[w_q != 0].astype(np.float64)
        if values.size == 0:
            return 127.0
        laplace_b = float(np.mean(np.abs(values - values.mean())))
        clip = ACIQ_LAPLACE_ALPHA_4BIT * max(laplace_b, 1e-3)
        return float(min(max(clip, 8.0), 127.0))


class LBQEngine(StaticLowBitEngine):
    """Per-layer output-MSE search over clipping candidates (LBQ-style)."""

    def __init__(self, act_bits: int = 4, wgt_bits: int = 8, candidates: int = 12):
        super().__init__(act_bits, wgt_bits)
        self.candidates = candidates

    def _search(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        requantize,
        operand: str,
        max_value: float,
        bits: int,
    ) -> float:
        exact = exact_int_matmul(x_q, w_q).astype(np.float64)
        best_clip = max_value
        best_mse = np.inf
        for fraction in np.linspace(0.3, 1.0, self.candidates):
            clip = max(fraction * max_value, 1.0)
            if operand == "act":
                candidate = exact_int_matmul(requantize(x_q, clip, bits), w_q)
            else:
                candidate = exact_int_matmul(x_q, requantize(w_q, clip, bits))
            mse = float(((candidate - exact) ** 2).mean())
            if mse < best_mse:
                best_mse = mse
                best_clip = clip
        return float(best_clip)

    def _choose_act_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        max_value = float(x_q.max(initial=1))
        return self._search(
            x_q, w_q, _requantize_unsigned, "act", max_value, self.act_bits
        )

    def _choose_wgt_clip(self, x_q: np.ndarray, w_q: np.ndarray) -> float:
        max_value = float(np.abs(w_q).max(initial=1))
        return self._search(
            x_q, w_q, _requantize_signed, "wgt", max_value, self.wgt_bits
        )


def aciq_clip_engine(act_bits: int = 4, wgt_bits: int = 8) -> ACIQEngine:
    """Factory mirroring the paper's ACIQ comparison configuration."""
    return ACIQEngine(act_bits=act_bits, wgt_bits=wgt_bits)


def lbq_search_engine(act_bits: int = 4, wgt_bits: int = 8) -> LBQEngine:
    """Factory mirroring the paper's LBQ comparison configuration."""
    return LBQEngine(act_bits=act_bits, wgt_bits=wgt_bits)
