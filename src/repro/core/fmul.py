"""Flexible multiplier (fMUL) decompositions (Section IV-C1).

The SySMT PE replaces its 8b-8b multiplier with a *flexible* multiplier:

* the 2-threaded fMUL (Eq. (4), Fig. 6) is built from two 5b-8b signed
  multipliers plus shift logic and can compute either one 8b-8b product or
  two independent 4b-8b products;
* the 4-threaded fMUL (Eq. (5)) is built from four small multipliers and can
  compute one 8b-8b product, two 4b-8b products, or four 4b-4b products.

These functions are bit-accurate models of that hardware: activations are
unsigned 8-bit, weights are signed 8-bit, and the narrow ports receive a
4-bit nibble together with a flag saying whether its product must be shifted
left by 4 (the nibble is an MSB half).  Property tests verify that the
decompositions are exact for every possible operand value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitops import split_signed, split_unsigned


def mul_8b8b_via_two_5b8b(x: np.ndarray | int, w: np.ndarray | int) -> np.ndarray:
    """Compute ``x * w`` exactly using the Eq. (4) decomposition.

    The unsigned activation is split into nibbles and each nibble feeds a
    5b-8b signed multiplier (the extra bit is a zero MSB making the unsigned
    nibble a non-negative signed value); the MSB product is shifted left by 4.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    x_msb, x_lsb = split_unsigned(x)
    return (x_msb * w << 4) + x_lsb * w


def mul_8b8b_via_four_4b(x: np.ndarray | int, w: np.ndarray | int) -> np.ndarray:
    """Compute ``x * w`` exactly using the Eq. (5) decomposition.

    The product is the sum of four partial products between the activation
    nibbles (unsigned) and the weight nibbles (signed MSB half, unsigned LSB
    half), with shifts of 8, 4, 4 and 0 bits.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    x_msb, x_lsb = split_unsigned(x)
    w_msb, w_lsb = split_signed(w)
    return (
        (x_msb * w_msb << 8)
        + (x_msb * w_lsb << 4)
        + (x_lsb * w_msb << 4)
        + (x_lsb * w_lsb)
    )


def fmul_2x4b8b(
    x1: np.ndarray | int,
    w1: np.ndarray | int,
    shift1: np.ndarray | int,
    x2: np.ndarray | int,
    w2: np.ndarray | int,
    shift2: np.ndarray | int,
) -> tuple[np.ndarray, np.ndarray]:
    """Two independent 4b-8b products with optional post-shift (Fig. 6).

    ``x1``/``x2`` are 4-bit unsigned nibbles (either the LSBs of a value that
    fits in 4 bits, or the rounded MSBs of a wider value), ``w1``/``w2`` are
    signed 8-bit weights, and ``shift1``/``shift2`` select the 4-bit left
    shift applied when the nibble is an MSB half.
    """
    x1 = np.asarray(x1, dtype=np.int64)
    x2 = np.asarray(x2, dtype=np.int64)
    w1 = np.asarray(w1, dtype=np.int64)
    w2 = np.asarray(w2, dtype=np.int64)
    if np.any((x1 < 0) | (x1 > 15)) or np.any((x2 < 0) | (x2 > 15)):
        raise ValueError("fMUL narrow ports accept 4-bit unsigned nibbles")
    product1 = x1 * w1 * np.where(np.asarray(shift1) != 0, 16, 1)
    product2 = x2 * w2 * np.where(np.asarray(shift2) != 0, 16, 1)
    return product1, product2


def fmul_4x4b4b(
    acts: np.ndarray,
    wgts: np.ndarray,
    act_shifts: np.ndarray,
    wgt_shifts: np.ndarray,
) -> np.ndarray:
    """Four independent 4b-4b products with per-operand post-shifts.

    ``acts`` holds unsigned 4-bit nibbles, ``wgts`` signed 4-bit nibbles; the
    shift flags restore the weight of MSB halves.  The leading dimension (4)
    indexes the thread.
    """
    acts = np.asarray(acts, dtype=np.int64)
    wgts = np.asarray(wgts, dtype=np.int64)
    if acts.shape[0] != 4 or wgts.shape[0] != 4:
        raise ValueError("fmul_4x4b4b expects 4 thread operands")
    if np.any((acts < 0) | (acts > 15)):
        raise ValueError("activation nibbles must be unsigned 4-bit values")
    if np.any((wgts < -8) | (wgts > 7)):
        raise ValueError("weight nibbles must be signed 4-bit values")
    scale_a = np.where(np.asarray(act_shifts) != 0, 16, 1)
    scale_w = np.where(np.asarray(wgt_shifts) != 0, 16, 1)
    return acts * wgts * scale_a * scale_w


@dataclass
class FlexibleMultiplier:
    """Convenience object bundling the fMUL operating modes.

    ``threads`` selects the hardware variant: 2 gives the Eq. (4) unit (one
    8b-8b or two 4b-8b), 4 gives the Eq. (5) unit (adds the 4x4b-4b mode).
    """

    threads: int = 2

    def __post_init__(self):
        if self.threads not in (2, 4):
            raise ValueError("FlexibleMultiplier supports 2 or 4 threads")

    def one_8b8b(self, x: np.ndarray | int, w: np.ndarray | int) -> np.ndarray:
        """Full-precision mode: a single exact 8b-8b product."""
        if self.threads == 2:
            return mul_8b8b_via_two_5b8b(x, w)
        return mul_8b8b_via_four_4b(x, w)

    def two_4b8b(self, x1, w1, shift1, x2, w2, shift2) -> tuple[np.ndarray, np.ndarray]:
        """Two independent reduced-precision products."""
        return fmul_2x4b8b(x1, w1, shift1, x2, w2, shift2)

    def four_4b4b(self, acts, wgts, act_shifts, wgt_shifts) -> np.ndarray:
        """Four independent 4b-4b products (4-threaded fMUL only)."""
        if self.threads != 4:
            raise ValueError("4x4b-4b mode requires the 4-threaded fMUL")
        return fmul_4x4b4b(acts, wgts, act_shifts, wgt_shifts)
