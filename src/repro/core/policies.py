"""Thread-packing policies (the configurations of Table III).

A packing policy decides how a PE resolves a thread collision:

* ``S`` -- exploit 8-bit sparsity: a thread whose activation or weight is
  zero does not need the MAC, so the other thread may use the full 8b-8b
  multiplier (Fig. 2b).
* ``A`` / ``W`` -- exploit the data-width of the activation / weight: a
  colliding operand that already fits in 4 bits keeps its LSBs and incurs no
  error (Fig. 2c); otherwise it is rounded and truncated to its 4-bit MSBs.
* ``Aw`` / ``aW`` -- additionally exploit the *other* operand's data-width:
  if the primary operand is wide but the secondary operand fits in 4 bits,
  the operands are swapped between the multiplier ports and no error is
  incurred (Fig. 2d).

The lower-case / upper-case naming follows the paper: the capital letter is
the operand whose precision is reduced on demand.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PackingPolicy:
    """Configuration of the PE collision-resolution logic.

    Attributes
    ----------
    name:
        Human-readable policy name (Table III column).
    sparsity:
        Exploit 8-bit sparsity (the ``S`` component).
    width_primary:
        Exploit the data-width of the reduced operand (``A`` when reducing
        activations, ``W`` when reducing weights).
    width_secondary:
        Exploit the data-width of the other operand by swapping ports
        (the lower-case letter in ``Aw`` / ``aW``).
    reduce:
        Which operand is reduced when a collision cannot be resolved:
        ``"act"`` or ``"wgt"``.
    """

    name: str
    sparsity: bool
    width_primary: bool
    width_secondary: bool
    reduce: str = "act"

    def __post_init__(self):
        if self.reduce not in ("act", "wgt"):
            raise ValueError("reduce must be 'act' or 'wgt'")
        if self.width_secondary and not self.width_primary:
            raise ValueError("width_secondary requires width_primary")


def _build_registry() -> dict[str, PackingPolicy]:
    policies = [
        # Activation-reduction family (used for all models except ResNet-50).
        PackingPolicy("min", sparsity=False, width_primary=False, width_secondary=False),
        PackingPolicy("S", sparsity=True, width_primary=False, width_secondary=False),
        PackingPolicy("A", sparsity=False, width_primary=True, width_secondary=False),
        PackingPolicy("Aw", sparsity=False, width_primary=True, width_secondary=True),
        PackingPolicy("S+A", sparsity=True, width_primary=True, width_secondary=False),
        PackingPolicy("S+Aw", sparsity=True, width_primary=True, width_secondary=True),
        # Weight-reduction family (ResNet-50 in the paper).
        PackingPolicy("min_w", sparsity=False, width_primary=False,
                      width_secondary=False, reduce="wgt"),
        PackingPolicy("W", sparsity=False, width_primary=True,
                      width_secondary=False, reduce="wgt"),
        PackingPolicy("aW", sparsity=False, width_primary=True,
                      width_secondary=True, reduce="wgt"),
        PackingPolicy("S+W", sparsity=True, width_primary=True,
                      width_secondary=False, reduce="wgt"),
        PackingPolicy("S+aW", sparsity=True, width_primary=True,
                      width_secondary=True, reduce="wgt"),
        PackingPolicy("S_w", sparsity=True, width_primary=False,
                      width_secondary=False, reduce="wgt"),
    ]
    return {policy.name: policy for policy in policies}


_REGISTRY = _build_registry()

#: All registered policy names.
POLICY_NAMES: tuple[str, ...] = tuple(_REGISTRY)

#: The policy the paper uses by default for the 2-threaded SySMT.
DEFAULT_POLICY_NAME = "S+A"


def get_policy(name: str) -> PackingPolicy:
    """Look up a policy by its Table III name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_REGISTRY)}") from None


def default_policy_for(model_name: str) -> PackingPolicy:
    """The per-model policy choice of Section V-B.

    The paper exploits activation data-width (S+A) for all models except
    ResNet-50, which is more robust to weight quantization and therefore uses
    S+W.
    """
    if model_name.lower().startswith("resnet50"):
        return get_policy("S+W")
    return get_policy(DEFAULT_POLICY_NAME)
