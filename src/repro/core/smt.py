"""Functional NB-SMT matrix-multiply executor.

The SySMT hardware computes ``O = X @ W`` where each PE accumulates one
output element and the K dimension is split across T threads (output-register
sharing, Eq. (2)/(3)).  This module models that computation *functionally*:
it produces the exact integer accumulators the hardware would produce,
including the noise introduced when thread collisions force reduced-precision
products, together with per-layer statistics (collision breakdown,
utilization, MSE versus the error-free result).

Three implementations are provided and cross-checked by the test suite:

* a chunked **reference** path that materializes the per-position activity
  tensors and handles any thread count;
* a **factorized** fast path for two and four threads, which expresses the
  NB-SMT noise as extra matrix multiplications of masked deltas (the
  collision indicator of each thread factors into an activation-side and a
  weight-side rank-1 term, so the demand-gated error terms expand by
  inclusion-exclusion into separable blocks that are stacked along the inner
  dimension and evaluated with a handful of BLAS calls);
* the seed's original 4-thread factorized implementation
  (:func:`_fast_4t_legacy`), retained for A/B benchmarking.

The factorized paths also reconstruct the *exact* statistics (including the
per-position reduction count) without materializing activity tensors: every
counter is a sum over positions of a function of the 4-bit thread-activity
pattern plus a few per-thread value predicates, so it reduces to per-K-column
histograms of small integer codes contracted against precomputed tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations

import numpy as np

from repro.core import packing
from repro.core.policies import PackingPolicy, get_policy
from repro.core.precision import act_fits_4bit, wgt_fits_4bit

#: Largest product-sum magnitude exactly representable by a float32 GEMM.
_F32_EXACT_LIMIT = 1 << 24
#: Largest product-sum magnitude exactly representable by a float64 GEMM.
_F64_EXACT_LIMIT = 1 << 53
#: Worst-case magnitude of a 4-bit reduction delta.  Rounding alone is
#: bounded by 8, but clipping at the representable range ends widens it
#: (255 -> 240, 127 -> 112); derived from the tables so it cannot drift.
_DELTA_MAX = int(
    max(np.abs(lut).max() for lut in packing._DELTA_LUTS.values())
)


@dataclass
class SMTStatistics:
    """Counters accumulated by the executor across calls.

    All counters refer to MAC *operations* (one per (m, k, n) position of the
    original matmul) or to PE issue *slots* (one per group of T MAC
    operations that share a PE cycle).
    """

    mac_total: int = 0
    mac_active: int = 0
    mac_collided: int = 0
    mac_reduced: int = 0
    slots_total: int = 0
    slots_active: int = 0
    act_values: int = 0
    act_nonzero: int = 0
    sum_sq_error: float = 0.0
    sum_sq_exact: float = 0.0
    outputs: int = 0

    def merge(self, other: "SMTStatistics") -> None:
        for name in (
            "mac_total",
            "mac_active",
            "mac_collided",
            "mac_reduced",
            "slots_total",
            "slots_active",
            "act_values",
            "act_nonzero",
            "sum_sq_error",
            "sum_sq_exact",
            "outputs",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    # -- derived quantities -------------------------------------------------
    @property
    def activation_sparsity(self) -> float:
        """Fraction of zero-valued quantized activations."""
        if self.act_values == 0:
            return 0.0
        return 1.0 - self.act_nonzero / self.act_values

    @property
    def baseline_utilization(self) -> float:
        """Fraction of conventional-SA MAC cycles doing useful work."""
        if self.mac_total == 0:
            return 0.0
        return self.mac_active / self.mac_total

    @property
    def smt_utilization(self) -> float:
        """Fraction of SySMT PE issue slots doing useful work."""
        if self.slots_total == 0:
            return 0.0
        return self.slots_active / self.slots_total

    @property
    def utilization_gain(self) -> float:
        """Utilization improvement of SySMT over the conventional SA (Fig. 9)."""
        if self.baseline_utilization == 0.0:
            return 1.0
        return self.smt_utilization / self.baseline_utilization

    @property
    def collision_rate(self) -> float:
        if self.mac_total == 0:
            return 0.0
        return self.mac_collided / self.mac_total

    @property
    def reduction_rate(self) -> float:
        if self.mac_total == 0:
            return 0.0
        return self.mac_reduced / self.mac_total

    @property
    def relative_mse(self) -> float:
        """MSE of the noisy output relative to the mean square of the exact output."""
        if self.sum_sq_exact == 0.0:
            return 0.0
        return self.sum_sq_error / self.sum_sq_exact

    @property
    def mse(self) -> float:
        if self.outputs == 0:
            return 0.0
        return self.sum_sq_error / self.outputs

    def to_payload(self) -> dict[str, float]:
        """Raw counters as a JSON-able dict (see :meth:`from_payload`)."""
        return {
            "mac_total": int(self.mac_total),
            "mac_active": int(self.mac_active),
            "mac_collided": int(self.mac_collided),
            "mac_reduced": int(self.mac_reduced),
            "slots_total": int(self.slots_total),
            "slots_active": int(self.slots_active),
            "act_values": int(self.act_values),
            "act_nonzero": int(self.act_nonzero),
            "sum_sq_error": float(self.sum_sq_error),
            "sum_sq_exact": float(self.sum_sq_exact),
            "outputs": int(self.outputs),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SMTStatistics":
        """Rebuild the counters from :meth:`to_payload` output.

        Integer counters survive a JSON round trip exactly, and the two
        float sums round-trip bit-exactly through ``json`` (repr-based), so
        ``from_payload(json.loads(json.dumps(s.to_payload())))`` reproduces
        every derived statistic bit-for-bit.
        """
        stats = cls()
        for name in (
            "mac_total", "mac_active", "mac_collided", "mac_reduced",
            "slots_total", "slots_active", "act_values", "act_nonzero",
            "outputs",
        ):
            setattr(stats, name, int(payload[name]))
        stats.sum_sq_error = float(payload["sum_sq_error"])
        stats.sum_sq_exact = float(payload["sum_sq_exact"])
        return stats

    def as_dict(self) -> dict[str, float]:
        return {
            "mac_total": float(self.mac_total),
            "mac_active": float(self.mac_active),
            "mac_collided": float(self.mac_collided),
            "mac_reduced": float(self.mac_reduced),
            "slots_total": float(self.slots_total),
            "slots_active": float(self.slots_active),
            "activation_sparsity": self.activation_sparsity,
            "baseline_utilization": self.baseline_utilization,
            "smt_utilization": self.smt_utilization,
            "utilization_gain": self.utilization_gain,
            "collision_rate": self.collision_rate,
            "reduction_rate": self.reduction_rate,
            "relative_mse": self.relative_mse,
            "mse": self.mse,
        }


def split_into_threads(
    x_q: np.ndarray, w_q: np.ndarray, threads: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split the K dimension into ``threads`` contiguous slices (Eq. (2)).

    Returns arrays of shape ``(T, M, K/T)`` and ``(T, K/T, N)``; K is padded
    with zeros (inactive positions) when not divisible by the thread count.
    """
    m, k = x_q.shape
    k_w, n = w_q.shape
    if k != k_w:
        raise ValueError("inner dimensions of X and W differ")
    per_thread = -(-k // threads)  # ceil division
    padded_k = per_thread * threads
    if padded_k != k:
        x_pad = np.zeros((m, padded_k), dtype=x_q.dtype)
        x_pad[:, :k] = x_q
        w_pad = np.zeros((padded_k, n), dtype=w_q.dtype)
        w_pad[:k, :] = w_q
        x_q, w_q = x_pad, w_pad
    x_threads = x_q.reshape(m, threads, per_thread).transpose(1, 0, 2)
    w_threads = w_q.reshape(threads, per_thread, n)
    return np.ascontiguousarray(x_threads), np.ascontiguousarray(w_threads)


def _as_int64(a: np.ndarray) -> np.ndarray:
    """View the array as int64, copying only when the dtype actually differs."""
    return a if a.dtype == np.int64 else a.astype(np.int64)


def _int_gemm(left: np.ndarray, right: np.ndarray, bound: float) -> np.ndarray:
    """Exact integer matmul of integer-valued matrices through BLAS.

    ``bound`` is an upper bound on ``sum_k |left[m, k] * right[k, n]|``; it
    decides the narrowest float dtype whose accumulations stay lossless
    (every partial sum is an integer below the mantissa limit, so the result
    is exact regardless of the accumulation order).
    """
    if bound < _F32_EXACT_LIMIT:
        dtype = np.float32
    elif bound < _F64_EXACT_LIMIT:
        dtype = np.float64
    else:  # pragma: no cover - unreachable for 8-bit operands
        return _as_int64(left) @ _as_int64(right)
    return np.rint(left.astype(dtype) @ right.astype(dtype)).astype(np.int64)


def _exact_matmul(x_q: np.ndarray, w_q: np.ndarray) -> np.ndarray:
    """Exact product of 8-bit-ranged integer matrices (float64 path)."""
    return np.rint(x_q.astype(np.float64) @ w_q.astype(np.float64)).astype(np.int64)


class _ErrorAccumulator:
    """Collects separable error terms and evaluates them with few GEMMs.

    Each term is ``scale * (gate_l * val_l) @ (gate_r * val_r)`` for
    integer-valued matrices of shapes ``(M, Kt)`` and ``(Kt, N)``.  Terms are
    only described by :meth:`add`; :meth:`total` partitions them into groups
    whose cumulative exactness bound fits a float32 GEMM (float64 for
    oversized single terms), writes the gated factors directly into
    preallocated stacked operands (no per-term temporaries or concatenation)
    and issues one BLAS call per group.

    ``columns`` optionally restricts a term to a subset of its K positions:
    a K column whose gated left column or gated right row is entirely zero
    contributes nothing, so it can be dropped from the stacked operands
    without changing the product (sparsity-adaptive block pruning).
    """

    def __init__(self, m: int, n: int):
        self.m = m
        self.n = n
        self._terms: list[tuple] = []

    def add(
        self,
        gate_left: np.ndarray | bool,
        values_left: np.ndarray,
        gate_right: np.ndarray | bool,
        values_right: np.ndarray,
        bound: float,
        scale: float = 1.0,
        columns: np.ndarray | None = None,
    ) -> None:
        """Record the term; ``bound`` upper-bounds its product-sum magnitude."""
        self._terms.append(
            (gate_left, values_left, gate_right, values_right, bound, scale,
             columns)
        )

    @staticmethod
    def _term_width(term: tuple) -> int:
        columns = term[6]
        return term[1].shape[-1] if columns is None else len(columns)

    def _evaluate_group(self, group: list[tuple], dtype) -> np.ndarray:
        width = sum(self._term_width(term) for term in group)
        lefts = np.empty((self.m, width), dtype=dtype)
        rights = np.empty((width, self.n), dtype=dtype)
        pos = 0
        for gate_l, val_l, gate_r, val_r, _, scale, columns in group:
            if columns is not None:
                val_l = val_l[:, columns]
                val_r = val_r[columns, :]
                if isinstance(gate_l, np.ndarray):
                    gate_l = gate_l[:, columns]
                if isinstance(gate_r, np.ndarray):
                    gate_r = gate_r[columns, :]
            stop = pos + val_l.shape[-1]
            left_view = lefts[:, pos:stop]
            np.multiply(gate_l, val_l, out=left_view, casting="unsafe")
            if scale != 1.0:
                left_view *= dtype(scale)
            np.multiply(gate_r, val_r, out=rights[pos:stop, :], casting="unsafe")
            pos = stop
        return lefts @ rights

    def total(self) -> np.ndarray:
        """Evaluate all recorded terms; returns the integer error matrix."""
        if not self._terms:
            return np.zeros((self.m, self.n), dtype=np.int64)
        total: np.ndarray | None = None
        group: list[tuple] = []
        group_bound = 0.0
        groups: list[tuple[list[tuple], type]] = []
        for term in self._terms:
            bound = term[4]
            if bound >= _F32_EXACT_LIMIT:
                groups.append(([term], np.float64))
                continue
            if group and group_bound + bound >= _F32_EXACT_LIMIT:
                groups.append((group, np.float32))
                group, group_bound = [], 0.0
            group.append(term)
            group_bound += bound
        if group:
            groups.append((group, np.float32))
        for members, dtype in groups:
            partial = self._evaluate_group(members, dtype)
            if total is None:
                total = partial.astype(np.float64)
            else:
                total += partial
        self._terms = []
        return np.rint(total).astype(np.int64)


class _ColumnPruner:
    """Sparsity-adaptive block pruning for the factorized 4-thread path.

    Every error block is ``(gate_a * left) @ (gate_w * right)``; a K column
    contributes only when the gated left factor has a nonzero in that column
    *and* the gated right factor has a nonzero in that row.  Exact per-block
    masks would cost ``O(M Kt)`` per block, so the pruner intersects three
    cheap over-approximations, each computed once and reused: the subset
    gate's active columns (a by-product of the sums the subset-skip test
    needs anyway) and per-thread activity vectors of the left/right value
    factors (one ``any`` reduction per thread, computed lazily).  Blocks
    with no active column are dropped before stacking; mostly-inactive
    blocks are narrowed to their active columns.  Dropped columns contribute
    exactly zero, so pruning is bit-exact.
    """

    def __init__(self, kt: int, select_fraction: float = 0.5):
        self.kt = kt
        self.select_fraction = select_fraction
        self._cols: dict[tuple[str, int], np.ndarray] = {}

    def side_vector(self, kind: str, t: int, values: np.ndarray,
                    axis: int) -> np.ndarray:
        """Per-K activity of one value factor (lazily memoized per thread)."""
        key = (kind, t)
        vec = self._cols.get(key)
        if vec is None:
            vec = (values != 0).any(axis=axis)
            self._cols[key] = vec
        return vec

    def columns(
        self,
        subset_cols: np.ndarray | None,
        left_cols: np.ndarray,
        right_rows: np.ndarray,
    ) -> tuple[bool, np.ndarray | None]:
        """``(keep, columns)`` for one block.

        ``keep`` is False when no K column is active (the block is skipped
        entirely); ``columns`` is the active-column index subset when enough
        columns are inactive for the gather to pay for itself, else None
        (stack the full block).
        """
        active = left_cols & right_rows
        if subset_cols is not None:
            active = active & subset_cols
        count = int(active.sum())
        if count == 0:
            return False, None
        if count > self.select_fraction * self.kt:
            return True, None
        return True, np.flatnonzero(active)


class NBSMTMatmul:
    """Functional NB-SMT executor for a fixed thread count and policy.

    Parameters
    ----------
    threads:
        Number of DNN threads sharing each PE (1, 2 or 4).  One thread is
        the conventional, error-free execution.
    policy:
        A :class:`PackingPolicy` or its Table III name.
    collect_stats:
        Maintain the :class:`SMTStatistics` counters (requires computing the
        exact result as well; disable for pure-speed runs).
    force_reference:
        Always use the chunked reference implementation (used by tests to
        validate the factorized fast paths).
    chunk_rows:
        Row chunk size of the reference implementation.
    fast4t_impl:
        ``"stacked"`` (default) selects the optimized stacked-GEMM 4-thread
        path; ``"legacy"`` selects the seed's original factorized
        implementation, retained for A/B benchmarking (its ``mac_reduced``
        counter is a collision-count proxy, not the exact reduction count).
    prune_blocks:
        Sparsity-adaptive block pruning in the stacked 4-thread path: error
        blocks whose gated factors have no jointly-active K column are
        skipped before stacking, and mostly-inactive blocks are narrowed to
        their active columns.  Bit-exact; disable for A/B benchmarking.
    """

    def __init__(
        self,
        threads: int = 2,
        policy: PackingPolicy | str = "S+A",
        collect_stats: bool = True,
        force_reference: bool = False,
        chunk_rows: int = 256,
        fast4t_impl: str = "stacked",
        prune_blocks: bool = True,
    ):
        if threads not in (1, 2, 4):
            raise ValueError("NB-SMT supports 1, 2 or 4 threads")
        if fast4t_impl not in ("stacked", "legacy"):
            raise ValueError("fast4t_impl must be 'stacked' or 'legacy'")
        self.threads = threads
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.collect_stats = collect_stats
        self.force_reference = force_reference
        self.chunk_rows = chunk_rows
        self.fast4t_impl = fast4t_impl
        self.prune_blocks = prune_blocks
        self.stats = SMTStatistics()

    # -- public API -----------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = SMTStatistics()

    def matmul(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        permutation: np.ndarray | None = None,
    ) -> np.ndarray:
        """Integer accumulators of the NB-SMT execution of ``x_q @ w_q``.

        ``x_q`` holds unsigned 8-bit activations (shape ``(M, K)``), ``w_q``
        signed 8-bit weights (shape ``(K, N)``).  ``permutation`` optionally
        reorders the K dimension before the threads are formed (Section IV-B);
        the result is unchanged by any permutation when no noise is injected.
        """
        x_q = np.asarray(x_q)
        w_q = np.asarray(w_q)
        if permutation is not None:
            x_q = x_q[:, permutation]
            w_q = w_q[permutation, :]

        if self.threads == 1:
            out = _exact_matmul(x_q, w_q)
            if self.collect_stats:
                self._record_single_thread(x_q, w_q)
            return out

        x_t, w_t = split_into_threads(x_q, w_q, self.threads)
        if self.force_reference:
            out, stats = _reference_multi_t(
                x_t, w_t, self.policy, self.collect_stats, self.chunk_rows
            )
        elif self.threads == 2:
            out, stats = _fast_2t(x_t, w_t, self.policy, self.collect_stats)
        elif self.fast4t_impl == "legacy":
            out, stats = _fast_4t_legacy(x_t, w_t, self.policy, self.collect_stats)
        else:
            out, stats = _fast_4t(
                x_t, w_t, self.policy, self.collect_stats,
                prune_blocks=self.prune_blocks,
            )
        if self.collect_stats and stats is not None:
            self.stats.merge(stats)
        return out

    # -- internals --------------------------------------------------------------
    def _record_single_thread(self, x_q: np.ndarray, w_q: np.ndarray) -> None:
        stats = SMTStatistics()
        active = _count_active(x_q, w_q)
        total = x_q.shape[0] * x_q.shape[1] * w_q.shape[1]
        stats.mac_total = total
        stats.mac_active = active
        stats.slots_total = total
        stats.slots_active = active
        stats.act_values = int(x_q.size)
        stats.act_nonzero = int(np.count_nonzero(x_q))
        stats.outputs = x_q.shape[0] * w_q.shape[1]
        self.stats.merge(stats)


def _count_active(x_q: np.ndarray, w_q: np.ndarray) -> int:
    """Number of (m, k, n) MAC positions where both operands are nonzero."""
    x_nonzero = (x_q != 0).astype(np.int64)
    w_nonzero = (w_q != 0).astype(np.int64)
    return int(x_nonzero.sum(axis=0) @ w_nonzero.sum(axis=1))


def _operand_maxima(x_t: np.ndarray, w_t: np.ndarray) -> tuple[int, int]:
    """Maximum operand magnitudes, used to tighten GEMM exactness bounds."""
    amax = int(np.abs(_as_int64(x_t)).max(initial=0))
    wmax = int(np.abs(_as_int64(w_t)).max(initial=0))
    return amax, wmax


def _narrowed(a: np.ndarray, max_abs: int) -> np.ndarray:
    """An int16 copy when the values fit (8-bit operands always do).

    The gated-GEMM assembly is memory bound, so 2-byte reads beat the 8-byte
    int64 defaults; values outside the int16 range (only possible for
    callers violating the 8-bit operand contract) are left untouched.
    """
    if a.dtype == np.int16 or max_abs > 32767:
        return a
    return a.astype(np.int16)


# ---------------------------------------------------------------------------
# Factorized 2-thread fast path
# ---------------------------------------------------------------------------

def _fast_2t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Factorized 2-thread execution: exact matmul plus masked-delta matmuls."""
    amax, wmax = _operand_maxima(x_t, w_t)
    x16 = _narrowed(x_t, amax)
    w16 = _narrowed(w_t, wmax)
    x1, x2 = x16[0], x16[1]
    w1, w2 = w16[0], w16[1]
    m, kt = x1.shape
    n = w1.shape[1]

    exact = _int_gemm(
        np.concatenate([x1, x2], axis=1),
        np.concatenate([w1, w2], axis=0),
        bound=2.0 * kt * amax * wmax,
    )

    act_nonzero_1, act_nonzero_2 = x1 != 0, x2 != 0
    wgt_nonzero_1, wgt_nonzero_2 = w1 != 0, w2 != 0
    if policy.sparsity:
        collide_act = act_nonzero_1 & act_nonzero_2          # (M, Kt)
        collide_wgt = wgt_nonzero_1 & wgt_nonzero_2          # (Kt, N)
    else:
        collide_act = np.ones_like(act_nonzero_1, dtype=bool)
        collide_wgt = np.ones_like(wgt_nonzero_1, dtype=bool)

    accumulator = _ErrorAccumulator(m, n)
    reduced_positions = 0
    for x_self, w_self in ((x1, w1), (x2, w2)):
        if policy.reduce == "act":
            delta = packing.act_reduction_delta(x_self, policy)       # (M, Kt)
            right_values = w_self
            if policy.width_secondary:
                right_values = w_self * ~wgt_fits_4bit(w_self)
            accumulator.add(
                collide_act, delta, collide_wgt, right_values,
                bound=float(kt) * _DELTA_MAX * wmax,
            )
        else:
            delta = packing.wgt_reduction_delta(w_self, policy)       # (Kt, N)
            left_values = x_self
            if policy.width_secondary:
                left_values = x_self * ~act_fits_4bit(x_self)
            accumulator.add(
                collide_act, left_values, collide_wgt, delta,
                bound=float(kt) * amax * _DELTA_MAX,
            )
        if collect_stats:
            if policy.reduce == "act":
                err_cols = collide_act & (delta != 0)
                err_rows = collide_wgt & (w_self != 0)
                if policy.width_secondary:
                    err_rows = err_rows & (~wgt_fits_4bit(w_self))
            else:
                err_cols = collide_act & (x_self != 0)
                if policy.width_secondary:
                    err_cols = err_cols & (~act_fits_4bit(x_self))
                err_rows = collide_wgt & (delta != 0)
            reduced_positions += int(
                err_cols.sum(axis=0).astype(np.int64)
                @ err_rows.sum(axis=1).astype(np.int64)
            )

    out = exact + accumulator.total()

    if not collect_stats:
        return out, None

    stats = SMTStatistics()
    active_1 = int(act_nonzero_1.sum(axis=0).astype(np.int64)
                   @ wgt_nonzero_1.sum(axis=1).astype(np.int64))
    active_2 = int(act_nonzero_2.sum(axis=0).astype(np.int64)
                   @ wgt_nonzero_2.sum(axis=1).astype(np.int64))
    both_active = int(
        (act_nonzero_1 & act_nonzero_2).sum(axis=0).astype(np.int64)
        @ (wgt_nonzero_1 & wgt_nonzero_2).sum(axis=1).astype(np.int64)
    )
    stats.mac_total = 2 * m * kt * n
    stats.mac_active = active_1 + active_2
    stats.mac_collided = 2 * both_active
    stats.mac_reduced = reduced_positions
    stats.slots_total = m * kt * n
    stats.slots_active = active_1 + active_2 - both_active
    stats.act_values = int(x1.size + x2.size)
    stats.act_nonzero = int(act_nonzero_1.sum() + act_nonzero_2.sum())
    stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
    stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
    stats.outputs = int(exact.size)
    return out, stats


# ---------------------------------------------------------------------------
# Optimized factorized 4-thread fast path
# ---------------------------------------------------------------------------

#: (pair, many) error coefficients by the number of *other* colliding threads,
#: from the inclusion-exclusion expansion of the exactly-one-other /
#: two-or-more-others demand indicators.
_SUBSET_COEFFS = {1: (1.0, 0.0), 2: (-2.0, 1.0), 3: (3.0, -2.0)}


@lru_cache(maxsize=None)
def _value_luts(width_primary: bool) -> dict[str, np.ndarray]:
    """Per-operand-value lookup tables of the many-way (4b-4b) reduction.

    Everything derives from the delta tables in :mod:`repro.core.packing`
    (the single source of the width-gated reduction semantics): the
    effective 4b-4b operand is ``value + delta`` and an operand changed iff
    its delta is nonzero.  The deltas keep packing's narrow int8 storage --
    the gated-GEMM assembly is memory bound.
    """
    act = np.arange(256, dtype=np.int64)
    wgt = np.arange(-128, 128, dtype=np.int64)
    dx = packing._DELTA_LUTS[("act", width_primary)]
    dw = packing._DELTA_LUTS[("wgt", width_primary)]
    return {
        "x4": act + dx,
        "w4": wgt + dw,
        "dx": dx,
        "dw": dw,
        "achg": dx != 0,
        "wchg": dw != 0,
        "afits": act_fits_4bit(act),
        "wfits": wgt_fits_4bit(wgt),
    }


def _act_lut_take(lut: np.ndarray, x: np.ndarray) -> np.ndarray:
    return lut.take(np.clip(x, 0, 255))


def _wgt_lut_take(lut: np.ndarray, w: np.ndarray) -> np.ndarray:
    return lut.take(np.clip(w, -128, 127) + 128)


def _popcount4(values: np.ndarray) -> np.ndarray:
    return (values & 1) + ((values >> 1) & 1) + ((values >> 2) & 1) + (
        (values >> 3) & 1
    )


@lru_cache(maxsize=None)
def _activity_tables() -> dict[str, np.ndarray]:
    """16x16 tables of the per-slot statistics as functions of (alpha, beta).

    ``alpha``/``beta`` are the 4-bit activation-side / weight-side nonzero
    patterns of the four threads at one (m, k) / (k, n) position; their AND
    is the joint activity pattern of the issue slot.
    """
    alpha = np.arange(16)[:, None]
    beta = np.arange(16)[None, :]
    joint = alpha & beta
    demand = _popcount4(joint)
    return {
        "active": demand.astype(np.int64),
        "slots": (demand > 0).astype(np.int64),
        "collided": np.where(demand >= 2, demand, 0).astype(np.int64),
    }


@lru_cache(maxsize=None)
def _reduced_tables(policy: PackingPolicy) -> tuple[np.ndarray, ...]:
    """Per-thread 64x64 tables counting reduced (noisy) MAC positions.

    Activation-side codes are ``alpha | achg << 4 | afits << 5`` and
    weight-side codes ``beta | wchg << 4 | wfits << 5``, where ``achg`` /
    ``wchg`` flag operands changed by the 4b-4b reduction and ``afits`` /
    ``wfits`` flag operands that fit in 4 bits.  Entry ``[ac, bc]`` of table
    ``t`` is 1 when thread ``t``'s effective product differs from its exact
    product at a position with those codes (there are no value coincidences:
    an 8-bit product never equals a different reduced product, which the
    property tests re-verify against the reference executor).
    """
    codes = np.arange(64)
    alpha = (codes & 15)[:, None]
    achg = ((codes >> 4) & 1)[:, None]
    afits = ((codes >> 5) & 1)[:, None]
    beta = (codes & 15)[None, :]
    wchg = ((codes >> 4) & 1)[None, :]
    wfits = ((codes >> 5) & 1)[None, :]

    joint = alpha & beta
    demand = _popcount4(joint)

    tables = []
    for t in range(4):
        xn = (alpha >> t) & 1
        wn = (beta >> t) & 1
        active_t = (joint >> t) & 1
        diff_many = (achg & wn) | (wchg & xn)
        if policy.reduce == "act":
            diff_pair = achg & wn
            if policy.width_secondary:
                diff_pair = diff_pair & (1 - wfits)
        else:
            diff_pair = wchg & xn
            if policy.width_secondary:
                diff_pair = diff_pair & (1 - afits)
        if policy.sparsity:
            table = active_t * (
                (demand == 2) * diff_pair + (demand >= 3) * diff_many
            )
        else:
            # Without sparsity detection every 4-thread position is a full
            # (>= 3-way) collision.
            table = diff_many
        tables.append(table.astype(np.int64))
    return tuple(tables)


def _side_histograms(codes: np.ndarray, axis: int, num_codes: int) -> np.ndarray:
    """Histogram the codes of one side per K position: returns ``(Kt, codes)``.

    ``axis`` is the dimension summed over (0 for the ``(M, Kt)`` activation
    side, 1 for the ``(Kt, N)`` weight side).
    """
    if axis == 0:
        kt = codes.shape[1]
        keys = codes + num_codes * np.arange(kt, dtype=np.int64)[None, :]
    else:
        kt = codes.shape[0]
        keys = codes + num_codes * np.arange(kt, dtype=np.int64)[:, None]
    counts = np.bincount(keys.ravel(), minlength=num_codes * kt)
    return counts.reshape(kt, num_codes)


def _contract(
    hist_a: np.ndarray, table: np.ndarray, hist_b: np.ndarray
) -> int:
    """``sum_k hist_a[k] @ table @ hist_b[k]`` for per-K-column histograms."""
    return int(((hist_a @ table) * hist_b).sum())


def _fast_4t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
    prune_blocks: bool = True,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Optimized factorized 4-thread execution.

    The NB-SMT output equals the exact product plus error terms gated by the
    per-position demand count.  Because the demand indicator of each thread
    factors into an activation-side and a weight-side binary mask, the gated
    error sums expand (by inclusion-exclusion over thread subsets) into
    separable blocks; the blocks are merged where they share a weight-side
    factor and stacked along the inner dimension into a handful of BLAS
    GEMMs whose float dtype is chosen by exactness bounds.  Statistics are
    reconstructed exactly from per-K-column histograms of the 4-bit thread
    activity patterns (see :func:`_reduced_tables`).

    ``prune_blocks`` additionally drops (or narrows to their jointly-active
    K columns) error blocks whose gated delta/value factors are empty --
    frequent for sparse or narrow-valued operands, where most reduction
    deltas vanish (see :class:`_ColumnPruner`; bit-exact).
    """
    threads = 4
    amax, wmax = _operand_maxima(x_t, w_t)
    x16 = _narrowed(x_t, amax)
    w16 = _narrowed(w_t, wmax)
    xs = [x16[t] for t in range(threads)]
    ws = [w16[t] for t in range(threads)]
    m, kt = xs[0].shape
    n = ws[0].shape[1]

    exact = _int_gemm(
        np.concatenate(xs, axis=1),
        np.concatenate(ws, axis=0),
        bound=4.0 * kt * amax * wmax,
    )

    act_masks = [x != 0 for x in xs]
    wgt_masks = [w != 0 for w in ws]
    luts = _value_luts(policy.width_primary)
    # Reduction deltas of the many-way (4b-4b) path: dx = x4 - x, dw = w4 - w.
    # Both are bounded by _DELTA_MAX, which keeps every error block below in
    # small float32-friendly range; the pairwise-collision delta of the
    # reduced operand is the *same* delta (identical width handling), which
    # lets the pair term merge with the dx (x) w third of the many term.
    dxs = [_act_lut_take(luts["dx"], x) for x in xs]
    dws = [_wgt_lut_take(luts["dw"], w) for w in ws]

    accumulator = _ErrorAccumulator(m, n)
    pruner = _ColumnPruner(kt) if prune_blocks else None

    def gated_add(t, gate_a, left, lkind, gate_w, right, rkind,
                  bound, scale=1.0, subset_cols=None):
        """Record thread ``t``'s error block, pruned to its active K columns."""
        columns = None
        if pruner is not None:
            keep, columns = pruner.columns(
                subset_cols,
                pruner.side_vector(lkind, t, left, axis=0),
                pruner.side_vector(rkind, t, right, axis=1),
            )
            if not keep:
                return
        accumulator.add(gate_a, left, gate_w, right, bound, scale=scale,
                        columns=columns)

    ones_gate = True  # scalar "no gate" for ungated blocks
    pair_bound = (
        float(kt) * _DELTA_MAX * wmax
        if policy.reduce == "act"
        else float(kt) * amax * _DELTA_MAX
    )
    many_bounds = (
        float(kt) * _DELTA_MAX * wmax,        # dx (x) w
        float(kt) * amax * _DELTA_MAX,        # x (x) dw
        float(kt) * _DELTA_MAX * _DELTA_MAX,  # dx (x) dw
    )

    if not policy.sparsity:
        # Every position is a full (>= 3-way) collision:
        # out = X4 @ W4 = exact + sum_t dx (x) w + x (x) dw + dx (x) dw.
        for t in range(threads):
            gated_add(t, ones_gate, dxs[t], "dx",
                      ones_gate, ws[t], "w", many_bounds[0])
            gated_add(t, ones_gate, xs[t], "x",
                      ones_gate, dws[t], "dw", many_bounds[1])
            gated_add(t, ones_gate, dxs[t], "dx",
                      ones_gate, dws[t], "dw", many_bounds[2])
        out = exact + accumulator.total()
    else:
        if policy.width_secondary:
            if policy.reduce == "act":
                sec_wgt = [w * ~wgt_fits_4bit(w) for w in ws]
            else:
                sec_act = [x * ~act_fits_4bit(x) for x in xs]

        # Subset gates: A_S = AND of the act masks, W_S = AND of the wgt
        # masks.  A block gated by (A_S, W_S) contributes nothing when no K
        # position has both a nonzero A_S column and a nonzero W_S row.
        gates: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {
            (t,): (act_masks[t], wgt_masks[t]) for t in range(threads)
        }
        for size in (2, 3, 4):
            for subset in combinations(range(threads), size):
                prev_a, prev_w = gates[subset[:-1]]
                last = subset[-1]
                gates[subset] = (
                    prev_a & act_masks[last], prev_w & wgt_masks[last]
                )

        for size in (2, 3, 4):
            for subset in combinations(range(threads), size):
                gate_a, gate_w = gates[subset]
                # Active K columns of this subset gate: a block gated by
                # (A_S, W_S) only receives contributions where some row of
                # A_S and some column of W_S are jointly nonzero.
                subset_cols = gate_a.any(axis=0) & gate_w.any(axis=1)
                if not subset_cols.any():
                    continue
                c1, c2 = _SUBSET_COEFFS[size - 1]
                for t in subset:
                    # Pair error of the reduced operand; when the pair and
                    # many terms share a factor pair, their coefficients are
                    # merged into a single block.
                    if policy.reduce == "act":
                        pair_dx = c1 if policy.width_secondary else 0.0
                        merged_dx_w = c2 if policy.width_secondary else c1 + c2
                        pair_x_dw, merged_x_dw = 0.0, c2
                    else:
                        pair_x_dw = c1 if policy.width_secondary else 0.0
                        merged_x_dw = c2 if policy.width_secondary else c1 + c2
                        pair_dx, merged_dx_w = 0.0, c2
                    if pair_dx != 0.0:
                        gated_add(
                            t, gate_a, dxs[t], "dx",
                            gate_w, sec_wgt[t], "secw",
                            bound=abs(pair_dx) * pair_bound, scale=pair_dx,
                            subset_cols=subset_cols,
                        )
                    if pair_x_dw != 0.0:
                        gated_add(
                            t, gate_a, sec_act[t], "seca",
                            gate_w, dws[t], "dw",
                            bound=abs(pair_x_dw) * pair_bound, scale=pair_x_dw,
                            subset_cols=subset_cols,
                        )
                    if merged_dx_w != 0.0:
                        gated_add(
                            t, gate_a, dxs[t], "dx",
                            gate_w, ws[t], "w",
                            bound=abs(merged_dx_w) * many_bounds[0],
                            scale=merged_dx_w, subset_cols=subset_cols,
                        )
                    if merged_x_dw != 0.0:
                        gated_add(
                            t, gate_a, xs[t], "x",
                            gate_w, dws[t], "dw",
                            bound=abs(merged_x_dw) * many_bounds[1],
                            scale=merged_x_dw, subset_cols=subset_cols,
                        )
                    if c2 != 0.0:
                        gated_add(
                            t, gate_a, dxs[t], "dx",
                            gate_w, dws[t], "dw",
                            bound=abs(c2) * many_bounds[2], scale=c2,
                            subset_cols=subset_cols,
                        )
        out = exact + accumulator.total()

    if not collect_stats:
        return out, None

    stats = SMTStatistics()
    alpha = (
        act_masks[0].astype(np.int64)
        + 2 * act_masks[1]
        + 4 * act_masks[2]
        + 8 * act_masks[3]
    )
    beta = (
        wgt_masks[0].astype(np.int64)
        + 2 * wgt_masks[1]
        + 4 * wgt_masks[2]
        + 8 * wgt_masks[3]
    )
    achgs = [_act_lut_take(luts["achg"], x) for x in xs]
    wchgs = [_wgt_lut_take(luts["wchg"], w) for w in ws]
    hist_a = [
        _side_histograms(
            alpha + 16 * achgs[t] + 32 * act_fits_4bit(xs[t]),
            axis=0, num_codes=64,
        )
        for t in range(threads)
    ]
    hist_b = [
        _side_histograms(
            beta + 16 * wchgs[t] + 32 * wgt_fits_4bit(ws[t]),
            axis=1, num_codes=64,
        )
        for t in range(threads)
    ]
    # 16-bin activity histograms, marginalized from the richer 64-bin ones.
    hist_alpha = hist_a[0].reshape(kt, 4, 16).sum(axis=1)
    hist_beta = hist_b[0].reshape(kt, 4, 16).sum(axis=1)

    activity = _activity_tables()
    reduced_tables = _reduced_tables(policy)
    stats.mac_total = threads * m * kt * n
    stats.mac_active = _contract(hist_alpha, activity["active"], hist_beta)
    stats.mac_collided = _contract(hist_alpha, activity["collided"], hist_beta)
    stats.mac_reduced = int(
        sum(
            _contract(hist_a[t], reduced_tables[t], hist_b[t])
            for t in range(threads)
        )
    )
    stats.slots_total = m * kt * n
    stats.slots_active = _contract(hist_alpha, activity["slots"], hist_beta)
    stats.act_values = int(sum(x.size for x in xs))
    stats.act_nonzero = int(sum(mask.sum() for mask in act_masks))
    stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
    stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
    stats.outputs = int(exact.size)
    return out, stats


# ---------------------------------------------------------------------------
# Reference implementation (any thread count)
# ---------------------------------------------------------------------------

@dataclass
class ChunkResult:
    """Outcome of one lane-level NB-SMT chunk execution."""

    out: np.ndarray
    exact: np.ndarray | None
    active_slots: int
    mac_active: int
    mac_collided: int
    reduced_positions: int


def nbsmt_effective_chunk(
    x_chunk: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool = False,
) -> ChunkResult:
    """Lane-level NB-SMT execution of one row chunk (Algorithm 1 semantics).

    ``x_chunk`` has shape ``(T, rows, Kt)`` and ``w_t`` shape ``(T, Kt, N)``.
    Materializes the per-position activity tensor, applies the collision
    rules of Algorithm 1 (and its 4-thread extension) exactly, and returns
    the chunk output together with activity/collision counters (the exact
    output and reduction count are only computed when ``collect_stats``;
    ``active_slots`` counts positions with at least one active thread and is
    always computed, as the explicit array simulator reports it as active MAC
    cycles).

    This helper is shared by the chunked reference executor and the
    vectorized explicit SySMT array simulator.
    """
    threads, rows, kt = x_chunk.shape
    n = w_t.shape[2]
    x_chunk = _as_int64(x_chunk)
    w_t = _as_int64(w_t)

    wgt_nonzero = w_t != 0                                   # (T, Kt, N)
    active = np.empty((threads, rows, kt, n), dtype=bool)
    for t in range(threads):
        act_nonzero = x_chunk[t] != 0                        # (rows, Kt)
        active[t] = act_nonzero[:, :, None] & wgt_nonzero[t][None, :, :]
    demand = active.sum(axis=0, dtype=np.int8)               # (rows, Kt, N)

    chunk_out = np.zeros((rows, n), dtype=np.int64)
    chunk_exact = np.zeros((rows, n), dtype=np.int64) if collect_stats else None
    reduced_positions = 0

    for t in range(threads):
        x_col = x_chunk[t][:, :, None]                       # (rows, Kt, 1)
        w_row = w_t[t][None, :, :]                           # (1, Kt, N)
        exact_prod = x_col * w_row                           # (rows, Kt, N)

        if policy.sparsity:
            collide_pair = active[t] & (demand == 2)
            collide_many = active[t] & (demand >= 3)
        elif threads == 2:
            # Without sparsity detection every thread always demands the
            # MAC, so every position is treated as a full collision.
            collide_pair = np.ones_like(active[t])
            collide_many = np.zeros_like(active[t])
        else:
            collide_pair = np.zeros_like(active[t])
            collide_many = np.ones_like(active[t])

        effective = exact_prod
        if np.any(collide_pair):
            pair_prod = packing.colliding_product_2t(x_col, w_row, policy)
            effective = np.where(collide_pair, pair_prod, effective)
        if np.any(collide_many):
            many_prod = packing.colliding_product_4t(x_col, w_row, policy)
            effective = np.where(collide_many, many_prod, effective)

        chunk_out += effective.sum(axis=1)
        if collect_stats:
            chunk_exact += exact_prod.sum(axis=1)
            reduced_positions += int(
                ((effective != exact_prod) & (collide_pair | collide_many)).sum()
            )

    return ChunkResult(
        out=chunk_out,
        exact=chunk_exact,
        active_slots=int(active.any(axis=0).sum()),
        mac_active=int(active.sum()),
        mac_collided=int((active & (demand >= 2)).sum()),
        reduced_positions=reduced_positions,
    )


def _reference_multi_t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
    chunk_rows: int,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Chunked reference implementation for any thread count.

    Materializes the per-position activity tensor chunk by chunk and applies
    the collision rules of Algorithm 1 (and its 4-thread extension) exactly.
    """
    threads, m, kt = x_t.shape
    n = w_t.shape[2]
    x_t = _as_int64(x_t)
    w_t = _as_int64(w_t)

    out = np.zeros((m, n), dtype=np.int64)
    exact = np.zeros((m, n), dtype=np.int64) if collect_stats else None
    stats = SMTStatistics() if collect_stats else None

    for start in range(0, m, chunk_rows):
        stop = min(start + chunk_rows, m)
        x_chunk = x_t[:, start:stop, :]                      # (T, rows, Kt)
        rows = stop - start

        chunk = nbsmt_effective_chunk(x_chunk, w_t, policy, collect_stats)
        out[start:stop] = chunk.out
        if collect_stats:
            exact[start:stop] = chunk.exact
            stats.mac_total += threads * rows * kt * n
            stats.mac_active += chunk.mac_active
            stats.mac_collided += chunk.mac_collided
            stats.mac_reduced += chunk.reduced_positions
            stats.slots_total += rows * kt * n
            stats.slots_active += chunk.active_slots

    if collect_stats:
        stats.act_values = int(x_t.size)
        stats.act_nonzero = int(np.count_nonzero(x_t))
        stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
        stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
        stats.outputs = int(out.size)
    return out, stats


# ---------------------------------------------------------------------------
# Legacy factorized 4-thread path (the seed implementation), kept for A/B
# benchmarking and cross-validation.
# ---------------------------------------------------------------------------

def _thread_error_factors(
    x_self: np.ndarray, w_self: np.ndarray, policy: PackingPolicy
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Separable factors of the pairwise-collision error term of one thread.

    Returns a list of ``(left, right)`` pairs such that the error a thread
    contributes at position ``(m, k, n)`` when it collides pairwise equals
    ``sum_i left_i[m, k] * right_i[k, n]``.
    """
    if policy.reduce == "act":
        delta = packing.act_reduction_delta(x_self, policy).astype(np.float64)
        right = w_self.astype(np.float64)
        if policy.width_secondary:
            right = right * (~wgt_fits_4bit(w_self))
        return [(delta, right)]
    delta = packing.wgt_reduction_delta(w_self, policy).astype(np.float64)
    left = x_self.astype(np.float64)
    if policy.width_secondary:
        left = left * (~act_fits_4bit(x_self))
    return [(left, delta)]


def _thread_manyway_factors(
    x_self: np.ndarray, w_self: np.ndarray, policy: PackingPolicy
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Separable factors of the 3-/4-way-collision error term of one thread.

    The 4b-4b product minus the exact product is the difference of two
    separable terms: ``x4 (x) w4 - x (x) w``.
    """
    luts = _value_luts(policy.width_primary)
    x4 = _act_lut_take(luts["x4"], x_self)
    w4 = _wgt_lut_take(luts["w4"], w_self)
    return [
        (x4.astype(np.float64), w4.astype(np.float64)),
        (-x_self.astype(np.float64), w_self.astype(np.float64)),
    ]


def _demand_monomials(others: list[int]) -> tuple[list, list]:
    """Inclusion-exclusion expansions of the other-thread demand indicators.

    For the three "other" threads of a 4-threaded PE, returns the monomial
    expansions of ``1(exactly one other active)`` and ``1(two or more others
    active)`` as lists of ``(coefficient, subset_of_other_threads)`` terms.
    Each monomial ``prod_{s in subset} u_s`` is separable because ``u_s``
    factors into an activation-side and a weight-side mask.
    """
    s1, s2, s3 = others
    exactly_one = [
        (1.0, (s1,)), (1.0, (s2,)), (1.0, (s3,)),
        (-2.0, (s1, s2)), (-2.0, (s1, s3)), (-2.0, (s2, s3)),
        (3.0, (s1, s2, s3)),
    ]
    two_or_more = [
        (1.0, (s1, s2)), (1.0, (s1, s3)), (1.0, (s2, s3)),
        (-2.0, (s1, s2, s3)),
    ]
    return exactly_one, two_or_more


def _fast_4t_legacy(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """The seed's factorized 4-thread execution (one GEMM per monomial).

    Bit-identical outputs to :func:`_fast_4t`, but roughly 2-3x slower (it
    issues ~60 separate float64 GEMMs and recomputes the subset gates for
    every term) and its ``mac_reduced`` counter is the collision-count
    proxy rather than the exact reduction count.
    """
    threads = 4
    xs = [x_t[t].astype(np.int64) for t in range(threads)]
    ws = [w_t[t].astype(np.int64) for t in range(threads)]

    exact = _exact_matmul(
        np.concatenate(xs, axis=1), np.concatenate(ws, axis=0)
    )

    act_masks = [x != 0 for x in xs]
    wgt_masks = [w != 0 for w in ws]

    error = np.zeros_like(exact, dtype=np.float64)

    if not policy.sparsity:
        for t in range(threads):
            for left, right in _thread_manyway_factors(xs[t], ws[t], policy):
                error += left @ right
    else:
        for t in range(threads):
            others = [s for s in range(threads) if s != t]
            exactly_one, two_or_more = _demand_monomials(others)
            pair_factors = _thread_error_factors(xs[t], ws[t], policy)
            many_factors = _thread_manyway_factors(xs[t], ws[t], policy)
            for coeff, subset in exactly_one:
                act_gate = act_masks[t].copy()
                wgt_gate = wgt_masks[t].copy()
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                for left, right in pair_factors:
                    error += coeff * ((act_gate * left) @ (wgt_gate * right))
            for coeff, subset in two_or_more:
                act_gate = act_masks[t].copy()
                wgt_gate = wgt_masks[t].copy()
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                for left, right in many_factors:
                    error += coeff * ((act_gate * left) @ (wgt_gate * right))

    out = exact + np.rint(error).astype(np.int64)
    if not collect_stats:
        return out, None

    stats = SMTStatistics()
    m, kt = xs[0].shape
    n = ws[0].shape[1]

    def _pair_count(act_gate: np.ndarray, wgt_gate: np.ndarray) -> int:
        return int(
            act_gate.sum(axis=0).astype(np.int64)
            @ wgt_gate.sum(axis=1).astype(np.int64)
        )

    active_counts = [_pair_count(act_masks[t], wgt_masks[t]) for t in range(threads)]

    slots_active = 0
    for size in range(1, threads + 1):
        sign = (-1) ** (size + 1)
        for subset in combinations(range(threads), size):
            act_gate = act_masks[subset[0]]
            wgt_gate = wgt_masks[subset[0]]
            for s in subset[1:]:
                act_gate = act_gate & act_masks[s]
                wgt_gate = wgt_gate & wgt_masks[s]
            slots_active += sign * _pair_count(act_gate, wgt_gate)

    collided = 0
    for t in range(threads):
        others = [s for s in range(threads) if s != t]
        alone = 0
        for size in range(0, len(others) + 1):
            sign = (-1) ** size
            for subset in combinations(others, size):
                act_gate = act_masks[t]
                wgt_gate = wgt_masks[t]
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                alone += sign * _pair_count(act_gate, wgt_gate)
        collided += active_counts[t] - alone

    stats.mac_total = threads * m * kt * n
    stats.mac_active = int(sum(active_counts))
    stats.mac_collided = int(collided)
    # The legacy path reports collisions as the reduction-count proxy; the
    # optimized path and the reference executor report the exact count.
    stats.mac_reduced = int(collided)
    stats.slots_total = m * kt * n
    stats.slots_active = int(slots_active)
    stats.act_values = int(sum(x.size for x in xs))
    stats.act_nonzero = int(sum(mask.sum() for mask in act_masks))
    stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
    stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
    stats.outputs = int(exact.size)
    return out, stats
