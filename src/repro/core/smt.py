"""Functional NB-SMT matrix-multiply executor.

The SySMT hardware computes ``O = X @ W`` where each PE accumulates one
output element and the K dimension is split across T threads (output-register
sharing, Eq. (2)/(3)).  This module models that computation *functionally*:
it produces the exact integer accumulators the hardware would produce,
including the noise introduced when thread collisions force reduced-precision
products, together with per-layer statistics (collision breakdown,
utilization, MSE versus the error-free result).

Two implementations are provided and cross-checked by the test suite:

* a chunked **reference** path that materializes the per-position activity
  tensors and handles any thread count, and
* a **factorized** fast path for two threads, which expresses the NB-SMT
  noise as two extra matrix multiplications of masked deltas (exploiting the
  fact that the collision indicator factors into an activation-side and a
  weight-side rank-1 term).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import packing
from repro.core.policies import PackingPolicy, get_policy


@dataclass
class SMTStatistics:
    """Counters accumulated by the executor across calls.

    All counters refer to MAC *operations* (one per (m, k, n) position of the
    original matmul) or to PE issue *slots* (one per group of T MAC
    operations that share a PE cycle).
    """

    mac_total: int = 0
    mac_active: int = 0
    mac_collided: int = 0
    mac_reduced: int = 0
    slots_total: int = 0
    slots_active: int = 0
    act_values: int = 0
    act_nonzero: int = 0
    sum_sq_error: float = 0.0
    sum_sq_exact: float = 0.0
    outputs: int = 0

    def merge(self, other: "SMTStatistics") -> None:
        for name in (
            "mac_total",
            "mac_active",
            "mac_collided",
            "mac_reduced",
            "slots_total",
            "slots_active",
            "act_values",
            "act_nonzero",
            "sum_sq_error",
            "sum_sq_exact",
            "outputs",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    # -- derived quantities -------------------------------------------------
    @property
    def activation_sparsity(self) -> float:
        """Fraction of zero-valued quantized activations."""
        if self.act_values == 0:
            return 0.0
        return 1.0 - self.act_nonzero / self.act_values

    @property
    def baseline_utilization(self) -> float:
        """Fraction of conventional-SA MAC cycles doing useful work."""
        if self.mac_total == 0:
            return 0.0
        return self.mac_active / self.mac_total

    @property
    def smt_utilization(self) -> float:
        """Fraction of SySMT PE issue slots doing useful work."""
        if self.slots_total == 0:
            return 0.0
        return self.slots_active / self.slots_total

    @property
    def utilization_gain(self) -> float:
        """Utilization improvement of SySMT over the conventional SA (Fig. 9)."""
        if self.baseline_utilization == 0.0:
            return 1.0
        return self.smt_utilization / self.baseline_utilization

    @property
    def collision_rate(self) -> float:
        if self.mac_total == 0:
            return 0.0
        return self.mac_collided / self.mac_total

    @property
    def reduction_rate(self) -> float:
        if self.mac_total == 0:
            return 0.0
        return self.mac_reduced / self.mac_total

    @property
    def relative_mse(self) -> float:
        """MSE of the noisy output relative to the mean square of the exact output."""
        if self.sum_sq_exact == 0.0:
            return 0.0
        return self.sum_sq_error / self.sum_sq_exact

    @property
    def mse(self) -> float:
        if self.outputs == 0:
            return 0.0
        return self.sum_sq_error / self.outputs

    def as_dict(self) -> dict[str, float]:
        return {
            "mac_total": float(self.mac_total),
            "mac_active": float(self.mac_active),
            "mac_collided": float(self.mac_collided),
            "mac_reduced": float(self.mac_reduced),
            "slots_total": float(self.slots_total),
            "slots_active": float(self.slots_active),
            "activation_sparsity": self.activation_sparsity,
            "baseline_utilization": self.baseline_utilization,
            "smt_utilization": self.smt_utilization,
            "utilization_gain": self.utilization_gain,
            "collision_rate": self.collision_rate,
            "reduction_rate": self.reduction_rate,
            "relative_mse": self.relative_mse,
            "mse": self.mse,
        }


def split_into_threads(
    x_q: np.ndarray, w_q: np.ndarray, threads: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split the K dimension into ``threads`` contiguous slices (Eq. (2)).

    Returns arrays of shape ``(T, M, K/T)`` and ``(T, K/T, N)``; K is padded
    with zeros (inactive positions) when not divisible by the thread count.
    """
    m, k = x_q.shape
    k_w, n = w_q.shape
    if k != k_w:
        raise ValueError("inner dimensions of X and W differ")
    per_thread = -(-k // threads)  # ceil division
    padded_k = per_thread * threads
    if padded_k != k:
        x_pad = np.zeros((m, padded_k), dtype=x_q.dtype)
        x_pad[:, :k] = x_q
        w_pad = np.zeros((padded_k, n), dtype=w_q.dtype)
        w_pad[:k, :] = w_q
        x_q, w_q = x_pad, w_pad
    x_threads = x_q.reshape(m, threads, per_thread).transpose(1, 0, 2)
    w_threads = w_q.reshape(threads, per_thread, n)
    return np.ascontiguousarray(x_threads), np.ascontiguousarray(w_threads)


def _exact_matmul(x_q: np.ndarray, w_q: np.ndarray) -> np.ndarray:
    return np.rint(x_q.astype(np.float64) @ w_q.astype(np.float64)).astype(np.int64)


class NBSMTMatmul:
    """Functional NB-SMT executor for a fixed thread count and policy.

    Parameters
    ----------
    threads:
        Number of DNN threads sharing each PE (1, 2 or 4).  One thread is
        the conventional, error-free execution.
    policy:
        A :class:`PackingPolicy` or its Table III name.
    collect_stats:
        Maintain the :class:`SMTStatistics` counters (requires computing the
        exact result as well; disable for pure-speed runs).
    force_reference:
        Always use the chunked reference implementation (used by tests to
        validate the factorized 2-thread fast path).
    chunk_rows:
        Row chunk size of the reference implementation.
    """

    def __init__(
        self,
        threads: int = 2,
        policy: PackingPolicy | str = "S+A",
        collect_stats: bool = True,
        force_reference: bool = False,
        chunk_rows: int = 256,
    ):
        if threads not in (1, 2, 4):
            raise ValueError("NB-SMT supports 1, 2 or 4 threads")
        self.threads = threads
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.collect_stats = collect_stats
        self.force_reference = force_reference
        self.chunk_rows = chunk_rows
        self.stats = SMTStatistics()

    # -- public API -----------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = SMTStatistics()

    def matmul(
        self,
        x_q: np.ndarray,
        w_q: np.ndarray,
        permutation: np.ndarray | None = None,
    ) -> np.ndarray:
        """Integer accumulators of the NB-SMT execution of ``x_q @ w_q``.

        ``x_q`` holds unsigned 8-bit activations (shape ``(M, K)``), ``w_q``
        signed 8-bit weights (shape ``(K, N)``).  ``permutation`` optionally
        reorders the K dimension before the threads are formed (Section IV-B);
        the result is unchanged by any permutation when no noise is injected.
        """
        x_q = np.asarray(x_q)
        w_q = np.asarray(w_q)
        if permutation is not None:
            x_q = x_q[:, permutation]
            w_q = w_q[permutation, :]

        if self.threads == 1:
            out = _exact_matmul(x_q, w_q)
            if self.collect_stats:
                self._record_single_thread(x_q, w_q)
            return out

        x_t, w_t = split_into_threads(x_q, w_q, self.threads)
        if self.threads == 2 and not self.force_reference:
            out, stats = _fast_2t(x_t, w_t, self.policy, self.collect_stats)
        elif self.threads == 4 and not self.force_reference:
            out, stats = _fast_4t(x_t, w_t, self.policy, self.collect_stats)
        else:
            out, stats = _reference_multi_t(
                x_t, w_t, self.policy, self.collect_stats, self.chunk_rows
            )
        if self.collect_stats and stats is not None:
            self.stats.merge(stats)
        return out

    # -- internals --------------------------------------------------------------
    def _record_single_thread(self, x_q: np.ndarray, w_q: np.ndarray) -> None:
        stats = SMTStatistics()
        active = _count_active(x_q, w_q)
        total = x_q.shape[0] * x_q.shape[1] * w_q.shape[1]
        stats.mac_total = total
        stats.mac_active = active
        stats.slots_total = total
        stats.slots_active = active
        stats.act_values = int(x_q.size)
        stats.act_nonzero = int(np.count_nonzero(x_q))
        stats.outputs = x_q.shape[0] * w_q.shape[1]
        self.stats.merge(stats)


def _count_active(x_q: np.ndarray, w_q: np.ndarray) -> int:
    """Number of (m, k, n) MAC positions where both operands are nonzero."""
    x_nonzero = (x_q != 0).astype(np.int64)
    w_nonzero = (w_q != 0).astype(np.int64)
    return int(x_nonzero.sum(axis=0) @ w_nonzero.sum(axis=1))


def _fast_2t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Factorized 2-thread execution: exact matmul plus masked-delta matmuls."""
    x1, x2 = x_t[0].astype(np.int64), x_t[1].astype(np.int64)
    w1, w2 = w_t[0].astype(np.int64), w_t[1].astype(np.int64)

    exact = _exact_matmul(np.concatenate([x1, x2], axis=1),
                          np.concatenate([w1, w2], axis=0))

    act_nonzero_1, act_nonzero_2 = x1 != 0, x2 != 0
    wgt_nonzero_1, wgt_nonzero_2 = w1 != 0, w2 != 0
    if policy.sparsity:
        collide_act = act_nonzero_1 & act_nonzero_2          # (M, Kt)
        collide_wgt = wgt_nonzero_1 & wgt_nonzero_2          # (Kt, N)
    else:
        collide_act = np.ones_like(act_nonzero_1, dtype=bool)
        collide_wgt = np.ones_like(wgt_nonzero_1, dtype=bool)

    error = np.zeros_like(exact, dtype=np.float64)
    reduced_positions = 0
    for x_self, w_self in ((x1, w1), (x2, w2)):
        if policy.reduce == "act":
            delta = packing.act_reduction_delta(x_self, policy)       # (M, Kt)
            left = (collide_act * delta).astype(np.float64)
            right = (collide_wgt * w_self).astype(np.float64)
            if policy.width_secondary:
                right = right * (~_wgt_fits(w_self))
        else:
            delta = packing.wgt_reduction_delta(w_self, policy)       # (Kt, N)
            left = (collide_act * x_self).astype(np.float64)
            if policy.width_secondary:
                left = left * (~_act_fits(x_self))
            right = (collide_wgt * delta).astype(np.float64)
        error += left @ right
        if collect_stats:
            if policy.reduce == "act":
                err_cols = collide_act & (delta != 0)
                err_rows = collide_wgt & (w_self != 0)
                if policy.width_secondary:
                    err_rows = err_rows & (~_wgt_fits(w_self))
            else:
                err_cols = collide_act & (x_self != 0)
                if policy.width_secondary:
                    err_cols = err_cols & (~_act_fits(x_self))
                err_rows = collide_wgt & (delta != 0)
            reduced_positions += int(
                err_cols.sum(axis=0).astype(np.int64)
                @ err_rows.sum(axis=1).astype(np.int64)
            )

    out = exact + np.rint(error).astype(np.int64)

    if not collect_stats:
        return out, None

    stats = SMTStatistics()
    m, kt = x1.shape
    n = w1.shape[1]
    active_1 = int(act_nonzero_1.sum(axis=0).astype(np.int64)
                   @ wgt_nonzero_1.sum(axis=1).astype(np.int64))
    active_2 = int(act_nonzero_2.sum(axis=0).astype(np.int64)
                   @ wgt_nonzero_2.sum(axis=1).astype(np.int64))
    both_active = int(
        (act_nonzero_1 & act_nonzero_2).sum(axis=0).astype(np.int64)
        @ (wgt_nonzero_1 & wgt_nonzero_2).sum(axis=1).astype(np.int64)
    )
    stats.mac_total = 2 * m * kt * n
    stats.mac_active = active_1 + active_2
    stats.mac_collided = 2 * both_active
    stats.mac_reduced = reduced_positions
    stats.slots_total = m * kt * n
    stats.slots_active = active_1 + active_2 - both_active
    stats.act_values = int(x1.size + x2.size)
    stats.act_nonzero = int(act_nonzero_1.sum() + act_nonzero_2.sum())
    stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
    stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
    stats.outputs = int(exact.size)
    return out, stats


def _act_fits(x: np.ndarray) -> np.ndarray:
    from repro.core.precision import act_fits_4bit

    return act_fits_4bit(x)


def _wgt_fits(w: np.ndarray) -> np.ndarray:
    from repro.core.precision import wgt_fits_4bit

    return wgt_fits_4bit(w)


def _reference_multi_t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
    chunk_rows: int,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Chunked reference implementation for any thread count.

    Materializes the per-position activity tensor chunk by chunk and applies
    the collision rules of Algorithm 1 (and its 4-thread extension) exactly.
    """
    threads, m, kt = x_t.shape
    n = w_t.shape[2]
    x_t = x_t.astype(np.int64)
    w_t = w_t.astype(np.int64)

    out = np.zeros((m, n), dtype=np.int64)
    exact = np.zeros((m, n), dtype=np.int64) if collect_stats else None
    stats = SMTStatistics() if collect_stats else None

    wgt_nonzero = w_t != 0                                   # (T, Kt, N)

    for start in range(0, m, chunk_rows):
        stop = min(start + chunk_rows, m)
        x_chunk = x_t[:, start:stop, :]                      # (T, rows, Kt)
        rows = stop - start

        # Activity per thread and per position.
        active = np.empty((threads, rows, kt, n), dtype=bool)
        for t in range(threads):
            act_nonzero = x_chunk[t] != 0                    # (rows, Kt)
            active[t] = act_nonzero[:, :, None] & wgt_nonzero[t][None, :, :]
        demand = active.sum(axis=0, dtype=np.int8)           # (rows, Kt, N)

        chunk_out = np.zeros((rows, n), dtype=np.int64)
        chunk_exact = np.zeros((rows, n), dtype=np.int64)
        reduced_positions = 0

        for t in range(threads):
            x_col = x_chunk[t][:, :, None]                   # (rows, Kt, 1)
            w_row = w_t[t][None, :, :]                       # (1, Kt, N)
            exact_prod = x_col * w_row                       # (rows, Kt, N)

            if policy.sparsity:
                collide_pair = active[t] & (demand == 2)
                collide_many = active[t] & (demand >= 3)
            elif threads == 2:
                # Without sparsity detection every thread always demands the
                # MAC, so every position is treated as a full collision.
                collide_pair = np.ones_like(active[t])
                collide_many = np.zeros_like(active[t])
            else:
                collide_pair = np.zeros_like(active[t])
                collide_many = np.ones_like(active[t])

            effective = exact_prod
            if np.any(collide_pair):
                pair_prod = packing.colliding_product_2t(x_col, w_row, policy)
                effective = np.where(collide_pair, pair_prod, effective)
            if np.any(collide_many):
                many_prod = packing.colliding_product_4t(x_col, w_row, policy)
                effective = np.where(collide_many, many_prod, effective)

            chunk_out += effective.sum(axis=1)
            if collect_stats:
                chunk_exact += exact_prod.sum(axis=1)
                reduced_positions += int(
                    ((effective != exact_prod) & (collide_pair | collide_many)).sum()
                )

        out[start:stop] = chunk_out
        if collect_stats:
            exact[start:stop] = chunk_exact
            stats.mac_total += threads * rows * kt * n
            stats.mac_active += int(active.sum())
            stats.mac_collided += int((active & (demand >= 2)).sum())
            stats.mac_reduced += reduced_positions
            stats.slots_total += rows * kt * n
            stats.slots_active += int(active.any(axis=0).sum())

    if collect_stats:
        stats.act_values = int(x_t.size)
        stats.act_nonzero = int(np.count_nonzero(x_t))
        stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
        stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
        stats.outputs = int(out.size)
    return out, stats


def _thread_error_factors(
    x_self: np.ndarray, w_self: np.ndarray, policy: PackingPolicy
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Separable factors of the pairwise-collision error term of one thread.

    Returns a list of ``(left, right)`` pairs such that the error a thread
    contributes at position ``(m, k, n)`` when it collides pairwise equals
    ``sum_i left_i[m, k] * right_i[k, n]``.
    """
    from repro.core.precision import act_fits_4bit, wgt_fits_4bit

    if policy.reduce == "act":
        delta = packing.act_reduction_delta(x_self, policy).astype(np.float64)
        right = w_self.astype(np.float64)
        if policy.width_secondary:
            right = right * (~wgt_fits_4bit(w_self))
        return [(delta, right)]
    delta = packing.wgt_reduction_delta(w_self, policy).astype(np.float64)
    left = x_self.astype(np.float64)
    if policy.width_secondary:
        left = left * (~act_fits_4bit(x_self))
    return [(left, delta)]


def _thread_manyway_factors(
    x_self: np.ndarray, w_self: np.ndarray, policy: PackingPolicy
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Separable factors of the 3-/4-way-collision error term of one thread.

    The 4b-4b product minus the exact product is the difference of two
    separable terms: ``x4 (x) w4 - x (x) w``.
    """
    from repro.core.precision import (
        act_fits_4bit,
        reduce_act_to_4bit_msb,
        reduce_wgt_to_4bit_msb,
        wgt_fits_4bit,
    )

    if policy.width_primary:
        x4 = np.where(act_fits_4bit(x_self), x_self, reduce_act_to_4bit_msb(x_self))
        w4 = np.where(wgt_fits_4bit(w_self), w_self, reduce_wgt_to_4bit_msb(w_self))
    else:
        x4 = reduce_act_to_4bit_msb(x_self)
        w4 = reduce_wgt_to_4bit_msb(w_self)
    return [
        (x4.astype(np.float64), w4.astype(np.float64)),
        (-x_self.astype(np.float64), w_self.astype(np.float64)),
    ]


def _demand_monomials(others: list[int]) -> tuple[list, list]:
    """Inclusion-exclusion expansions of the other-thread demand indicators.

    For the three "other" threads of a 4-threaded PE, returns the monomial
    expansions of ``1(exactly one other active)`` and ``1(two or more others
    active)`` as lists of ``(coefficient, subset_of_other_threads)`` terms.
    Each monomial ``prod_{s in subset} u_s`` is separable because ``u_s``
    factors into an activation-side and a weight-side mask.
    """
    s1, s2, s3 = others
    exactly_one = [
        (1.0, (s1,)), (1.0, (s2,)), (1.0, (s3,)),
        (-2.0, (s1, s2)), (-2.0, (s1, s3)), (-2.0, (s2, s3)),
        (3.0, (s1, s2, s3)),
    ]
    two_or_more = [
        (1.0, (s1, s2)), (1.0, (s1, s3)), (1.0, (s2, s3)),
        (-2.0, (s1, s2, s3)),
    ]
    return exactly_one, two_or_more


def _fast_4t(
    x_t: np.ndarray,
    w_t: np.ndarray,
    policy: PackingPolicy,
    collect_stats: bool,
) -> tuple[np.ndarray, SMTStatistics | None]:
    """Factorized 4-thread execution.

    The NB-SMT output equals the exact product plus error terms gated by the
    per-position demand count.  Because the demand indicator of each thread
    factors into an activation-side and a weight-side binary mask, the gated
    error sums expand (by inclusion-exclusion over the other threads) into a
    modest number of ordinary matrix multiplications.
    """
    threads = 4
    xs = [x_t[t].astype(np.int64) for t in range(threads)]
    ws = [w_t[t].astype(np.int64) for t in range(threads)]

    exact = _exact_matmul(
        np.concatenate(xs, axis=1), np.concatenate(ws, axis=0)
    )

    act_masks = [x != 0 for x in xs]
    wgt_masks = [w != 0 for w in ws]

    error = np.zeros_like(exact, dtype=np.float64)

    if not policy.sparsity:
        # Every position is a full (>= 3-way) collision: all threads always
        # produce 4b-4b products.
        for t in range(threads):
            for left, right in _thread_manyway_factors(xs[t], ws[t], policy):
                error += left @ right
    else:
        for t in range(threads):
            others = [s for s in range(threads) if s != t]
            exactly_one, two_or_more = _demand_monomials(others)
            pair_factors = _thread_error_factors(xs[t], ws[t], policy)
            many_factors = _thread_manyway_factors(xs[t], ws[t], policy)
            for coeff, subset in exactly_one:
                act_gate = act_masks[t].copy()
                wgt_gate = wgt_masks[t].copy()
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                for left, right in pair_factors:
                    error += coeff * ((act_gate * left) @ (wgt_gate * right))
            for coeff, subset in two_or_more:
                act_gate = act_masks[t].copy()
                wgt_gate = wgt_masks[t].copy()
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                for left, right in many_factors:
                    error += coeff * ((act_gate * left) @ (wgt_gate * right))

    out = exact + np.rint(error).astype(np.int64)
    if not collect_stats:
        return out, None

    stats = SMTStatistics()
    m, kt = xs[0].shape
    n = ws[0].shape[1]

    def _pair_count(act_gate: np.ndarray, wgt_gate: np.ndarray) -> int:
        return int(
            act_gate.sum(axis=0).astype(np.int64)
            @ wgt_gate.sum(axis=1).astype(np.int64)
        )

    active_counts = [_pair_count(act_masks[t], wgt_masks[t]) for t in range(threads)]

    # Issue slots with at least one active thread, by inclusion-exclusion over
    # the four separable activity masks.
    slots_active = 0
    for size in range(1, threads + 1):
        from itertools import combinations

        sign = (-1) ** (size + 1)
        for subset in combinations(range(threads), size):
            act_gate = act_masks[subset[0]]
            wgt_gate = wgt_masks[subset[0]]
            for s in subset[1:]:
                act_gate = act_gate & act_masks[s]
                wgt_gate = wgt_gate & wgt_masks[s]
            slots_active += sign * _pair_count(act_gate, wgt_gate)

    # Positions where a thread is active and at least one other thread is
    # active too (collisions), again by inclusion-exclusion.
    collided = 0
    for t in range(threads):
        others = [s for s in range(threads) if s != t]
        alone = 0
        for size in range(0, len(others) + 1):
            from itertools import combinations

            sign = (-1) ** size
            for subset in combinations(others, size):
                act_gate = act_masks[t]
                wgt_gate = wgt_masks[t]
                for s in subset:
                    act_gate = act_gate & act_masks[s]
                    wgt_gate = wgt_gate & wgt_masks[s]
                alone += sign * _pair_count(act_gate, wgt_gate)
        collided += active_counts[t] - alone

    stats.mac_total = threads * m * kt * n
    stats.mac_active = int(sum(active_counts))
    stats.mac_collided = int(collided)
    # The per-position reduction count is not reconstructed exactly on this
    # path (it would require non-separable indicators); collisions are used
    # as the upper-bound proxy.  The reference executor reports the exact
    # count when needed.
    stats.mac_reduced = int(collided)
    stats.slots_total = m * kt * n
    stats.slots_active = int(slots_active)
    stats.act_values = int(sum(x.size for x in xs))
    stats.act_nonzero = int(sum(mask.sum() for mask in act_masks))
    stats.sum_sq_error = float(((out - exact).astype(np.float64) ** 2).sum())
    stats.sum_sq_exact = float((exact.astype(np.float64) ** 2).sum())
    stats.outputs = int(exact.size)
    return out, stats
