"""Bit-level helpers for 8-bit operands.

The flexible multiplier (Section IV-C1) operates on the 4-bit MSB and LSB
halves of its operands.  Activations are unsigned 8-bit values (post-ReLU);
weights are signed 8-bit values in two's complement, whose MSB half carries
the sign (Eq. (5)).
"""

from __future__ import annotations

import numpy as np


def split_unsigned(x: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Split unsigned 8-bit values into (MSB nibble, LSB nibble), both in [0, 15]."""
    x = np.asarray(x)
    if np.any((x < 0) | (x > 255)):
        raise ValueError("unsigned 8-bit operand out of range [0, 255]")
    return x >> 4, x & 0xF


def combine_unsigned(msb: np.ndarray | int, lsb: np.ndarray | int) -> np.ndarray:
    """Inverse of :func:`split_unsigned`."""
    msb = np.asarray(msb)
    lsb = np.asarray(lsb)
    return (msb << 4) + lsb


def split_signed(w: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Split signed 8-bit values into (signed MSB nibble in [-8, 7], LSB in [0, 15]).

    The decomposition satisfies ``w == 16 * msb + lsb`` (Eq. (5)): the MSB
    half is interpreted as a signed 4-bit quantity (it carries the sign bit
    ``w7``), while the LSB half is unsigned.
    """
    w = np.asarray(w)
    if np.any((w < -128) | (w > 127)):
        raise ValueError("signed 8-bit operand out of range [-128, 127]")
    lsb = w & 0xF
    msb = (w - lsb) >> 4
    return msb, lsb


def combine_signed(msb: np.ndarray | int, lsb: np.ndarray | int) -> np.ndarray:
    """Inverse of :func:`split_signed`."""
    msb = np.asarray(msb)
    lsb = np.asarray(lsb)
    return 16 * msb + lsb
