"""Adapter exposing the NB-SMT executor as a quantized-matmul engine.

:class:`NBSMTEngine` plugs the functional executor of :mod:`repro.core.smt`
into :class:`repro.quant.qmodel.QuantizedModel`: each quantized convolution
layer's integer matmul is executed with the layer's configured thread count,
packing policy and (optional) K-dimension reordering permutation, and the
per-layer statistics are accumulated for later analysis (utilization, MSE,
collision breakdown).

One :class:`~repro.core.smt.NBSMTMatmul` executor is kept per (layer, thread
count) and reused across batches, so per-call setup work is paid once per
layer instead of once per batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.policies import PackingPolicy, get_policy
from repro.core.smt import NBSMTMatmul, SMTStatistics
from repro.quant.engine import LayerContext, exact_int_matmul


class NBSMTEngine:
    """Executes quantized matmuls under NB-SMT and records per-layer stats.

    Parameters
    ----------
    policy:
        Packing policy (name or object) used for every layer.
    default_threads:
        Thread count used when a layer context does not specify one.
    collect_stats:
        Accumulate :class:`SMTStatistics` per layer (needed for MSE,
        utilization and energy analyses; adds the cost of one exact matmul).
    force_reference:
        Use the chunked reference executor even for the fast-path thread
        counts.
    reuse_executors:
        Keep one executor per (layer, threads) and reuse it across calls
        (the default).  ``False`` restores the seed behavior of constructing
        a fresh :class:`NBSMTMatmul` per call, kept for A/B benchmarking.
    fast4t_impl:
        Forwarded to :class:`NBSMTMatmul` (``"stacked"`` or ``"legacy"``).
    prune_blocks:
        Forwarded to :class:`NBSMTMatmul` (sparsity-adaptive block pruning
        in the stacked 4-thread path; bit-exact, on by default).
    """

    def __init__(
        self,
        policy: PackingPolicy | str = "S+A",
        default_threads: int = 2,
        collect_stats: bool = True,
        force_reference: bool = False,
        reuse_executors: bool = True,
        fast4t_impl: str = "stacked",
        prune_blocks: bool = True,
    ):
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.default_threads = default_threads
        self.collect_stats = collect_stats
        self.force_reference = force_reference
        self.reuse_executors = reuse_executors
        self.fast4t_impl = fast4t_impl
        self.prune_blocks = prune_blocks
        self.layer_stats: dict[str, SMTStatistics] = {}
        #: Per-layer wall timing of the current forward pass: a list of
        #: ``(layer_name, start_wall_s, duration_s)`` in execution order,
        #: the raw material of a trace's engine-compute child spans.
        self.layer_times: list[tuple[str, float, float]] = []
        self._executors: dict[tuple[str, int], NBSMTMatmul] = {}

    def reset_stats(self) -> None:
        self.layer_stats = {}
        self.layer_times = []

    def stats_for(self, layer_name: str) -> SMTStatistics:
        return self.layer_stats.setdefault(layer_name, SMTStatistics())

    def _executor_for(self, layer_name: str, threads: int) -> NBSMTMatmul:
        key = (layer_name, threads)
        executor = self._executors.get(key)
        if executor is None:
            executor = NBSMTMatmul(
                threads,
                self.policy,
                collect_stats=self.collect_stats,
                force_reference=self.force_reference,
                fast4t_impl=self.fast4t_impl,
                prune_blocks=self.prune_blocks,
            )
            if self.reuse_executors:
                self._executors[key] = executor
        return executor

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        started = time.time()
        out = self._matmul(x_q, w_q, ctx)
        if len(self.layer_times) < 4096:  # bounded if stats never reset
            self.layer_times.append((ctx.name, started, time.time() - started))
        return out

    def _matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        threads = ctx.threads if ctx.threads else self.default_threads
        if threads <= 1:
            ctx.add_stat("macs", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
            ctx.add_stat("issue_slots", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
            if self.collect_stats:
                executor = self._executor_for(ctx.name, 1)
                out = executor.matmul(x_q, w_q)
                self.stats_for(ctx.name).merge(executor.stats)
                executor.reset_stats()
                return out
            return exact_int_matmul(x_q, w_q)

        executor = self._executor_for(ctx.name, threads)
        out = executor.matmul(x_q, w_q, permutation=ctx.permutation)
        ctx.add_stat("macs", x_q.shape[0] * x_q.shape[1] * w_q.shape[1])
        ctx.add_stat(
            "issue_slots",
            x_q.shape[0] * (-(-x_q.shape[1] // threads)) * w_q.shape[1],
        )
        if self.collect_stats:
            self.stats_for(ctx.name).merge(executor.stats)
            executor.reset_stats()
        return out
