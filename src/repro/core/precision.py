"""On-the-fly precision reduction (Section III-C1).

When a thread collision cannot be resolved by sparsity or data-width
variability, NB-SMT truncates the colliding operand to its 4-bit MSBs.  To
mitigate the truncation noise, the value is first rounded to the nearest
integer that is a whole multiple of 16 (2^4).

Activations are unsigned (post-ReLU) 8-bit values; weights are signed 8-bit
values.  "Fitting in 4 bits" therefore means ``0 <= x <= 15`` for activations
and ``-8 <= w <= 7`` for weights.
"""

from __future__ import annotations

import numpy as np

#: Largest unsigned value representable by the 4-bit MSBs after reduction.
ACT_REDUCED_MAX = 240
#: Signed weight range representable by the 4-bit MSBs after reduction.
WGT_REDUCED_MIN = -128
WGT_REDUCED_MAX = 112


def _build_luts() -> tuple[np.ndarray, np.ndarray]:
    """256-entry lookup tables of the rounded 4-bit MSB reductions.

    The reduction is a pure elementwise function of an 8-bit operand, so the
    hot paths replace the round/divide/clip arithmetic with one table lookup.
    Activation entries are indexed by the unsigned value, weight entries by
    ``value + 128``.
    """
    act = np.arange(256, dtype=np.int64)
    act_lut = np.clip((act + 8) // 16 * 16, 0, ACT_REDUCED_MAX)
    wgt = np.arange(-128, 128, dtype=np.int64)
    wgt_lut = np.clip(
        np.floor_divide(wgt + 8, 16) * 16, WGT_REDUCED_MIN, WGT_REDUCED_MAX
    )
    return act_lut, wgt_lut


_ACT_REDUCE_LUT, _WGT_REDUCE_LUT = _build_luts()


def act_fits_4bit(x: np.ndarray | int) -> np.ndarray:
    """True where an unsigned activation is representable by its 4-bit LSBs."""
    x = np.asarray(x)
    return (x >= 0) & (x <= 15)


def wgt_fits_4bit(w: np.ndarray | int) -> np.ndarray:
    """True where a signed weight is representable by a signed 4-bit value."""
    w = np.asarray(w)
    return (w >= -8) & (w <= 7)


def _round_to_multiple_of_16(value: np.ndarray) -> np.ndarray:
    """Round to the nearest whole multiple of 16 (ties round up, like RTL adders)."""
    return np.floor_divide(value + 8, 16) * 16


def reduce_act_to_4bit_msb(x: np.ndarray | int) -> np.ndarray:
    """Reduce unsigned activations to the value their rounded 4-bit MSBs encode.

    The result is always a multiple of 16 within ``[0, 240]``; e.g. 46 -> 48
    and 178 -> 176 (the example of Fig. 2a).
    """
    x = np.asarray(x)
    if x.dtype.kind in "iu":
        return _ACT_REDUCE_LUT.take(np.clip(x, 0, 255))
    reduced = _round_to_multiple_of_16(x)
    return np.clip(reduced, 0, ACT_REDUCED_MAX)


def reduce_wgt_to_4bit_msb(w: np.ndarray | int) -> np.ndarray:
    """Reduce signed weights to the value their rounded 4-bit MSBs encode."""
    w = np.asarray(w)
    if w.dtype.kind in "iu":
        return _WGT_REDUCE_LUT.take(np.clip(w, -128, 127) + 128)
    reduced = _round_to_multiple_of_16(w)
    return np.clip(reduced, WGT_REDUCED_MIN, WGT_REDUCED_MAX)


def reduction_error_bound() -> int:
    """Worst-case absolute error introduced by a single operand reduction."""
    return 8


def prepare_act_operand(x: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Operand preparation of Algorithm 1 for a colliding activation.

    Returns ``(nibble, shift)`` where ``nibble`` is the 4-bit value driven
    into the multiplier port and ``shift`` indicates whether the product must
    be shifted left by 4 (the MSB path).  Values that fit in 4 bits keep
    their LSBs and need no shift; wider values are rounded and keep their
    MSBs, to be shifted after multiplication.
    """
    x = np.asarray(x)
    fits = act_fits_4bit(x)
    reduced = reduce_act_to_4bit_msb(x)
    nibble = np.where(fits, x, reduced >> 4)
    shift = np.where(fits, 0, 1)
    return nibble.astype(np.int64), shift.astype(np.int64)


def prepare_wgt_operand(w: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Operand preparation for a colliding weight (signed counterpart)."""
    w = np.asarray(w)
    fits = wgt_fits_4bit(w)
    reduced = reduce_wgt_to_4bit_msb(w)
    nibble = np.where(fits, w, reduced >> 4)
    shift = np.where(fits, 0, 1)
    return nibble.astype(np.int64), shift.astype(np.int64)
