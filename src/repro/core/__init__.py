"""Non-blocking simultaneous multithreading (NB-SMT) -- the paper's core idea.

NB-SMT keeps several "DNN threads" in flight on shared MAC hardware.  When
the threads' combined computation demand exceeds the MAC capability (a
*thread collision*, the structural hazard of Section III-B), NB-SMT does not
stall; it momentarily reduces the numerical precision of the colliding
operands so that all threads issue in the same cycle.

Module map
----------
* :mod:`repro.core.bitops` -- MSB/LSB splits of 8-bit operands.
* :mod:`repro.core.precision` -- on-the-fly precision reduction (Section
  III-C1) and 4-bit data-width checks.
* :mod:`repro.core.fmul` -- the flexible multiplier decompositions of
  Eq. (4) and Eq. (5) (one 8b-8b, two 4b-8b, four 4b-4b).
* :mod:`repro.core.policies` -- the packing policies of Table III (S, A, W,
  Aw, aW and their combinations).
* :mod:`repro.core.packing` -- vectorized effective-operand computation under
  a policy (the functional model of Algorithm 1).
* :mod:`repro.core.smt` -- the functional NB-SMT matrix-multiply executor
  with per-layer statistics.
* :mod:`repro.core.engine` -- :class:`~repro.quant.engine.IntMatmulEngine`
  adapter used by the quantized model executor.
* :mod:`repro.core.collision` -- MAC classification (Fig. 1) and collision
  statistics.
"""

from repro.core.precision import (
    act_fits_4bit,
    reduce_act_to_4bit_msb,
    reduce_wgt_to_4bit_msb,
    wgt_fits_4bit,
)
from repro.core.fmul import FlexibleMultiplier, fmul_2x4b8b, fmul_4x4b4b
from repro.core.policies import PackingPolicy, get_policy, POLICY_NAMES
from repro.core.smt import NBSMTMatmul, SMTStatistics
from repro.core.engine import NBSMTEngine
from repro.core.collision import classify_macs, MacBreakdown

__all__ = [
    "act_fits_4bit",
    "wgt_fits_4bit",
    "reduce_act_to_4bit_msb",
    "reduce_wgt_to_4bit_msb",
    "FlexibleMultiplier",
    "fmul_2x4b8b",
    "fmul_4x4b4b",
    "PackingPolicy",
    "get_policy",
    "POLICY_NAMES",
    "NBSMTMatmul",
    "SMTStatistics",
    "NBSMTEngine",
    "classify_macs",
    "MacBreakdown",
]
