"""MAC-operation classification (the measurement behind Fig. 1).

Every MAC operation of a quantized layer is classified by the effective
data-width of its operands:

* **idle** -- at least one operand is zero; the MAC unit does no useful work;
* **partially utilized** -- both operands are nonzero but at least one of
  them is effectively a 4-bit value (4b-8b, 8b-4b or 4b-4b);
* **fully utilized** -- both operands need all 8 bits.

The paper reports that on average only ~20% of MAC operations fully utilize
an 8b-8b unit, ~20% partially utilize it and ~60% leave it idle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.precision import act_fits_4bit, wgt_fits_4bit


@dataclass
class MacBreakdown:
    """Counts of MAC operations by utilization class."""

    idle: int = 0
    partial: int = 0
    full: int = 0

    @property
    def total(self) -> int:
        return self.idle + self.partial + self.full

    def merge(self, other: "MacBreakdown") -> None:
        self.idle += other.idle
        self.partial += other.partial
        self.full += other.full

    @property
    def fractions(self) -> dict[str, float]:
        total = max(self.total, 1)
        return {
            "idle": self.idle / total,
            "partial": self.partial / total,
            "full": self.full / total,
        }

    def as_row(self) -> tuple[float, float, float]:
        fractions = self.fractions
        return fractions["full"], fractions["partial"], fractions["idle"]


def classify_macs(x_q: np.ndarray, w_q: np.ndarray) -> MacBreakdown:
    """Classify every MAC of the ``x_q @ w_q`` product.

    The classification is computed without materializing the full
    ``(M, K, N)`` tensor by counting, per K index, how many activation rows
    and weight columns fall into each width class and combining the counts.
    """
    x_q = np.asarray(x_q)
    w_q = np.asarray(w_q)
    if x_q.shape[1] != w_q.shape[0]:
        raise ValueError("inner dimensions of X and W differ")

    # Per (k) counts over rows of X: zero / narrow (fits 4b, nonzero) / wide.
    x_zero = (x_q == 0).sum(axis=0).astype(np.int64)
    x_narrow = ((x_q != 0) & act_fits_4bit(x_q)).sum(axis=0).astype(np.int64)
    x_wide = ((~act_fits_4bit(x_q)) & (x_q != 0)).sum(axis=0).astype(np.int64)

    w_zero = (w_q == 0).sum(axis=1).astype(np.int64)
    w_narrow = ((w_q != 0) & wgt_fits_4bit(w_q)).sum(axis=1).astype(np.int64)
    w_wide = ((~wgt_fits_4bit(w_q)) & (w_q != 0)).sum(axis=1).astype(np.int64)

    m = x_q.shape[0]
    n = w_q.shape[1]
    total = m * x_q.shape[1] * n

    idle = int((x_zero * n).sum() + (x_q != 0).sum(axis=0).astype(np.int64) @ w_zero)
    full = int(x_wide @ w_wide)
    partial = total - idle - full
    return MacBreakdown(idle=idle, partial=partial, full=full)
