"""Vectorized effective-operand computation (the functional model of Algorithm 1).

Given the per-thread operand values at one MAC position, these helpers decide
what value each thread *effectively* multiplies after the PE resolves the
collision under a given :class:`~repro.core.policies.PackingPolicy`:

* a thread that does not collide keeps its exact 8-bit operands;
* a colliding operand that fits in 4 bits keeps its exact value (LSB path);
* a colliding operand whose partner fits in 4 bits may swap ports and keep
  its exact value (``Aw`` / ``aW``);
* otherwise the operand is rounded and truncated to its 4-bit MSBs.

All functions operate elementwise on arrays of any (broadcastable) shape, so
the same code serves the functional matmul executor, the cycle-level PE model
and the unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import PackingPolicy
from repro.core.precision import (
    _ACT_REDUCE_LUT,
    _WGT_REDUCE_LUT,
    act_fits_4bit,
    reduce_act_to_4bit_msb,
    reduce_wgt_to_4bit_msb,
    wgt_fits_4bit,
)


def _build_delta_luts() -> dict[tuple[str, bool], np.ndarray]:
    """Reduction-delta lookup tables, keyed by (operand, width_primary).

    ``delta[value] = reduced(value) - value`` with the entries where the value
    already fits in 4 bits zeroed when the policy exploits data-width.  The
    deltas are bounded by 15 (8 from rounding, widened by clipping at the
    range ends, e.g. 255 -> 240), so they are stored as int8: the downstream
    masked-delta GEMMs are memory-bandwidth bound and narrow operands matter.
    """
    act_values = np.arange(256, dtype=np.int64)
    wgt_values = np.arange(-128, 128, dtype=np.int64)
    act_delta = _ACT_REDUCE_LUT - act_values
    wgt_delta = _WGT_REDUCE_LUT - wgt_values
    luts = {
        ("act", False): act_delta.astype(np.int8),
        ("act", True): np.where(
            act_fits_4bit(act_values), 0, act_delta
        ).astype(np.int8),
        ("wgt", False): wgt_delta.astype(np.int8),
        ("wgt", True): np.where(
            wgt_fits_4bit(wgt_values), 0, wgt_delta
        ).astype(np.int8),
    }
    return luts


_DELTA_LUTS = _build_delta_luts()


def thread_active(x: np.ndarray, w: np.ndarray, use_sparsity: bool) -> np.ndarray:
    """Whether a thread actually needs the MAC unit at this position.

    With sparsity detection (the ``S`` component) a thread whose activation
    or weight is zero is considered inactive; without it every thread is
    treated as demanding the MAC.
    """
    if not use_sparsity:
        return np.ones(np.broadcast(x, w).shape, dtype=bool)
    return (np.asarray(x) != 0) & (np.asarray(w) != 0)


def colliding_act(
    x: np.ndarray, w: np.ndarray, policy: PackingPolicy
) -> np.ndarray:
    """Effective activation of a colliding thread under an act-reduction policy."""
    x = np.asarray(x)
    w = np.asarray(w)
    keep_exact = np.zeros(np.broadcast(x, w).shape, dtype=bool)
    if policy.width_primary:
        keep_exact = keep_exact | act_fits_4bit(x)
    if policy.width_secondary:
        keep_exact = keep_exact | wgt_fits_4bit(w)
    return np.where(keep_exact, x, reduce_act_to_4bit_msb(x))


def colliding_wgt(
    x: np.ndarray, w: np.ndarray, policy: PackingPolicy
) -> np.ndarray:
    """Effective weight of a colliding thread under a wgt-reduction policy."""
    x = np.asarray(x)
    w = np.asarray(w)
    keep_exact = np.zeros(np.broadcast(x, w).shape, dtype=bool)
    if policy.width_primary:
        keep_exact = keep_exact | wgt_fits_4bit(w)
    if policy.width_secondary:
        keep_exact = keep_exact | act_fits_4bit(x)
    return np.where(keep_exact, w, reduce_wgt_to_4bit_msb(w))


def colliding_product_2t(
    x: np.ndarray, w: np.ndarray, policy: PackingPolicy
) -> np.ndarray:
    """Product contributed by a colliding thread when two threads share the MAC."""
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    if policy.reduce == "act":
        return colliding_act(x, w, policy) * w
    return x * colliding_wgt(x, w, policy)


def colliding_product_4t(
    x: np.ndarray, w: np.ndarray, policy: PackingPolicy
) -> np.ndarray:
    """Product contributed by a thread in a 3- or 4-way collision.

    With three or more active threads the 4-threaded fMUL falls back to
    4b-4b products (Section IV-C2): both operands are reduced to 4 bits,
    keeping LSBs where the value fits and rounded MSBs otherwise.  The
    data-width checks are applied whenever the policy exploits data-width at
    all (``width_primary``); a pure-sparsity policy always truncates to MSBs.
    """
    x = np.asarray(x, dtype=np.int64)
    w = np.asarray(w, dtype=np.int64)
    use_width = policy.width_primary
    if use_width:
        x_eff = np.where(act_fits_4bit(x), x, reduce_act_to_4bit_msb(x))
        w_eff = np.where(wgt_fits_4bit(w), w, reduce_wgt_to_4bit_msb(w))
    else:
        x_eff = reduce_act_to_4bit_msb(x)
        w_eff = reduce_wgt_to_4bit_msb(w)
    return x_eff * w_eff


def act_reduction_delta(x: np.ndarray, policy: PackingPolicy) -> np.ndarray:
    """``x_effective - x`` for a colliding activation, ignoring the swap path.

    Used by the factorized fast path of the 2-threaded executor: where the
    policy keeps the exact value (4-bit fit) the delta is zero.
    """
    x = np.asarray(x)
    if x.dtype.kind in "iu":
        return _DELTA_LUTS[("act", policy.width_primary)].take(np.clip(x, 0, 255))
    x = x.astype(np.int64)
    delta = reduce_act_to_4bit_msb(x) - x
    if policy.width_primary:
        delta = np.where(act_fits_4bit(x), 0, delta)
    return delta


def wgt_reduction_delta(w: np.ndarray, policy: PackingPolicy) -> np.ndarray:
    """``w_effective - w`` for a colliding weight, ignoring the swap path."""
    w = np.asarray(w)
    if w.dtype.kind in "iu":
        return _DELTA_LUTS[("wgt", policy.width_primary)].take(
            np.clip(w, -128, 127) + 128
        )
    w = w.astype(np.int64)
    delta = reduce_wgt_to_4bit_msb(w) - w
    if policy.width_primary:
        delta = np.where(wgt_fits_4bit(w), 0, delta)
    return delta
