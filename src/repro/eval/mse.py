"""Per-layer MSE analysis (Fig. 8).

For every NB-SMT layer we relate the activation sparsity to the mean squared
error the NB-SMT execution injects into that layer's output, with and without
activation reordering.  The paper observes that MSE and sparsity are
anti-correlated (fewer nonzero activations means fewer collisions) and that
reordering lowers the MSE of every layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.harness import SysmtHarness


@dataclass
class LayerMsePoint:
    """One dot of the Fig. 8 scatter: a layer's sparsity and its MSE."""

    layer: str
    sparsity: float
    mse: float
    relative_mse: float


def per_layer_mse(
    harness: SysmtHarness,
    threads: int = 2,
    policy: str | None = None,
    reorder: bool = False,
) -> list[LayerMsePoint]:
    """Per-layer (sparsity, MSE) points of an NB-SMT run."""
    result = harness.evaluate_nbsmt(
        threads=threads, policy=policy, reorder=reorder, collect_stats=True
    )
    points = []
    for name, stats in result.layer_stats.items():
        if stats.mac_total == 0:
            continue
        points.append(
            LayerMsePoint(
                layer=name,
                sparsity=stats.activation_sparsity,
                mse=stats.mse,
                relative_mse=stats.relative_mse,
            )
        )
    return points


def mse_sparsity_correlation(points: list[LayerMsePoint]) -> float:
    """Pearson correlation between layer sparsity and relative MSE."""
    import numpy as np

    if len(points) < 2:
        return 0.0
    sparsities = np.array([point.sparsity for point in points])
    mses = np.array([point.relative_mse for point in points])
    if np.std(sparsities) == 0 or np.std(mses) == 0:
        return 0.0
    return float(np.corrcoef(sparsities, mses)[0, 1])
