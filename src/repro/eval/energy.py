"""Energy analysis (Section V-A and the headline 33%/35% savings).

Per-layer utilization is extracted from the NB-SMT simulator, converted to
average power through the Table II-calibrated power model, and combined with
the per-layer MAC counts through Eq. (6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.harness import NBSMTRunResult, SysmtHarness
from repro.hw.energy import EnergyModel, LayerEnergyInput


@dataclass
class EnergyReport:
    """Baseline-versus-SySMT energy for one model."""

    model: str
    baseline_mj: float
    sysmt_mj: float
    threads: int

    @property
    def saving(self) -> float:
        if self.baseline_mj == 0:
            return 0.0
        return 1.0 - self.sysmt_mj / self.baseline_mj


def energy_report(
    harness: SysmtHarness,
    run: NBSMTRunResult,
    threads: int,
    rows: int = 16,
    cols: int = 16,
) -> EnergyReport:
    """Energy of a completed NB-SMT run versus the conventional-SA baseline.

    The baseline executes every layer with one thread at that layer's
    measured baseline utilization; the SySMT execution uses the per-layer
    thread assignment of ``run`` and the measured SySMT issue-slot
    utilization.
    """
    model = EnergyModel(rows, cols)
    macs = harness.layer_mac_counts()

    baseline_layers = []
    sysmt_layers = []
    for name, stats in run.layer_stats.items():
        layer_macs = macs.get(name, 0)
        if layer_macs == 0 or stats.mac_total == 0:
            continue
        baseline_layers.append(
            LayerEnergyInput(
                name=name,
                macs=layer_macs,
                utilization=stats.baseline_utilization,
                threads=1,
            )
        )
        layer_threads = run.threads.get(name, threads)
        sysmt_layers.append(
            LayerEnergyInput(
                name=name,
                macs=layer_macs,
                utilization=stats.smt_utilization if layer_threads > 1
                else stats.baseline_utilization,
                threads=layer_threads,
            )
        )
    baseline_mj = model.model_energy_mj(baseline_layers)
    sysmt_mj = model.model_energy_mj(sysmt_layers)
    return EnergyReport(
        model=harness.trained.name,
        baseline_mj=baseline_mj,
        sysmt_mj=sysmt_mj,
        threads=threads,
    )
