"""Zoo-scale sweep orchestration: a parallel experiment-point scheduler.

The paper-reproduction suite is a collection of *sweeps*: each experiment
evaluates a grid of (model, engine configuration, evaluation knobs) points
and reduces the per-point results into one table or figure.  This module
separates the two concerns so the whole suite can be scheduled as one pool
of independent sweep points:

* Experiments declare their work as a flat list of :class:`SweepPoint`
  (a *kind* naming a registered runner, an optional model for worker
  affinity, and canonicalized parameters) and reduce the returned payloads
  in declaration order -- a pure function of the per-point results.
* :func:`run_sweep` executes the points.  Serially it is the same loop the
  experiments used to run inline; with ``workers > 1`` the points are
  grouped by model and the groups are distributed across a fork-based pool
  (:mod:`repro.eval.parallel`), so a trained/calibrated harness is built
  once per worker and reused for every point of that model.  The worker
  budget is split between point workers and the per-point image-shard
  workers without oversubscribing (:func:`plan_worker_allocation`).
* Every computed point is persisted as JSON in a content-addressed store
  under the results cache.  Identical points declared by different
  experiments (or nested inside compound runners via
  :meth:`SweepContext.evaluate`) are computed once and reused, and an
  interrupted suite resumes from its completed points
  (``SweepSession(resume=True)``).
* Reduction is deterministic: payloads are returned in declaration order
  and are always the JSON-normalized representation, so a parallel run is
  bit-identical to the serial loop.

A fresh session (``resume=False``, the default) only trusts artifacts
written by itself (each store entry records the session id that produced
it), so stale results from previous runs are recomputed; ``resume=True``
accepts any stored artifact.  ``reuse=False`` additionally disables store
*reads* inside one ``run()`` call, restoring the exact pre-sweep serial
loop for A/B benchmarking (only meaningful with ``workers == 1``).
"""

from __future__ import annotations

import json
import os
import sys
import uuid
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.eval import parallel
from repro.telemetry import bus as telemetry_bus
from repro.utils.cache import _stable_hash, default_cache_dir

# ---------------------------------------------------------------------------
# Points and runners
# ---------------------------------------------------------------------------


def _canonical_value(value):
    """Canonicalize a parameter value into a hashable, JSON-stable form."""
    if isinstance(value, dict):
        return tuple(
            (str(key), _canonical_value(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"sweep-point parameter {value!r} is not JSON-stable")


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a runner kind, a model, and its parameters.

    Points are identified by content -- two experiments declaring the same
    (kind, model, params) share one computation and one stored artifact.
    ``cost`` is a relative scheduling weight (used to balance worker
    assignments, not part of the identity).
    """

    kind: str
    model: str | None = None
    params: tuple = ()
    cost: float = field(default=1.0, compare=False)

    @staticmethod
    def make(
        kind: str, model: str | None = None, cost: float = 1.0, **params
    ) -> "SweepPoint":
        canonical = tuple(
            (str(key), _canonical_value(params[key])) for key in sorted(params)
        )
        return SweepPoint(kind=kind, model=model, params=canonical, cost=cost)

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def spec(self) -> dict:
        """JSON-able description of the point (the store identity)."""
        return {
            "kind": self.kind,
            "model": self.model,
            "params": {key: to_jsonable(value) for key, value in self.params},
        }

    @property
    def key(self) -> str:
        """Filesystem-safe content-addressed identifier."""
        model = self.model or "any"
        return f"{self.kind}-{model}-{_stable_hash(self.spec())}"

    @property
    def group(self) -> str:
        """Worker-affinity group (points of one model share a worker)."""
        return self.model if self.model is not None else f"@{self.kind}"


def point_from_spec(spec: dict) -> SweepPoint:
    """Rebuild a point from its :meth:`SweepPoint.spec` document.

    The round trip is exact: ``point_from_spec(p.spec()).key == p.key``,
    which is what lets a remote executor lease specs off the wire and
    persist results under the identity the parent expects.  ``cost`` is
    not part of the identity and is not carried.
    """
    return SweepPoint.make(
        spec["kind"], spec.get("model"), **(spec.get("params") or {})
    )


_POINT_RUNNERS: dict[str, Callable] = {}


def point_runner(kind: str):
    """Register the runner executing points of ``kind``.

    A runner is a module-level function ``runner(ctx, point) -> dict``; it
    must be deterministic and return a JSON-able payload.  Runners may
    evaluate nested points through ``ctx.evaluate`` to share work with other
    experiments (e.g. a throttling curve reusing its baseline evaluation).
    """

    def decorator(fn):
        _POINT_RUNNERS[kind] = fn
        return fn

    return decorator


def get_runner(kind: str) -> Callable:
    try:
        return _POINT_RUNNERS[kind]
    except KeyError:
        raise KeyError(
            f"no sweep runner registered for kind {kind!r}; "
            f"known: {sorted(_POINT_RUNNERS)}"
        ) from None


def to_jsonable(value):
    """Recursively convert numpy containers/scalars to plain JSON values."""
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def _normalize(payload: dict) -> dict:
    """JSON round trip, so in-memory results match store-loaded ones exactly."""
    return json.loads(json.dumps(to_jsonable(payload)))


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


class PointStore:
    """Content-addressed JSON store of computed sweep points (per scale).

    The store may carry a :class:`repro.utils.diskbudget.DiskBudget`: a
    save that would bust the quota (or hits real ENOSPC) is *refused and
    counted* (``refused_writes``) while reads keep serving -- disk
    exhaustion degrades persistence (the point is recomputed next
    session), never correctness (the normalized payload is still
    returned, so the in-flight sweep proceeds with the exact values a
    store round-trip would have produced).
    """

    def __init__(
        self, scale: str, root: Path | str | None = None, budget=None
    ):
        base = Path(root) if root is not None else default_cache_dir()
        self.dir = base / "results" / "points" / scale
        self.budget = budget
        self.refused_writes = 0

    def path(self, point: SweepPoint) -> Path:
        return self.dir / f"{point.key}.json"

    def load(self, point: SweepPoint) -> tuple[dict, str] | None:
        """Return ``(payload, session_id)`` or None when absent/corrupt."""
        path = self.path(point)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            return entry["result"], entry.get("session", "")
        except (OSError, ValueError, KeyError):
            return None

    def save(self, point: SweepPoint, payload: dict, session_id: str) -> dict:
        """Atomically persist one point; returns the normalized payload.

        Under a full disk (quota or ENOSPC) the write is refused with a
        counter and the normalized payload is returned un-persisted.
        """
        normalized = _normalize(payload)
        self.dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "spec": point.spec(),
            "session": session_id,
            "result": normalized,
        }
        path = self.path(point)
        if self.budget is not None:
            document = json.dumps(entry, indent=1)
            if not self.budget.admit(len(document)):
                self.refused_writes += 1
                return normalized
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                # No sort_keys: loaded payloads must preserve the exact key
                # order of the normalized in-memory payload, or store-served
                # runs would reduce dicts in a different order than serial
                # ones.
                json.dump(entry, handle, indent=1)
            os.replace(tmp, path)
        except OSError as exc:
            from repro.utils.diskbudget import is_enospc

            if is_enospc(exc):
                self.refused_writes += 1
                if self.budget is not None:
                    self.budget.note_enospc()
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return normalized
            raise
        return normalized

    def discard(self, point: SweepPoint) -> None:
        try:
            self.path(point).unlink()
        except OSError:
            pass

    def clear(self) -> None:
        if not self.dir.is_dir():
            return
        # "*" also sweeps up "<key>.tmp.<pid>" files orphaned by a worker
        # that died between writing and os.replace.
        for path in self.dir.glob("*"):
            try:
                path.unlink()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Sessions and contexts
# ---------------------------------------------------------------------------


@dataclass
class SweepSession:
    """Execution policy shared by every sweep of one suite invocation.

    One session spans all experiments of a ``repro run`` (or benchmark
    suite) call, so identical points declared by different experiments are
    computed once.  ``resume`` accepts artifacts from previous sessions;
    a fresh session recomputes them.  ``cpu_count`` overrides CPU detection
    (tests; capacity planning).
    """

    scale: str = "fast"
    workers: int = 1
    resume: bool = False
    reuse: bool = True
    cpu_count: int | None = None
    store_root: Path | str | None = None
    id: str = field(default_factory=lambda: uuid.uuid4().hex)
    #: Optional :class:`repro.cluster.worker.SweepHub`: when set, pending
    #: points are offered to remote executors instead of a local fork pool.
    hub: object | None = None

    def __post_init__(self):
        self.scale = getattr(self.scale, "name", self.scale)
        self.store = PointStore(self.scale, self.store_root)
        self._context: SweepContext | None = None

    def context(self) -> "SweepContext":
        """The parent-process evaluation context (created lazily)."""
        if self._context is None:
            self._context = SweepContext(self)
        return self._context


def ensure_session(
    session: SweepSession | None,
    scale,
    workers: int = 1,
    resume: bool = False,
    reuse: bool = True,
) -> SweepSession:
    """Return ``session`` (validated against ``scale``) or a fresh one."""
    scale_name = getattr(scale, "name", scale)
    if session is None:
        return SweepSession(
            scale=scale_name, workers=workers, resume=resume, reuse=reuse
        )
    if session.scale != scale_name:
        raise ValueError(
            f"session runs at scale {session.scale!r}, experiment asked for "
            f"{scale_name!r}"
        )
    return session


class SweepContext:
    """Evaluates points for one process, with memoization and store reuse."""

    def __init__(self, session: SweepSession, inner_workers: int = 1):
        self.session = session
        self.scale = session.scale
        self.inner_workers = inner_workers
        self._memo: dict[SweepPoint, dict] = {}

    def _stored(self, point: SweepPoint) -> dict | None:
        if not self.session.reuse:
            return None
        entry = self.session.store.load(point)
        if entry is None:
            return None
        payload, session_id = entry
        if self.session.resume or session_id == self.session.id:
            return payload
        return None

    def memoized(self, point: SweepPoint) -> bool:
        """Whether this context already holds the point (no store read)."""
        return point in self._memo

    def cached(self, point: SweepPoint) -> dict | None:
        """The point's payload if already computed (memo or store), else None."""
        payload = self._memo.get(point)
        if payload is None:
            payload = self._stored(point)
            if payload is not None:
                self._memo[point] = payload
                # A store hit new to this process is a *reuse*: consumers
                # (the progress ticker, the dashboard) dedup by point key,
                # so the worker that actually computed a point and the
                # parent later collecting it never double-count.
                telemetry_bus.publish(
                    "point_finished",
                    kind=point.kind,
                    model=point.model,
                    key=point.key,
                    reused=True,
                )
        return payload

    def evaluate(self, point: SweepPoint) -> dict:
        """Compute (or fetch) one point's normalized payload."""
        payload = self.cached(point)
        if payload is None:
            telemetry_bus.publish(
                "point_started",
                kind=point.kind,
                model=point.model,
                key=point.key,
            )
            try:
                result = get_runner(point.kind)(self, point)
            except Exception:
                telemetry_bus.publish(
                    "point_failed",
                    kind=point.kind,
                    model=point.model,
                    key=point.key,
                )
                raise
            payload = self.session.store.save(point, result, self.session.id)
            self._memo[point] = payload
            telemetry_bus.publish(
                "point_finished",
                kind=point.kind,
                model=point.model,
                key=point.key,
                reused=False,
            )
        return payload


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

#: Worker-process context, created after the fork (one per worker).
_WORKER_CONTEXT: SweepContext | None = None


def _worker_initializer(session: SweepSession, inner_workers: int):
    def initialize():
        global _WORKER_CONTEXT
        # Inherited memoized harnesses carry the parent's installed hooks
        # and would pin its copy-on-write memory; workers rebuild their own.
        from repro.eval.experiments.common import discard_inherited_state

        discard_inherited_state()
        _WORKER_CONTEXT = SweepContext(session, inner_workers=inner_workers)

    return initialize


def _worker_finalizer():
    """Close the harnesses a sweep worker built for itself.

    Runs even when the worker drains early on SIGINT/SIGTERM, so forked
    workers never exit with engines installed on live models.
    """
    from repro.eval.experiments.common import clear_harness_cache

    clear_harness_cache()


def _make_group_thunk(points: list[SweepPoint]):
    def run_group():
        for point in points:
            _WORKER_CONTEXT.evaluate(point)

    return run_group


def group_points(points: list[SweepPoint]) -> list[list[SweepPoint]]:
    """Group points by worker affinity, preserving declaration order."""
    groups: dict[str, list[SweepPoint]] = {}
    for point in points:
        groups.setdefault(point.group, []).append(point)
    return list(groups.values())


def run_sweep(
    points: list[SweepPoint], session: SweepSession | None = None, **kwargs
) -> list[dict]:
    """Execute sweep points and return their payloads in declaration order.

    With ``session.workers > 1`` (and fork available and more than one CPU)
    the not-yet-computed points are grouped by model, the groups are
    balanced across a fork-based worker pool, and each worker persists its
    results to the point store; the parent then collects every payload from
    the store.  Any point a crashed worker failed to produce is recomputed
    serially in the parent, so a dying worker degrades the sweep instead of
    failing it.  Serial execution (the default) evaluates the same points
    in declaration order in-process -- the reference semantics.
    """
    session = session or SweepSession(**kwargs)
    context = session.context()
    context.inner_workers = 1  # re-planned below for this sweep

    seen: set[SweepPoint] = set()
    unique = [p for p in points if not (p in seen or seen.add(p))]
    # Telemetry: announce how much *new* work this sweep represents (points
    # already memoized by an earlier sweep of the same session are done).
    telemetry_bus.publish(
        "sweep_started",
        points=sum(1 for p in unique if not context.memoized(p)),
    )
    # The pool (and the hub) hand results back through the store, so
    # orchestrated mode requires store reuse; reuse=False stays serial by
    # construction.
    hub = getattr(session, "hub", None)
    use_pool = session.workers > 1 and parallel.fork_available()
    if session.reuse and (hub is not None or use_pool):
        pending = [p for p in unique if context.cached(p) is None]
        groups = group_points(pending)
        if hub is not None:
            # Every pending group goes on the wire: remote executors lease
            # them and persist into this session's store.  The collection
            # loop below recomputes whatever a dead or partitioned node
            # left behind -- losing every worker degrades the sweep back
            # to the serial path, never fails it.
            if groups:
                hub.offer(groups)
                parallel.run_worklists([], remote_nodes=hub)
        else:
            pool, inner = parallel.plan_worker_allocation(
                session.workers, len(groups), session.cpu_count
            )
            # With a single point worker (one affinity group, or no spare
            # CPUs for a pool) the whole shard budget goes to the in-point
            # image sharding instead, so --workers still buys two-level
            # parallelism.
            context.inner_workers = inner if pool == 1 else 1
            if pool > 1:
                weights = [sum(p.cost for p in group) for group in groups]
                worklists = [
                    [_make_group_thunk(groups[index]) for index in indices]
                    for indices in parallel.partition_worklists(weights, pool)
                ]
                ok = parallel.run_worklists(
                    worklists,
                    initializer=_worker_initializer(session, inner),
                    finalizer=_worker_finalizer,
                )
                if not all(ok):
                    failed = sum(1 for flag in ok if not flag)
                    print(
                        f"sweep: {failed} worker(s) exited abnormally; "
                        "recomputing their unfinished points serially",
                        file=sys.stderr,
                    )
                # Workers only persist to the store; pick their results up
                # (and compute whatever a crashed worker left behind) in
                # the parent.

    payloads = [context.evaluate(point) for point in points]
    telemetry_bus.publish("sweep_finished", points=len(unique))
    return payloads
