"""Shared infrastructure for the experiment modules.

Experiments share trained models (disk-cached by the zoo) and harnesses
(memoized per process) so that running the whole benchmark suite does not
re-train or re-calibrate the same model repeatedly.  Each experiment is run
at a *scale*:

* ``"fast"`` -- small dataset, short training, small evaluation set.  Used by
  the benchmark defaults and the test suite; finishes in minutes for the
  whole suite.
* ``"full"`` -- the larger synthetic dataset and evaluation set.  Closer to
  the paper's protocol; takes substantially longer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.eval.harness import SysmtHarness
from repro.models.zoo import TrainedModel, load_trained_model
from repro.utils.cache import default_cache_dir


@dataclass(frozen=True)
class ScaleConfig:
    """Evaluation sizes of one experiment scale."""

    name: str
    fast_models: bool
    eval_images: int
    calibration_images: int
    batch_size: int = 64


SCALES: dict[str, ScaleConfig] = {
    "fast": ScaleConfig("fast", fast_models=True, eval_images=96,
                        calibration_images=128),
    "full": ScaleConfig("full", fast_models=False, eval_images=256,
                        calibration_images=256),
}

_HARNESS_CACHE: dict[tuple[str, str], SysmtHarness] = {}
_MODEL_CACHE: dict[tuple[str, str], TrainedModel] = {}


def get_scale(scale: str | ScaleConfig) -> ScaleConfig:
    if isinstance(scale, ScaleConfig):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}") from None


def get_trained_model(name: str, scale: str | ScaleConfig = "fast") -> TrainedModel:
    """Train-or-load a zoo model at the requested scale (memoized)."""
    config = get_scale(scale)
    key = (name, config.name)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = load_trained_model(name, fast=config.fast_models)
    return _MODEL_CACHE[key]


def get_harness(name: str, scale: str | ScaleConfig = "fast") -> SysmtHarness:
    """Build (or reuse) the experiment harness for one model."""
    config = get_scale(scale)
    key = (name, config.name)
    if key not in _HARNESS_CACHE:
        trained = get_trained_model(name, config)
        _HARNESS_CACHE[key] = SysmtHarness(
            trained,
            max_eval_images=config.eval_images,
            calibration_images=config.calibration_images,
            batch_size=config.batch_size,
        )
    return _HARNESS_CACHE[key]


def clear_harness_cache() -> None:
    """Drop memoized harnesses (restores the wrapped models' matmuls)."""
    for harness in _HARNESS_CACHE.values():
        harness.close()
    _HARNESS_CACHE.clear()
    _MODEL_CACHE.clear()


def results_dir() -> Path:
    """Directory where experiment results are persisted as JSON."""
    path = default_cache_dir() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _to_jsonable(value):
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def save_result(experiment_id: str, result: dict) -> Path:
    """Persist an experiment result dictionary as JSON; returns the path."""
    path = results_dir() / f"{experiment_id}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(result), handle, indent=2, sort_keys=True)
    return path


def load_result(experiment_id: str) -> dict | None:
    """Load a previously saved experiment result, if present."""
    path = results_dir() / f"{experiment_id}.json"
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
