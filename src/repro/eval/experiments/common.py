"""Shared infrastructure for the experiment modules.

Experiments share trained models (disk-cached by the zoo) and harnesses
(memoized per process, bounded LRU) so that running the whole benchmark
suite does not re-train or re-calibrate the same model repeatedly.  Each
experiment is run at a *scale*:

* ``"fast"`` -- small dataset, short training, small evaluation set.  Used by
  the benchmark defaults and the test suite; finishes in minutes for the
  whole suite.
* ``"full"`` -- the larger synthetic dataset and evaluation set.  Closer to
  the paper's protocol; takes substantially longer.

This module also hosts the sweep-point runners shared by several
experiments (see :mod:`repro.eval.sweep`): the plain NB-SMT evaluation
point, the FP32/INT8 baseline point, and the throttling-curve point.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.smt import SMTStatistics
from repro.eval.harness import NBSMTRunResult, SysmtHarness
from repro.eval.sweep import SweepPoint, point_runner, to_jsonable
from repro.models.zoo import TrainedModel, load_trained_model
from repro.utils.cache import default_cache_dir


@dataclass(frozen=True)
class ScaleConfig:
    """Evaluation sizes of one experiment scale."""

    name: str
    fast_models: bool
    eval_images: int
    calibration_images: int
    batch_size: int = 64


SCALES: dict[str, ScaleConfig] = {
    "fast": ScaleConfig("fast", fast_models=True, eval_images=96,
                        calibration_images=128),
    "full": ScaleConfig("full", fast_models=False, eval_images=256,
                        calibration_images=256),
}

#: Bounded LRU caches: harnesses/models are evicted least-recently-used once
#: the limit is exceeded (evicted harnesses are closed, restoring the
#: wrapped model's float matmuls), so sweeping many (model, scale) pairs no
#: longer grows process memory without bound.
_HARNESS_CACHE: OrderedDict[tuple[str, str], SysmtHarness] = OrderedDict()
_MODEL_CACHE: OrderedDict[tuple[str, str], TrainedModel] = OrderedDict()

#: Lease refcounts per harness (identity-keyed).  A leased harness evicted
#: from the LRU (or swept by :func:`clear_harness_cache`) is parked in
#: ``_DEFERRED_CLOSE`` instead of being closed under its holder; the last
#: :func:`release_harness` closes it.  Long-lived holders -- the serving
#: subsystem's warm engine replicas foremost -- take leases; plain
#: :func:`get_harness` borrows remain safe because hooks re-install on use.
_HARNESS_LEASES: dict[SysmtHarness, int] = {}
_DEFERRED_CLOSE: set[SysmtHarness] = set()

#: Serializes all cache/lease mutations (the serving subsystem touches the
#: cache from batcher worker threads).
_CACHE_LOCK = threading.RLock()


def harness_cache_limit() -> int:
    """Cached-harness budget (``REPRO_HARNESS_CACHE_LIMIT``, default 6)."""
    return max(1, int(os.environ.get("REPRO_HARNESS_CACHE_LIMIT", "6")))


def get_scale(scale: str | ScaleConfig) -> ScaleConfig:
    if isinstance(scale, ScaleConfig):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}") from None


def get_trained_model(name: str, scale: str | ScaleConfig = "fast") -> TrainedModel:
    """Train-or-load a zoo model at the requested scale (memoized, bounded)."""
    config = get_scale(scale)
    key = (name, config.name)
    with _CACHE_LOCK:
        entry = _MODEL_CACHE.get(key)
        if entry is None:
            entry = load_trained_model(name, fast=config.fast_models)
            _MODEL_CACHE[key] = entry
        else:
            _MODEL_CACHE.move_to_end(key)
        limit = harness_cache_limit()
        while len(_MODEL_CACHE) > limit:
            _MODEL_CACHE.popitem(last=False)
        return entry


def _retire_harness(harness: SysmtHarness) -> None:
    """Close a harness leaving the cache -- now, or when its leases end."""
    if _HARNESS_LEASES.get(harness, 0) > 0:
        _DEFERRED_CLOSE.add(harness)
    else:
        harness.close()


def get_harness(name: str, scale: str | ScaleConfig = "fast") -> SysmtHarness:
    """Build (or reuse) the experiment harness for one model.

    The cache is a bounded LRU; evicting a harness calls ``close()`` on it
    -- unless the harness is currently leased (:func:`acquire_harness`), in
    which case the close is deferred to the last :func:`release_harness`.
    A caller still holding a plain reference to an evicted (or cleared)
    harness can keep using it -- its quantization hooks re-install
    themselves on the next evaluation -- so eviction and
    :func:`clear_harness_cache` are safe in the middle of a sweep.
    """
    config = get_scale(scale)
    key = (name, config.name)
    with _CACHE_LOCK:
        harness = _HARNESS_CACHE.get(key)
        if harness is None:
            trained = get_trained_model(name, config)
            harness = SysmtHarness(
                trained,
                max_eval_images=config.eval_images,
                calibration_images=config.calibration_images,
                batch_size=config.batch_size,
            )
            _HARNESS_CACHE[key] = harness
        else:
            _HARNESS_CACHE.move_to_end(key)
        limit = harness_cache_limit()
        while len(_HARNESS_CACHE) > limit:
            _, evicted = _HARNESS_CACHE.popitem(last=False)
            _retire_harness(evicted)
        return harness


def acquire_harness(name: str, scale: str | ScaleConfig = "fast") -> SysmtHarness:
    """Lease the harness for one model: it will not be closed under you.

    Identical to :func:`get_harness` except that the returned harness is
    refcounted: LRU eviction and :func:`clear_harness_cache` defer its
    ``close()`` until the matching :func:`release_harness`.  Long-lived
    holders (the serving subsystem's warm replicas) must use this pair.
    """
    with _CACHE_LOCK:
        harness = get_harness(name, scale)
        _HARNESS_LEASES[harness] = _HARNESS_LEASES.get(harness, 0) + 1
        return harness


def release_harness(harness: SysmtHarness) -> None:
    """Return a lease taken by :func:`acquire_harness`.

    When the last lease ends and the harness has meanwhile left the cache
    (evicted or cleared), the deferred ``close()`` happens here.
    """
    with _CACHE_LOCK:
        count = _HARNESS_LEASES.get(harness, 0) - 1
        if count > 0:
            _HARNESS_LEASES[harness] = count
            return
        _HARNESS_LEASES.pop(harness, None)
        if harness in _DEFERRED_CLOSE:
            _DEFERRED_CLOSE.discard(harness)
            harness.close()


def clear_harness_cache() -> None:
    """Drop memoized harnesses (restores the wrapped models' matmuls).

    Safe mid-sweep and mid-serve: a *leased* harness (see
    :func:`acquire_harness`) is not closed until its last lease is
    released; a plainly borrowed harness that is still referenced by
    in-flight work re-installs its hooks on its next evaluation; and the
    next :func:`get_harness` call simply rebuilds (deterministically
    identical) state.
    """
    with _CACHE_LOCK:
        for harness in _HARNESS_CACHE.values():
            _retire_harness(harness)
        _HARNESS_CACHE.clear()
        _MODEL_CACHE.clear()


def discard_inherited_state() -> None:
    """Forget caches inherited by a forked sweep worker.

    The parent's memoized harnesses arrive through fork with their hooks
    installed on the parent's model objects; keeping them would pin that
    copy-on-write memory for models the worker may never touch.  Unlike
    :func:`clear_harness_cache` this does *not* close the harnesses -- the
    hook state belongs to the parent's live objects, and the worker simply
    rebuilds what it needs.  Inherited leases belong to the parent's
    holders and are dropped without closing, for the same reason.
    """
    with _CACHE_LOCK:
        _HARNESS_CACHE.clear()
        _MODEL_CACHE.clear()
        _HARNESS_LEASES.clear()
        _DEFERRED_CLOSE.clear()


def results_dir() -> Path:
    """Directory where experiment results are persisted as JSON."""
    path = default_cache_dir() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(experiment_id: str, result: dict) -> Path:
    """Persist an experiment result dictionary as JSON; returns the path."""
    path = results_dir() / f"{experiment_id}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(result), handle, indent=2, sort_keys=True)
    return path


def load_result(experiment_id: str) -> dict | None:
    """Load a previously saved experiment result, if present."""
    path = results_dir() / f"{experiment_id}.json"
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# Shared sweep points
# ---------------------------------------------------------------------------


def baseline_point(model: str) -> SweepPoint:
    """FP32 + INT8 reference accuracies of one model."""
    return SweepPoint.make("baseline_accuracy", model=model)


@point_runner("baseline_accuracy")
def _run_baseline_accuracy(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    return {"fp32": harness.fp32_accuracy, "int8": harness.int8_accuracy}


def nbsmt_point(
    model: str,
    threads,
    policy: str | None = None,
    reorder: bool = False,
    collect_stats: bool = True,
    cost: float = 1.0,
) -> SweepPoint:
    """One NB-SMT accuracy/statistics evaluation.

    ``policy=None`` is resolved to the model's default policy name here, so
    experiments passing the default explicitly share the same point.
    ``threads`` is an int or a per-layer ``{name: threads}`` assignment.
    """
    if policy is None:
        from repro.core.policies import default_policy_for

        policy = default_policy_for(model).name
    elif not isinstance(policy, str):
        policy = policy.name
    return SweepPoint.make(
        "nbsmt",
        model=model,
        cost=cost,
        threads=threads,
        policy=policy,
        reorder=bool(reorder),
        collect_stats=bool(collect_stats),
    )


def nbsmt_payload(result: NBSMTRunResult) -> dict:
    """JSON payload of one NB-SMT run (raw per-layer counters included)."""
    return {
        "accuracy": result.accuracy,
        "policy": result.policy,
        "reordered": result.reordered,
        "threads": dict(result.threads),
        "speedup": result.speedup,
        "layer_stats": {
            name: stats.to_payload()
            for name, stats in result.layer_stats.items()
        },
    }


def payload_layer_stats(payload: dict) -> dict[str, SMTStatistics]:
    """Rebuild the per-layer statistics objects of an ``nbsmt`` payload."""
    return {
        name: SMTStatistics.from_payload(stats)
        for name, stats in payload["layer_stats"].items()
    }


@point_runner("nbsmt")
def _run_nbsmt(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    threads = point.param("threads")
    if isinstance(threads, tuple):
        threads = {name: int(count) for name, count in threads}
    result = harness.evaluate_nbsmt(
        threads=threads,
        policy=point.param("policy"),
        reorder=bool(point.param("reorder")),
        collect_stats=bool(point.param("collect_stats")),
        workers=ctx.inner_workers,
    )
    return nbsmt_payload(result)


def throttle_curve_point(
    model: str,
    base_threads: int = 4,
    slow_threads: int = 2,
    max_slowed: int = 2,
    reorder: bool = True,
) -> SweepPoint:
    """Baseline run plus progressive highest-MSE-layer throttling."""
    return SweepPoint.make(
        "throttle_curve",
        model=model,
        cost=float(1 + max_slowed),
        base_threads=int(base_threads),
        slow_threads=int(slow_threads),
        max_slowed=int(max_slowed),
        reorder=bool(reorder),
    )


@point_runner("throttle_curve")
def _run_throttle_curve(ctx, point: SweepPoint) -> dict:
    from repro.eval.throttle import rank_layers_by_mse, throttle_assignment

    model = point.model
    base_threads = int(point.param("base_threads"))
    slow_threads = int(point.param("slow_threads"))
    max_slowed = int(point.param("max_slowed"))
    reorder = bool(point.param("reorder"))

    baseline = ctx.evaluate(
        nbsmt_point(model, threads=base_threads, reorder=reorder,
                    collect_stats=True)
    )
    harness = get_harness(model, ctx.scale)
    ranked = rank_layers_by_mse(
        payload_layer_stats(baseline), harness.qmodel.layer_names()
    )
    steps = []
    for count in range(1, max_slowed + 1):
        if count > len(ranked):
            break
        slowed = ranked[:count]
        assignment = throttle_assignment(
            harness.qmodel, base_threads, slowed, slow_threads
        )
        payload = ctx.evaluate(
            nbsmt_point(model, threads=assignment, reorder=reorder,
                        collect_stats=True)
        )
        steps.append(
            {
                "slowed_layers": count,
                "slowed": list(slowed),
                "accuracy": payload["accuracy"],
                "speedup": payload["speedup"],
            }
        )
    return {"baseline": baseline, "ranked": ranked, "steps": steps}
