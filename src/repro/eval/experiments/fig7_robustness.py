"""Figure 7: model robustness to on-the-fly numerical precision reduction.

Reducing all activations (A4W8), all weights (A8W4) or both (A4W4) on the fly
bounds the worst case of a 2-threaded (A4W8/A8W4) and 4-threaded (A4W4)
SySMT.  The paper's observation: most models are more robust to activation
reduction than to weight reduction (ResNet-50 being the exception).
"""

from __future__ import annotations

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.quant.robustness import robustness_sweep
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig7"

#: Paper Fig. 7 top-1 accuracies (ImageNet) for qualitative comparison.
PAPER_FIG7 = {
    "alexnet": {"A8W8": 56.4, "A4W8": 53.0, "A8W4": 52.3, "A4W4": 45.3},
    "resnet18": {"A8W8": 69.7, "A4W8": 66.6, "A8W4": 50.9, "A4W4": 63.2},
    "resnet50": {"A8W8": 76.2, "A4W8": 70.1, "A8W4": 72.5, "A4W4": 28.9},
    "googlenet": {"A8W8": 69.6, "A4W8": 63.4, "A8W4": 41.8, "A4W4": 60.1},
    "densenet121": {"A8W8": 74.7, "A4W8": 71.9, "A8W4": 66.1, "A4W4": 60.1},
}


@point_runner("robustness")
def _run_robustness(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    return robustness_sweep(
        harness.qmodel,
        harness.eval_images,
        harness.eval_labels,
        batch_size=harness.batch_size,
    )


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Accuracy of each model at the A8W8 / A4W8 / A8W4 / A4W4 points."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [SweepPoint.make("robustness", model=name) for name in models]
    payloads = run_sweep(points, session)
    per_model = dict(zip(models, payloads))
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
        "paper": PAPER_FIG7,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, accuracies in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                100 * accuracies["A8W8"],
                100 * accuracies["A4W8"],
                100 * accuracies["A8W4"],
                100 * accuracies["A4W4"],
            )
        )
    return format_table(
        ["Model", "A8W8 (baseline) %", "A4W8 %", "A8W4 %", "A4W4 %"],
        rows,
        float_fmt=".1f",
        title="Fig. 7 -- robustness to whole-model on-the-fly precision reduction",
    )
