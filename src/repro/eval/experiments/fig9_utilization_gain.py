"""Figure 9: utilization improvement of a 2T SySMT versus activation sparsity.

Each layer is one point: its activation sparsity against the measured
utilization gain over the conventional SA, compared against the analytic
line of Eq. (8) (gain = 1 + sparsity).  Reordering pushes layers above the
line because it breaks the thread-independence assumption.

Declares the same two NB-SMT evaluation points as Fig. 8, so a suite run
computes the underlying evaluations once for both figures.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments.common import (
    nbsmt_point,
    payload_layer_stats,
    save_result,
)
from repro.eval.sweep import ensure_session, run_sweep
from repro.systolic.utilization import utilization_gain_analytic
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig9"


def run(
    scale: str = "fast",
    model: str = "googlenet",
    threads: int = 2,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Per-layer measured utilization gain with and without reordering."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    sweep_points = [
        nbsmt_point(model, threads=threads, reorder=False, collect_stats=True),
        nbsmt_point(model, threads=threads, reorder=True, collect_stats=True),
    ]
    payloads = run_sweep(sweep_points, session)

    series = {}
    for label, payload in (
        ("without_reorder", payloads[0]),
        ("with_reorder", payloads[1]),
    ):
        points = []
        for name, stats in payload_layer_stats(payload).items():
            if stats.mac_total == 0 or stats.slots_total == 0:
                continue
            sparsity = stats.activation_sparsity
            points.append(
                {
                    "layer": name,
                    "sparsity": sparsity,
                    "measured_gain": stats.utilization_gain,
                    "analytic_gain": utilization_gain_analytic(sparsity, threads),
                }
            )
        series[label] = points

    deviations = [
        abs(point["measured_gain"] - point["analytic_gain"])
        for point in series["without_reorder"]
    ]
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "model": model,
        "threads": threads,
        "series": series,
        "mean_abs_deviation_from_eq8": float(np.mean(deviations)) if deviations else 0.0,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    with_by_layer = {
        point["layer"]: point for point in result["series"]["with_reorder"]
    }
    for point in result["series"]["without_reorder"]:
        reordered = with_by_layer.get(point["layer"], {})
        rows.append(
            (
                point["layer"],
                100 * point["sparsity"],
                point["measured_gain"],
                reordered.get("measured_gain", float("nan")),
                point["analytic_gain"],
            )
        )
    table = format_table(
        [
            "Layer",
            "Act. sparsity %",
            "Gain (w/o reorder)",
            "Gain (w/ reorder)",
            "Eq. (8) 1+s",
        ],
        rows,
        float_fmt=".3f",
        title=f"Fig. 9 -- {result['model']} utilization improvement vs sparsity (2T)",
    )
    return table + (
        f"\nmean |measured - Eq.(8)| without reorder: "
        f"{result['mean_abs_deviation_from_eq8']:.3f}"
    )
