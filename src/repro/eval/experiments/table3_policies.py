"""Table III: contribution of sparsity and data-width exploitation (2T SySMT).

The paper's Table III compares, per model, the accuracy of a 2-threaded
SySMT under different packing policies without reordering: the baseline
"min" (reduce everything), S (sparsity only), A (activation data-width), Aw
(both operands' data-width, reduce activations), and the combinations S+A /
S+Aw.  For ResNet-50 the weight-reduction family (W, aW, S+W, S+aW) is used
instead.  The expected ordering: min is worst, combining sparsity with
data-width is best, and the extra swap (Aw/aW) does not add much.
"""

from __future__ import annotations

from repro.eval.experiments.common import baseline_point, nbsmt_point, save_result
from repro.eval.sweep import ensure_session, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "table3"

#: Policy columns per model family (ResNet-50 uses the weight family).
ACT_FAMILY = ("min", "S", "A", "Aw", "S+A", "S+Aw")
WGT_FAMILY = ("min_w", "S_w", "W", "aW", "S+W", "S+aW")


def policies_for(model_name: str) -> tuple[str, ...]:
    if model_name.startswith("resnet50"):
        return WGT_FAMILY
    return ACT_FAMILY


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    policies: tuple[str, ...] | None = None,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """2T SySMT accuracy per policy (no reordering), plus the INT8 baseline."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = []
    columns: dict[str, tuple[str, ...]] = {}
    for name in models:
        columns[name] = policies or policies_for(name)
        points.append(baseline_point(name))
        for policy in columns[name]:
            points.append(
                nbsmt_point(name, threads=2, policy=policy, reorder=False,
                            collect_stats=False)
            )
    payloads = run_sweep(points, session)

    per_model: dict[str, dict[str, float]] = {}
    cursor = 0
    for name in models:
        row: dict[str, float] = {"A8W8": payloads[cursor]["int8"]}
        cursor += 1
        for policy in columns[name]:
            row[policy] = payloads[cursor]["accuracy"]
            cursor += 1
        per_model[name] = row
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    lines = []
    for name, row in result["per_model"].items():
        headers = ["Model"] + list(row.keys())
        values = [DISPLAY_NAMES.get(name, name)] + [100 * v for v in row.values()]
        lines.append(format_table(headers, [values], float_fmt=".1f"))
    return (
        "Table III -- 2T SySMT accuracy per packing policy (no reordering)\n"
        + "\n".join(lines)
    )
