"""Table V: 4T SySMT accuracy and speedup with layer throttling.

With four threads, collisions are more frequent and 3-/4-way collisions
reduce both operands to 4 bits, so the paper trades speedup for accuracy by
running the highest-MSE layers with two threads ("1L@2T", "2L@2T" columns).
"""

from __future__ import annotations

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.throttle import rank_layers_by_mse, throttle_layers
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "table5"


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    max_slowed: int = 2,
) -> dict:
    """4T accuracy/speedup with 0, 1 and 2 layers throttled to 2 threads."""
    per_model: dict[str, dict[str, dict[str, float]]] = {}
    for name in models:
        harness = get_harness(name, scale)
        baseline = harness.evaluate_nbsmt(threads=4, reorder=True, collect_stats=True)
        ranked = rank_layers_by_mse(baseline.layer_stats, harness.qmodel.layer_names())
        entries = {
            "4T": {"accuracy": baseline.accuracy, "speedup": baseline.speedup},
            "A8W8": {"accuracy": harness.int8_accuracy, "speedup": 1.0},
        }
        slowed: list[str] = []
        for count in range(1, max_slowed + 1):
            if count > len(ranked):
                break
            slowed = ranked[:count]
            result, _ = throttle_layers(
                harness, base_threads=4, slow_layers=slowed, slow_threads=2,
                reorder=True,
            )
            entries[f"{count}L@2T"] = {
                "accuracy": result.accuracy,
                "speedup": result.speedup,
            }
        per_model[name] = entries
    result = {"experiment": EXPERIMENT_ID, "scale": scale, "per_model": per_model}
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, entries in result["per_model"].items():
        row = [DISPLAY_NAMES.get(name, name)]
        for key in ("A8W8", "4T", "1L@2T", "2L@2T"):
            if key in entries:
                row.append(
                    f"{100 * entries[key]['accuracy']:.1f} "
                    f"({entries[key]['speedup']:.1f}x)"
                )
            else:
                row.append("-")
        rows.append(row)
    return format_table(
        ["Model", "A8W8 (1x)", "4T", "1L@2T", "2L@2T"],
        rows,
        title="Table V -- 4T SySMT accuracy (speedup) with layers slowed to 2T",
    )
