"""Table V: 4T SySMT accuracy and speedup with layer throttling.

With four threads, collisions are more frequent and 3-/4-way collisions
reduce both operands to 4 bits, so the paper trades speedup for accuracy by
running the highest-MSE layers with two threads ("1L@2T", "2L@2T" columns).
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    baseline_point,
    save_result,
    throttle_curve_point,
)
from repro.eval.sweep import ensure_session, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "table5"


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    max_slowed: int = 2,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """4T accuracy/speedup with 0, 1 and 2 layers throttled to 2 threads."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = []
    for name in models:
        points.append(baseline_point(name))
        points.append(
            throttle_curve_point(
                name, base_threads=4, slow_threads=2, max_slowed=max_slowed,
                reorder=True,
            )
        )
    payloads = run_sweep(points, session)

    per_model: dict[str, dict[str, dict[str, float]]] = {}
    for index, name in enumerate(models):
        baseline, curve = payloads[2 * index], payloads[2 * index + 1]
        entries = {
            "4T": {
                "accuracy": curve["baseline"]["accuracy"],
                "speedup": curve["baseline"]["speedup"],
            },
            "A8W8": {"accuracy": baseline["int8"], "speedup": 1.0},
        }
        for step in curve["steps"]:
            entries[f"{step['slowed_layers']}L@2T"] = {
                "accuracy": step["accuracy"],
                "speedup": step["speedup"],
            }
        per_model[name] = entries
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, entries in result["per_model"].items():
        row = [DISPLAY_NAMES.get(name, name)]
        for key in ("A8W8", "4T", "1L@2T", "2L@2T"):
            if key in entries:
                row.append(
                    f"{100 * entries[key]['accuracy']:.1f} "
                    f"({entries[key]['speedup']:.1f}x)"
                )
            else:
                row.append("-")
        rows.append(row)
    return format_table(
        ["Model", "A8W8 (1x)", "4T", "1L@2T", "2L@2T"],
        rows,
        title="Table V -- 4T SySMT accuracy (speedup) with layers slowed to 2T",
    )
