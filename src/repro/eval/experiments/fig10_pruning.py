"""Figure 10: ResNet-18 accuracy versus 4T SySMT speedup under weight pruning.

Pruned weights are zeros, so a pruned model collides less and loses less
accuracy at four threads; but heavier pruning also lowers the model's own
baseline accuracy.  The figure traces accuracy/speedup operating points
(throttling more layers to two threads moves left) for several pruning
levels.
"""

from __future__ import annotations

import copy

from repro.eval.experiments.common import (
    baseline_point,
    get_scale,
    get_trained_model,
    save_result,
    throttle_curve_point,
)
from repro.eval.harness import SysmtHarness
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.eval.throttle import rank_layers_by_mse, throttle_layers
from repro.models.zoo import TrainedModel
from repro.pruning import PruningSchedule, iterative_magnitude_prune, sparsity_of
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig10"


def _pruned_copy(trained: TrainedModel, sparsity: float, retrain_epochs: int) -> TrainedModel:
    """Clone the trained model and prune the clone to the requested sparsity."""
    pruned = TrainedModel(
        name=trained.name,
        model=copy.deepcopy(trained.model),
        dataset=trained.dataset,
        fp32_accuracy=trained.fp32_accuracy,
        train_config=trained.train_config,
    )
    if sparsity > 0:
        schedule = PruningSchedule(
            target_sparsity=sparsity, steps=2, retrain_epochs=retrain_epochs, lr=0.01
        )
        iterative_magnitude_prune(
            pruned.model,
            pruned.dataset.train_images,
            pruned.dataset.train_labels,
            schedule,
        )
    return pruned


@point_runner("pruned_curve")
def _run_pruned_curve(ctx, point: SweepPoint) -> dict:
    """One pruning level's accuracy/speedup curve (plus achieved sparsity)."""
    model = point.model
    level = float(point.param("level"))
    max_slowed = int(point.param("max_slowed"))
    retrain_epochs = int(point.param("retrain_epochs"))
    config = get_scale(ctx.scale)
    trained = get_trained_model(model, config)

    if level == 0.0:
        # The unpruned level is exactly the Table V throttling sweep of this
        # model; share its points instead of rebuilding a harness.
        curve = ctx.evaluate(
            throttle_curve_point(
                model, base_threads=4, slow_threads=2, max_slowed=max_slowed,
                reorder=True,
            )
        )
        int8 = ctx.evaluate(baseline_point(model))["int8"]
        points = [
            {
                "slowed_layers": 0,
                "accuracy": curve["baseline"]["accuracy"],
                "speedup": curve["baseline"]["speedup"],
                "int8_accuracy": int8,
            }
        ]
        for step in curve["steps"]:
            points.append(
                {
                    "slowed_layers": step["slowed_layers"],
                    "accuracy": step["accuracy"],
                    "speedup": step["speedup"],
                    "int8_accuracy": int8,
                }
            )
        return {
            "points": points,
            "weight_sparsity": sparsity_of(trained.model),
        }

    pruned = _pruned_copy(trained, level, retrain_epochs)
    achieved = sparsity_of(pruned.model)
    harness = SysmtHarness(
        pruned,
        max_eval_images=config.eval_images,
        calibration_images=config.calibration_images,
        batch_size=config.batch_size,
    )
    try:
        baseline = harness.evaluate_nbsmt(threads=4, reorder=True, collect_stats=True)
        ranked = rank_layers_by_mse(
            baseline.layer_stats, harness.qmodel.layer_names()
        )
        points = [
            {
                "slowed_layers": 0,
                "accuracy": baseline.accuracy,
                "speedup": baseline.speedup,
                "int8_accuracy": harness.int8_accuracy,
            }
        ]
        for count in range(1, max_slowed + 1):
            if count > len(ranked):
                break
            slowed = ranked[:count]
            result, _ = throttle_layers(
                harness, base_threads=4, slow_layers=slowed, slow_threads=2,
                reorder=True,
            )
            points.append(
                {
                    "slowed_layers": count,
                    "accuracy": result.accuracy,
                    "speedup": result.speedup,
                    "int8_accuracy": harness.int8_accuracy,
                }
            )
    finally:
        harness.close()
    return {"points": points, "weight_sparsity": achieved}


def run(
    scale: str = "fast",
    model: str = "resnet18",
    pruning_levels: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    max_slowed: int = 2,
    retrain_epochs: int = 2,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Accuracy/speedup trade-off of a 4T SySMT for several pruning levels."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [
        SweepPoint.make(
            "pruned_curve", model=model, cost=4.0,
            level=float(level), max_slowed=int(max_slowed),
            retrain_epochs=int(retrain_epochs),
        )
        for level in pruning_levels
    ]
    payloads = run_sweep(points, session)

    curves: dict[str, list[dict[str, float]]] = {}
    achieved_sparsity: dict[str, float] = {}
    for level, payload in zip(pruning_levels, payloads):
        curves[f"{level:.0%}"] = payload["points"]
        achieved_sparsity[f"{level:.0%}"] = payload["weight_sparsity"]

    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "model": model,
        "curves": curves,
        "achieved_weight_sparsity": achieved_sparsity,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for level, points in result["curves"].items():
        for point in points:
            rows.append(
                (
                    level,
                    point["slowed_layers"],
                    point["speedup"],
                    100 * point["accuracy"],
                    100 * point["int8_accuracy"],
                )
            )
    return format_table(
        ["Pruning", "Layers @2T", "Speedup [x]", "4T accuracy %", "A8W8 accuracy %"],
        rows,
        float_fmt=".2f",
        title=f"Fig. 10 -- {result['model']} accuracy vs 4T speedup under pruning",
    )
