"""Figure 1: utilization of 8-bit MAC units during CNN inference.

The paper classifies every MAC of five quantized CNNs into fully utilized
(8b-8b), partially utilized (4b-8b / 8b-4b / 4b-4b) and idle (a zero
operand), and reports that on average only ~20% of MAC units are fully
utilized while ~60% are idle.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.macs import mac_utilization_breakdown
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig1"

#: Approximate average fractions the paper reports (Fig. 1 / Section II).
PAPER_AVERAGE = {"full": 0.20, "partial": 0.20, "idle": 0.60}


def run(
    scale: str = "fast", models: tuple[str, ...] = PAPER_MODEL_NAMES
) -> dict:
    """Measure the idle/partial/full MAC breakdown for each model."""
    per_model: dict[str, dict[str, float]] = {}
    for name in models:
        harness = get_harness(name, scale)
        breakdown = mac_utilization_breakdown(harness)
        per_model[name] = breakdown.fractions

    average = {
        key: float(np.mean([fractions[key] for fractions in per_model.values()]))
        for key in ("full", "partial", "idle")
    }
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": scale,
        "per_model": per_model,
        "average": average,
        "paper_average": PAPER_AVERAGE,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, fractions in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                100 * fractions["full"],
                100 * fractions["partial"],
                100 * fractions["idle"],
            )
        )
    rows.append(
        (
            "Average",
            100 * result["average"]["full"],
            100 * result["average"]["partial"],
            100 * result["average"]["idle"],
        )
    )
    return format_table(
        ["Model", "Utilized (8b-8b) %", "Partially utilized %", "Idle %"],
        rows,
        float_fmt=".1f",
        title="Fig. 1 -- MAC utilization breakdown during CNN inference",
    )
