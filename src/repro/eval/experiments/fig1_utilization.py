"""Figure 1: utilization of 8-bit MAC units during CNN inference.

The paper classifies every MAC of five quantized CNNs into fully utilized
(8b-8b), partially utilized (4b-8b / 8b-4b / 4b-4b) and idle (a zero
operand), and reports that on average only ~20% of MAC units are fully
utilized while ~60% are idle.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.macs import mac_utilization_breakdown
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig1"

#: Approximate average fractions the paper reports (Fig. 1 / Section II).
PAPER_AVERAGE = {"full": 0.20, "partial": 0.20, "idle": 0.60}


@point_runner("mac_breakdown")
def _run_mac_breakdown(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    return mac_utilization_breakdown(harness).fractions


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Measure the idle/partial/full MAC breakdown for each model."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [SweepPoint.make("mac_breakdown", model=name) for name in models]
    payloads = run_sweep(points, session)
    per_model = dict(zip(models, payloads))

    average = {
        key: float(np.mean([fractions[key] for fractions in per_model.values()]))
        for key in ("full", "partial", "idle")
    }
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
        "average": average,
        "paper_average": PAPER_AVERAGE,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, fractions in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                100 * fractions["full"],
                100 * fractions["partial"],
                100 * fractions["idle"],
            )
        )
    rows.append(
        (
            "Average",
            100 * result["average"]["full"],
            100 * result["average"]["partial"],
            100 * result["average"]["idle"],
        )
    )
    return format_table(
        ["Model", "Utilized (8b-8b) %", "Partially utilized %", "Idle %"],
        rows,
        float_fmt=".1f",
        title="Fig. 1 -- MAC utilization breakdown during CNN inference",
    )
