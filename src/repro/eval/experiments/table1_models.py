"""Table I: evaluated CNN models -- FP32 vs INT8 accuracy and MAC counts.

The paper's Table I shows that the simple 8-bit min-max quantization keeps
accuracy within a fraction of a percent of FP32 for every model, and lists
the convolution and fully-connected MAC counts per image.
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    baseline_point,
    get_trained_model,
    save_result,
)
from repro.eval.macs import model_mac_counts
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "table1"


@point_runner("model_macs")
def _run_model_macs(ctx, point: SweepPoint) -> dict:
    trained = get_trained_model(point.model, ctx.scale)
    macs = model_mac_counts(
        trained.model, image_size=trained.dataset.config.image_size
    )
    return {**macs, "parameters": trained.model.num_parameters()}


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Measure FP32 and INT8 accuracy plus MAC counts for each zoo model."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = []
    for name in models:
        points.append(baseline_point(name))
        points.append(SweepPoint.make("model_macs", model=name, cost=0.2))
    payloads = run_sweep(points, session)

    rows: dict[str, dict[str, float]] = {}
    for index, name in enumerate(models):
        baseline, macs = payloads[2 * index], payloads[2 * index + 1]
        rows[name] = {
            "fp32_accuracy": baseline["fp32"],
            "int8_accuracy": baseline["int8"],
            "conv_macs": macs["conv"],
            "fc_macs": macs["fc"],
            "parameters": macs["parameters"],
        }
    result = {"experiment": EXPERIMENT_ID, "scale": session.scale, "models": rows}
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, values in result["models"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                100 * values["fp32_accuracy"],
                100 * values["int8_accuracy"],
                f"{values['conv_macs'] / 1e6:.1f}M",
                f"{values['fc_macs'] / 1e3:.1f}K",
            )
        )
    return format_table(
        ["Model", "FP32 top-1 %", "INT8 top-1 %", "CONV MACs", "FC MACs"],
        rows,
        float_fmt=".2f",
        title="Table I -- evaluated models: accuracy and MAC operations",
    )
