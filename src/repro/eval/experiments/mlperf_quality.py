"""MLPerf quality targets with a 2T SySMT (Section V-B, "2T SySMT: MLPerf").

ResNet-50 must stay within 99% of its reference accuracy and MobileNet-v1
within 98%.  The paper meets both with a 2-threaded SySMT: ResNet-50 by
running two high-MSE layers with one thread (1.97x speedup), MobileNet-v1 by
running the depthwise convolutions with one thread (1.94x speedup).
"""

from __future__ import annotations

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.mlperf import QUALITY_TARGETS, run_quality_target
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "mlperf"


@point_runner("mlperf_target")
def _run_mlperf_target(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    target = point.param("target_fraction")
    outcome = run_quality_target(
        harness, float(target) if target is not None else None
    )
    return {
        "target_fraction": outcome.target_fraction,
        "reference_accuracy": outcome.reference_accuracy,
        "target_accuracy": outcome.target_accuracy,
        "achieved_accuracy": outcome.achieved_accuracy,
        "speedup": outcome.speedup,
        "slowed_layers": outcome.slowed_layers,
        "meets_target": float(outcome.meets_target),
    }


def run(
    scale: str = "fast",
    models: tuple[str, ...] = ("resnet50", "mobilenet_v1"),
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Throttled 2T SySMT runs against the MLPerf quality targets."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [
        SweepPoint.make(
            "mlperf_target", model=name, cost=3.0,
            target_fraction=QUALITY_TARGETS.get(name),
        )
        for name in models
    ]
    payloads = run_sweep(points, session)
    per_model = dict(zip(models, payloads))
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, row in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                f"{100 * row['target_fraction']:.0f}%",
                100 * row["reference_accuracy"],
                100 * row["achieved_accuracy"],
                row["speedup"],
                int(row["slowed_layers"]),
                "yes" if row["meets_target"] else "no",
            )
        )
    return format_table(
        [
            "Model",
            "Quality target",
            "Reference top-1 %",
            "2T SySMT top-1 %",
            "Speedup [x]",
            "Layers @1T",
            "Meets target",
        ],
        rows,
        float_fmt=".2f",
        title="MLPerf quality targets with a throttled 2T SySMT",
    )
