"""Table IV: 2T SySMT accuracy versus static 4-bit PTQ baselines (LBQ, ACIQ).

A 2-threaded SySMT occasionally reduces activations (or weights, for
ResNet-50) to 4 bits on the fly; the comparison point is a model whose
selected operand is statically quantized to 4 bits with carefully chosen
parameters.  The paper reports that SySMT (with reordering) outperforms both
LBQ and ACIQ at the corresponding 4/8 operating points.
"""

from __future__ import annotations

from repro.eval.experiments.common import (
    baseline_point,
    get_harness,
    nbsmt_point,
    save_result,
)
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES
from repro.quant.baselines import aciq_clip_engine, lbq_search_engine
from repro.utils.tables import format_table

EXPERIMENT_ID = "table4"

#: Models compared in the paper's Table IV and their 4-bit operand (A/W bits).
TABLE_IV_CONFIG: dict[str, tuple[int, int]] = {
    "alexnet": (4, 8),
    "resnet18": (4, 8),
    "resnet50": (8, 4),
    "densenet121": (4, 8),
}


@point_runner("ptq")
def _run_ptq(ctx, point: SweepPoint) -> dict:
    harness = get_harness(point.model, ctx.scale)
    act_bits = int(point.param("act_bits"))
    wgt_bits = int(point.param("wgt_bits"))
    if point.param("method") == "lbq":
        engine = lbq_search_engine(act_bits, wgt_bits)
    else:
        engine = aciq_clip_engine(act_bits, wgt_bits)
    previous_engine = harness.qmodel.default_engine
    harness.qmodel.set_engine(engine)
    try:
        accuracy = harness.qmodel.evaluate(
            harness.eval_images, harness.eval_labels,
            batch_size=harness.batch_size,
        )
    finally:
        harness.qmodel.set_engine(previous_engine)
    return {"accuracy": accuracy}


def run(
    scale: str = "fast",
    models: tuple[str, ...] | None = None,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """SySMT (2T, reordered) vs ACIQ-style vs LBQ-style accuracy per model."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    models = models or tuple(TABLE_IV_CONFIG)
    points = []
    for name in models:
        act_bits, wgt_bits = TABLE_IV_CONFIG.get(name, (4, 8))
        points.append(baseline_point(name))
        points.append(
            nbsmt_point(name, threads=2, reorder=True, collect_stats=False)
        )
        for method in ("lbq", "aciq"):
            points.append(
                SweepPoint.make(
                    "ptq", model=name, method=method,
                    act_bits=act_bits, wgt_bits=wgt_bits,
                )
            )
    payloads = run_sweep(points, session)

    per_model: dict[str, dict[str, float]] = {}
    for index, name in enumerate(models):
        act_bits, wgt_bits = TABLE_IV_CONFIG.get(name, (4, 8))
        baseline, sysmt, lbq, aciq = payloads[4 * index : 4 * index + 4]
        per_model[name] = {
            "fp32": baseline["fp32"],
            "a_bits": act_bits,
            "w_bits": wgt_bits,
            "sysmt": sysmt["accuracy"],
            "lbq": lbq["accuracy"],
            "aciq": aciq["accuracy"],
        }
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, row in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                f"{int(row['a_bits'])}/{int(row['w_bits'])}",
                100 * row["sysmt"],
                100 * row["lbq"],
                100 * row["aciq"],
                100 * row["fp32"],
            )
        )
    return format_table(
        ["Model", "A/W bits", "SySMT 2T %", "LBQ-style %", "ACIQ-style %", "FP32 %"],
        rows,
        float_fmt=".1f",
        title="Table IV -- 2T SySMT vs static 4-bit PTQ baselines",
    )
