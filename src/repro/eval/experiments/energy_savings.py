"""Energy savings of SySMT over the conventional SA (Section V-A).

The paper reports that SySMT saves on average ~33% (2 threads) and ~35%
(4 threads) of the energy of the five CNNs: SySMT finishes each layer T times
faster at a power that grows sub-proportionally with utilization (Eq. (6)).
"""

from __future__ import annotations

import numpy as np

from repro.eval.energy import energy_report
from repro.eval.experiments.common import (
    get_harness,
    nbsmt_point,
    payload_layer_stats,
    save_result,
)
from repro.eval.harness import NBSMTRunResult
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "energy"

#: Average savings the paper reports.
PAPER_AVERAGE_SAVING = {2: 0.33, 4: 0.35}


@point_runner("energy")
def _run_energy(ctx, point: SweepPoint) -> dict:
    threads = int(point.param("threads"))
    payload = ctx.evaluate(
        nbsmt_point(point.model, threads=threads, reorder=True,
                    collect_stats=True)
    )
    harness = get_harness(point.model, ctx.scale)
    run_result = NBSMTRunResult(
        accuracy=payload["accuracy"],
        threads={name: int(count) for name, count in payload["threads"].items()},
        policy=payload["policy"],
        reordered=bool(payload["reordered"]),
        layer_stats=payload_layer_stats(payload),
        speedup=payload["speedup"],
    )
    report = energy_report(harness, run_result, threads=threads)
    return {
        "saving": report.saving,
        "baseline_mj": report.baseline_mj,
        "sysmt_mj": report.sysmt_mj,
    }


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    thread_counts: tuple[int, ...] = (2, 4),
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Per-model energy savings for 2- and 4-threaded SySMT."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [
        SweepPoint.make("energy", model=name, threads=int(threads), cost=2.0)
        for name in models
        for threads in thread_counts
    ]
    payloads = run_sweep(points, session)

    per_model: dict[str, dict[str, float]] = {}
    cursor = 0
    for name in models:
        row: dict[str, float] = {}
        for threads in thread_counts:
            report = payloads[cursor]
            cursor += 1
            row[f"saving_{threads}t"] = report["saving"]
            row[f"baseline_mj_{threads}t"] = report["baseline_mj"]
            row[f"sysmt_mj_{threads}t"] = report["sysmt_mj"]
        per_model[name] = row

    averages = {
        f"{threads}t": float(
            np.mean([row[f"saving_{threads}t"] for row in per_model.values()])
        )
        for threads in thread_counts
    }
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "per_model": per_model,
        "average_saving": averages,
        "paper_average_saving": {str(k): v for k, v in PAPER_AVERAGE_SAVING.items()},
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, row in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                row.get("baseline_mj_2t", 0.0),
                100 * row.get("saving_2t", 0.0),
                100 * row.get("saving_4t", 0.0),
            )
        )
    rows.append(
        (
            "Average",
            float("nan"),
            100 * result["average_saving"].get("2t", 0.0),
            100 * result["average_saving"].get("4t", 0.0),
        )
    )
    return format_table(
        ["Model", "Baseline energy [mJ]", "2T saving %", "4T saving %"],
        rows,
        float_fmt=".2f",
        title="Energy savings of SySMT over the conventional SA (Eq. (6))",
    )
