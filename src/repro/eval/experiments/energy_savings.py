"""Energy savings of SySMT over the conventional SA (Section V-A).

The paper reports that SySMT saves on average ~33% (2 threads) and ~35%
(4 threads) of the energy of the five CNNs: SySMT finishes each layer T times
faster at a power that grows sub-proportionally with utilization (Eq. (6)).
"""

from __future__ import annotations

import numpy as np

from repro.eval.energy import energy_report
from repro.eval.experiments.common import get_harness, save_result
from repro.models.zoo import DISPLAY_NAMES, PAPER_MODEL_NAMES
from repro.utils.tables import format_table

EXPERIMENT_ID = "energy"

#: Average savings the paper reports.
PAPER_AVERAGE_SAVING = {2: 0.33, 4: 0.35}


def run(
    scale: str = "fast",
    models: tuple[str, ...] = PAPER_MODEL_NAMES,
    thread_counts: tuple[int, ...] = (2, 4),
) -> dict:
    """Per-model energy savings for 2- and 4-threaded SySMT."""
    per_model: dict[str, dict[str, float]] = {}
    for name in models:
        harness = get_harness(name, scale)
        row: dict[str, float] = {}
        for threads in thread_counts:
            run_result = harness.evaluate_nbsmt(
                threads=threads, reorder=True, collect_stats=True
            )
            report = energy_report(harness, run_result, threads=threads)
            row[f"saving_{threads}t"] = report.saving
            row[f"baseline_mj_{threads}t"] = report.baseline_mj
            row[f"sysmt_mj_{threads}t"] = report.sysmt_mj
        per_model[name] = row

    averages = {
        f"{threads}t": float(
            np.mean([row[f"saving_{threads}t"] for row in per_model.values()])
        )
        for threads in thread_counts
    }
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": scale,
        "per_model": per_model,
        "average_saving": averages,
        "paper_average_saving": {str(k): v for k, v in PAPER_AVERAGE_SAVING.items()},
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    for name, row in result["per_model"].items():
        rows.append(
            (
                DISPLAY_NAMES.get(name, name),
                row.get("baseline_mj_2t", 0.0),
                100 * row.get("saving_2t", 0.0),
                100 * row.get("saving_4t", 0.0),
            )
        )
    rows.append(
        (
            "Average",
            float("nan"),
            100 * result["average_saving"].get("2t", 0.0),
            100 * result["average_saving"].get("4t", 0.0),
        )
    )
    return format_table(
        ["Model", "Baseline energy [mJ]", "2T saving %", "4T saving %"],
        rows,
        float_fmt=".2f",
        title="Energy savings of SySMT over the conventional SA (Eq. (6))",
    )
