"""Table II: design parameters, power and area of the 16x16 arrays.

The area/power models are calibrated to the paper's published values, so this
experiment reproduces the table (and the derived area ratios the abstract
quotes: 2T is ~1.4x the conventional SA area, 4T is ~2.5x) and checks the
throughput and power-vs-utilization relationships the energy analysis uses.
"""

from __future__ import annotations

from repro.eval.experiments.common import save_result
from repro.eval.sweep import SweepPoint, ensure_session, point_runner, run_sweep
from repro.hw.area import AreaModel
from repro.hw.power import PowerModel
from repro.utils.tables import format_table

EXPERIMENT_ID = "table2"

#: Published Table II values for comparison.
PAPER_TABLE_II = {
    "sa": {"throughput_gmacs": 256, "power_mw_80": 320, "area_mm2": 0.220},
    "sysmt_2t": {"throughput_gmacs": 512, "power_mw_80": 429, "area_mm2": 0.317},
    "sysmt_4t": {"throughput_gmacs": 1024, "power_mw_80": 723, "area_mm2": 0.545},
}


@point_runner("hw_configs")
def _run_hw_configs(ctx, point: SweepPoint) -> dict:
    rows = int(point.param("rows"))
    cols = int(point.param("cols"))
    configs = {"sa": 1, "sysmt_2t": 2, "sysmt_4t": 4}
    table: dict[str, dict[str, float]] = {}
    for key, threads in configs.items():
        area = AreaModel(rows, cols, threads)
        power = PowerModel(rows, cols, threads)
        table[key] = {
            "threads": threads,
            "throughput_gmacs": power.throughput_gmacs,
            "power_mw_80": power.power_mw(0.8),
            "power_mw_40": power.power_mw(0.4),
            "area_mm2": area.total_area_mm2,
            "pe_um2": area.pe_area_um2,
            "mac_um2": area.mac_area_um2,
            "area_ratio": area.area_ratio_to_baseline(),
        }
    return table


def run(
    scale: str = "fast",
    rows: int = 16,
    cols: int = 16,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Evaluate the hardware models for the three array configurations."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [
        SweepPoint.make("hw_configs", rows=int(rows), cols=int(cols), cost=0.1)
    ]
    payloads = run_sweep(points, session)
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "array": {"rows": rows, "cols": cols},
        "configs": payloads[0],
        "paper": PAPER_TABLE_II,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    labels = {"sa": "SA", "sysmt_2t": "SySMT 2T", "sysmt_4t": "SySMT 4T"}
    rows = []
    for key, values in result["configs"].items():
        paper = result["paper"][key]
        rows.append(
            (
                labels[key],
                values["throughput_gmacs"],
                values["power_mw_80"],
                paper["power_mw_80"],
                values["area_mm2"],
                paper["area_mm2"],
                values["area_ratio"],
            )
        )
    return format_table(
        [
            "Config",
            "Throughput [GMACS]",
            "Power@80% [mW]",
            "Paper power",
            "Area [mm^2]",
            "Paper area",
            "Area ratio",
        ],
        rows,
        float_fmt=".3f",
        title="Table II -- design parameters, power and area (16x16 arrays)",
    )
