"""One module per table/figure of the paper's evaluation section.

Every experiment module exposes ``run(scale=...)`` returning a plain
dictionary of results and ``format_result(result)`` rendering the same rows
or series the paper reports.  The benchmark harness under ``benchmarks/``
calls these and prints the tables; ``EXPERIMENTS.md`` records paper-vs-
measured values.
"""

from repro.eval.experiments import (
    energy_savings,
    fig1_utilization,
    fig7_robustness,
    fig8_mse,
    fig9_utilization_gain,
    fig10_pruning,
    mlperf_quality,
    table1_models,
    table2_hardware,
    table3_policies,
    table4_ptq,
    table5_4threads,
)

#: Experiment registry keyed by the paper's table/figure identifier.
EXPERIMENTS = {
    "fig1": fig1_utilization,
    "table1": table1_models,
    "table2": table2_hardware,
    "fig7": fig7_robustness,
    "table3": table3_policies,
    "fig8": fig8_mse,
    "table4": table4_ptq,
    "fig9": fig9_utilization_gain,
    "table5": table5_4threads,
    "fig10": fig10_pruning,
    "energy": energy_savings,
    "mlperf": mlperf_quality,
}

__all__ = ["EXPERIMENTS"]
