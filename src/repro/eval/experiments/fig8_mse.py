"""Figure 8: per-layer MSE versus activation sparsity (GoogLeNet, 2T SySMT).

Each layer is one point: its activation sparsity against the mean squared
error NB-SMT injects into its output, with and without activation reordering.
The paper's findings: MSE and sparsity are anti-correlated, and reordering
lowers every layer's MSE.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments.common import get_harness, save_result
from repro.eval.mse import mse_sparsity_correlation, per_layer_mse
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig8"


def run(scale: str = "fast", model: str = "googlenet", threads: int = 2) -> dict:
    """Per-layer (sparsity, MSE) series with and without reordering."""
    harness = get_harness(model, scale)
    without = per_layer_mse(harness, threads=threads, reorder=False)
    with_reorder = per_layer_mse(harness, threads=threads, reorder=True)

    def serialize(points):
        return [
            {
                "layer": point.layer,
                "sparsity": point.sparsity,
                "mse": point.mse,
                "relative_mse": point.relative_mse,
            }
            for point in points
        ]

    mean_without = float(np.mean([p.relative_mse for p in without])) if without else 0.0
    mean_with = float(np.mean([p.relative_mse for p in with_reorder])) if with_reorder else 0.0
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": scale,
        "model": model,
        "threads": threads,
        "without_reorder": serialize(without),
        "with_reorder": serialize(with_reorder),
        "correlation_without": mse_sparsity_correlation(without),
        "correlation_with": mse_sparsity_correlation(with_reorder),
        "mean_relative_mse_without": mean_without,
        "mean_relative_mse_with": mean_with,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    with_by_layer = {point["layer"]: point for point in result["with_reorder"]}
    for point in result["without_reorder"]:
        reordered = with_by_layer.get(point["layer"], {})
        rows.append(
            (
                point["layer"],
                100 * point["sparsity"],
                point["relative_mse"],
                reordered.get("relative_mse", float("nan")),
            )
        )
    table = format_table(
        ["Layer", "Act. sparsity %", "rel. MSE (w/o reorder)", "rel. MSE (w/ reorder)"],
        rows,
        float_fmt=".4f",
        title=f"Fig. 8 -- {result['model']} per-layer MSE vs sparsity (2T SySMT)",
    )
    summary = (
        f"\nsparsity-MSE correlation: w/o reorder {result['correlation_without']:.3f}, "
        f"w/ reorder {result['correlation_with']:.3f}\n"
        f"mean relative MSE: w/o {result['mean_relative_mse_without']:.4f}, "
        f"w/ {result['mean_relative_mse_with']:.4f}"
    )
    return table + summary
