"""Figure 8: per-layer MSE versus activation sparsity (GoogLeNet, 2T SySMT).

Each layer is one point: its activation sparsity against the mean squared
error NB-SMT injects into its output, with and without activation reordering.
The paper's findings: MSE and sparsity are anti-correlated, and reordering
lowers every layer's MSE.

Declares the same two NB-SMT evaluation points as Fig. 9, so a suite run
computes the underlying evaluations once for both figures.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments.common import (
    nbsmt_point,
    payload_layer_stats,
    save_result,
)
from repro.eval.mse import LayerMsePoint, mse_sparsity_correlation
from repro.eval.sweep import ensure_session, run_sweep
from repro.utils.tables import format_table

EXPERIMENT_ID = "fig8"


def _mse_points(payload: dict) -> list[LayerMsePoint]:
    """Per-layer (sparsity, MSE) points of one ``nbsmt`` payload."""
    points = []
    for name, stats in payload_layer_stats(payload).items():
        if stats.mac_total == 0:
            continue
        points.append(
            LayerMsePoint(
                layer=name,
                sparsity=stats.activation_sparsity,
                mse=stats.mse,
                relative_mse=stats.relative_mse,
            )
        )
    return points


def run(
    scale: str = "fast",
    model: str = "googlenet",
    threads: int = 2,
    *,
    workers: int = 1,
    resume: bool = False,
    session=None,
) -> dict:
    """Per-layer (sparsity, MSE) series with and without reordering."""
    session = ensure_session(session, scale, workers=workers, resume=resume)
    points = [
        nbsmt_point(model, threads=threads, reorder=False, collect_stats=True),
        nbsmt_point(model, threads=threads, reorder=True, collect_stats=True),
    ]
    payloads = run_sweep(points, session)
    without = _mse_points(payloads[0])
    with_reorder = _mse_points(payloads[1])

    def serialize(points):
        return [
            {
                "layer": point.layer,
                "sparsity": point.sparsity,
                "mse": point.mse,
                "relative_mse": point.relative_mse,
            }
            for point in points
        ]

    mean_without = float(np.mean([p.relative_mse for p in without])) if without else 0.0
    mean_with = float(np.mean([p.relative_mse for p in with_reorder])) if with_reorder else 0.0
    result = {
        "experiment": EXPERIMENT_ID,
        "scale": session.scale,
        "model": model,
        "threads": threads,
        "without_reorder": serialize(without),
        "with_reorder": serialize(with_reorder),
        "correlation_without": mse_sparsity_correlation(without),
        "correlation_with": mse_sparsity_correlation(with_reorder),
        "mean_relative_mse_without": mean_without,
        "mean_relative_mse_with": mean_with,
    }
    save_result(EXPERIMENT_ID, result)
    return result


def format_result(result: dict) -> str:
    rows = []
    with_by_layer = {point["layer"]: point for point in result["with_reorder"]}
    for point in result["without_reorder"]:
        reordered = with_by_layer.get(point["layer"], {})
        rows.append(
            (
                point["layer"],
                100 * point["sparsity"],
                point["relative_mse"],
                reordered.get("relative_mse", float("nan")),
            )
        )
    table = format_table(
        ["Layer", "Act. sparsity %", "rel. MSE (w/o reorder)", "rel. MSE (w/ reorder)"],
        rows,
        float_fmt=".4f",
        title=f"Fig. 8 -- {result['model']} per-layer MSE vs sparsity (2T SySMT)",
    )
    summary = (
        f"\nsparsity-MSE correlation: w/o reorder {result['correlation_without']:.3f}, "
        f"w/ reorder {result['correlation_with']:.3f}\n"
        f"mean relative MSE: w/o {result['mean_relative_mse_without']:.4f}, "
        f"w/ {result['mean_relative_mse_with']:.4f}"
    )
    return table + summary
