"""Experiment drivers reproducing the paper's evaluation section.

:mod:`repro.eval.harness` wires a trained zoo model into the quantized
executor with a chosen NB-SMT configuration; the modules around it implement
the individual measurements (MAC utilization breakdown, per-layer MSE, layer
throttling, energy), and :mod:`repro.eval.experiments` contains one module
per paper table/figure.
"""

from repro.eval.harness import NBSMTRunResult, SysmtHarness
from repro.eval.macs import mac_utilization_breakdown, model_mac_counts
from repro.eval.mse import per_layer_mse
from repro.eval.throttle import ThrottlePlan, plan_speedup, rank_layers_by_mse, throttle_to_accuracy
from repro.eval.energy import energy_report
from repro.eval.mlperf import meets_quality_target

__all__ = [
    "SysmtHarness",
    "NBSMTRunResult",
    "mac_utilization_breakdown",
    "model_mac_counts",
    "per_layer_mse",
    "ThrottlePlan",
    "rank_layers_by_mse",
    "plan_speedup",
    "throttle_to_accuracy",
    "energy_report",
    "meets_quality_target",
]
