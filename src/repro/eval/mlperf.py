"""MLPerf-style quality targets (the MLPerf paragraph of Section V-B).

MLPerf defines per-model quality targets as a fraction of the reference
accuracy: 99% for ResNet-50 and 98% for MobileNet-v1.  The paper meets both
with a 2-threaded SySMT by slowing down a small number of high-MSE layers
(ResNet-50) or running depthwise convolutions with one thread (MobileNet-v1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.harness import SysmtHarness
from repro.eval.throttle import throttle_to_accuracy

#: MLPerf quality targets as a fraction of the reference (FP32) accuracy.
QUALITY_TARGETS: dict[str, float] = {
    "resnet50": 0.99,
    "mobilenet_v1": 0.98,
}


@dataclass
class MLPerfResult:
    """Outcome of one MLPerf quality-target run."""

    model: str
    target_fraction: float
    reference_accuracy: float
    achieved_accuracy: float
    speedup: float
    slowed_layers: int

    @property
    def target_accuracy(self) -> float:
        return self.target_fraction * self.reference_accuracy

    @property
    def meets_target(self) -> bool:
        return self.achieved_accuracy >= self.target_accuracy


def meets_quality_target(accuracy: float, reference: float, fraction: float) -> bool:
    """Whether an accuracy meets an MLPerf-style quality target."""
    return accuracy >= fraction * reference


def run_quality_target(
    harness: SysmtHarness,
    target_fraction: float | None = None,
    threads: int = 2,
    policy: str | None = None,
    max_slowed: int = 4,
) -> MLPerfResult:
    """Throttle a 2-threaded SySMT run until the MLPerf quality target is met.

    At most ``max_slowed`` layers are dropped to a single thread (the paper
    needs two for ResNet-50); the search stops earlier once the target is met.
    """
    name = harness.trained.name
    if target_fraction is None:
        target_fraction = QUALITY_TARGETS.get(name, 0.99)
    reference = harness.fp32_accuracy
    target = target_fraction * reference
    plans = throttle_to_accuracy(
        harness,
        target_accuracy=target,
        base_threads=threads,
        slow_threads=1,
        policy=policy,
        reorder=True,
        max_slowed=max_slowed,
    )
    final = plans[-1]
    return MLPerfResult(
        model=name,
        target_fraction=target_fraction,
        reference_accuracy=reference,
        achieved_accuracy=final.accuracy,
        speedup=final.speedup,
        slowed_layers=final.num_slowed,
    )
