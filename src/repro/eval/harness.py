"""Wiring between the model zoo, the quantizer and the NB-SMT engines.

:class:`SysmtHarness` owns everything a single model's experiments need:
the calibration result (activation scales, BN recalibration, reordering
statistics), the quantized-model wrapper, the reordering permutations, and
helpers to evaluate accuracy under a chosen engine / thread assignment while
collecting per-layer NB-SMT statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import NBSMTEngine
from repro.core.policies import PackingPolicy, default_policy_for, get_policy
from repro.core.smt import SMTStatistics
from repro.models.zoo import TrainedModel
from repro.quant.calibration import CalibrationResult, calibrate_model
from repro.quant.engine import ExactEngine
from repro.quant.qmodel import QuantConfig, QuantizedModel
from repro.systolic.reorder import compute_reorder_permutation


@dataclass
class NBSMTRunResult:
    """Outcome of one NB-SMT evaluation run."""

    accuracy: float
    threads: dict[str, int]
    policy: str
    reordered: bool
    layer_stats: dict[str, SMTStatistics] = field(default_factory=dict)
    speedup: float = 1.0

    def mean_utilization_gain(self) -> float:
        gains = [stats.utilization_gain for stats in self.layer_stats.values()]
        return float(np.mean(gains)) if gains else 1.0


class SysmtHarness:
    """Per-model experiment harness.

    Parameters
    ----------
    trained:
        A :class:`~repro.models.zoo.TrainedModel`.
    eval_images, eval_labels:
        Evaluation set; defaults to (a slice of) the dataset's validation
        split.
    max_eval_images:
        Cap on the evaluation-set size (NB-SMT functional simulation is a few
        times more expensive than plain quantized inference).
    calibration_images:
        Number of training images used by the statistics-gathering pass.
    """

    def __init__(
        self,
        trained: TrainedModel,
        eval_images: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
        max_eval_images: int = 256,
        calibration_images: int = 256,
        batch_size: int = 64,
        quant_config: QuantConfig | None = None,
    ):
        self.trained = trained
        dataset = trained.dataset
        if eval_images is None or eval_labels is None:
            eval_images = dataset.val_images
            eval_labels = dataset.val_labels
        self.eval_images = eval_images[:max_eval_images]
        self.eval_labels = eval_labels[:max_eval_images]
        self.batch_size = batch_size

        self.calibration: CalibrationResult = calibrate_model(
            trained.model,
            dataset.calibration_batch(calibration_images),
            batch_size=batch_size,
        )
        self.qmodel = QuantizedModel(
            trained.model, self.calibration, config=quant_config
        )
        self.default_policy: PackingPolicy = default_policy_for(trained.name)
        self._fp32_accuracy: float | None = None
        self._int8_accuracy: float | None = None
        self._layer_macs: dict[str, int] | None = None
        self._reorder_cache: dict[int, dict[str, np.ndarray]] = {}

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Restore the wrapped model's floating-point execution."""
        self.qmodel.remove()

    def __enter__(self) -> "SysmtHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reference accuracies --------------------------------------------------
    @property
    def fp32_accuracy(self) -> float:
        """Floating-point accuracy on the harness evaluation set."""
        if self._fp32_accuracy is None:
            from repro.nn.train import evaluate_accuracy

            with self.qmodel.float_execution():
                self._fp32_accuracy = evaluate_accuracy(
                    self.trained.model,
                    self.eval_images,
                    self.eval_labels,
                    batch_size=self.batch_size,
                )
        return self._fp32_accuracy

    @property
    def int8_accuracy(self) -> float:
        """8-bit (A8W8) accuracy -- the paper's quantized baseline."""
        if self._int8_accuracy is None:
            self.qmodel.set_engine(ExactEngine())
            self._int8_accuracy = self.qmodel.evaluate(
                self.eval_images, self.eval_labels, batch_size=self.batch_size
            )
        return self._int8_accuracy

    # -- reordering ------------------------------------------------------------
    def reorder_permutations(self, threads: int = 2) -> dict[str, np.ndarray]:
        """Per-layer K-dimension permutations from the calibration statistics."""
        if threads in self._reorder_cache:
            return self._reorder_cache[threads]
        permutations: dict[str, np.ndarray] = {}
        for name in self.qmodel.layer_names():
            stats = self.calibration.column_stats.get(name)
            if stats is None:
                continue
            layer_threads = max(self.qmodel.layers[name].context.threads, threads)
            permutations[name] = compute_reorder_permutation(stats, layer_threads)
        self._reorder_cache[threads] = permutations
        return permutations

    def clear_permutations(self) -> None:
        self.qmodel.set_permutations({name: None for name in self.qmodel.layer_names()})

    # -- NB-SMT evaluation ----------------------------------------------------------
    def evaluate_nbsmt(
        self,
        threads: int | dict[str, int] = 2,
        policy: PackingPolicy | str | None = None,
        reorder: bool = False,
        collect_stats: bool = True,
        workers: int = 1,
        engine: NBSMTEngine | None = None,
    ) -> NBSMTRunResult:
        """Accuracy (and per-layer statistics) of an NB-SMT execution.

        ``workers > 1`` shards the evaluation images across a fork-based
        process pool (see :mod:`repro.eval.parallel`); the per-layer
        statistics of all shards are merged back into the returned result,
        so the outcome is identical to a serial run.  ``engine`` optionally
        supplies a pre-configured engine (for benchmarking alternative
        engine configurations); it must use the requested policy.
        """
        policy = policy or self.default_policy
        policy_obj = get_policy(policy) if isinstance(policy, str) else policy
        if engine is None:
            engine = NBSMTEngine(policy_obj, collect_stats=collect_stats)

        # A harness may be evaluated again after close() (e.g. when the
        # bounded harness cache evicted it mid-sweep); re-install the hooks
        # so the sharded path below never runs the pristine float model.
        self.qmodel.ensure_installed()
        self.qmodel.set_threads(threads)
        if reorder:
            base_threads = threads if isinstance(threads, int) else 2
            self.qmodel.set_permutations(self.reorder_permutations(base_threads))
        else:
            self.clear_permutations()
        self.qmodel.set_engine(engine)
        self.qmodel.clear_stats()

        if workers > 1:
            from repro.eval.parallel import evaluate_sharded

            accuracy = evaluate_sharded(
                self.qmodel,
                self.eval_images,
                self.eval_labels,
                batch_size=self.batch_size,
                workers=workers,
                engine=engine,
            )
        else:
            accuracy = self.qmodel.evaluate(
                self.eval_images, self.eval_labels, batch_size=self.batch_size
            )
        assignment = self.qmodel.thread_assignment()
        return NBSMTRunResult(
            accuracy=accuracy,
            threads=assignment,
            policy=policy_obj.name,
            reordered=reorder,
            layer_stats=dict(engine.layer_stats),
            speedup=self.speedup_for(assignment),
        )

    # -- performance model ------------------------------------------------------------
    def layer_mac_counts(self) -> dict[str, int]:
        """MAC operations per NB-SMT-eligible layer over the evaluation set."""
        if self._layer_macs is not None:
            return self._layer_macs
        previous_engine = self.qmodel.default_engine
        self.qmodel.set_engine(ExactEngine())
        self.qmodel.clear_stats()
        probe_batch = min(16, self.eval_images.shape[0])
        self.qmodel.forward(self.eval_images[:probe_batch])
        stats = self.qmodel.collect_stats()
        scale = self.eval_images.shape[0] / probe_batch
        self._layer_macs = {
            name: int(values.get("macs", 0.0) * scale) for name, values in stats.items()
        }
        self.qmodel.set_engine(previous_engine)
        self.qmodel.clear_stats()
        return self._layer_macs

    def speedup_for(self, assignment: dict[str, int]) -> float:
        """Whole-model speedup of a per-layer thread assignment (Section V-B).

        Every layer's execution time is proportional to its MAC count divided
        by the thread count it runs with; the conventional SA runs every layer
        with one thread.
        """
        macs = self.layer_mac_counts()
        if not macs:
            return 1.0
        baseline_time = sum(macs.values())
        smt_time = sum(
            count / max(assignment.get(name, 1), 1) for name, count in macs.items()
        )
        if smt_time == 0:
            return 1.0
        return baseline_time / smt_time
