"""MAC counting and MAC-utilization breakdown (Fig. 1 and Table I).

``mac_utilization_breakdown`` classifies every MAC of the quantized
convolution layers into idle / partially-utilized / fully-utilized, as in
Fig. 1; ``model_mac_counts`` reports per-model MAC operation counts for the
Table I columns.
"""

from __future__ import annotations

import numpy as np

from repro.core.collision import MacBreakdown, classify_macs
from repro.eval.harness import SysmtHarness
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.module import Module
from repro.quant.engine import LayerContext, exact_int_matmul


class _ClassifyingEngine:
    """Engine that classifies MAC operations while executing them exactly."""

    def __init__(self):
        self.breakdown = MacBreakdown()
        self.per_layer: dict[str, MacBreakdown] = {}

    def matmul(
        self, x_q: np.ndarray, w_q: np.ndarray, ctx: LayerContext
    ) -> np.ndarray:
        layer_breakdown = classify_macs(x_q, w_q)
        self.breakdown.merge(layer_breakdown)
        per_layer = self.per_layer.setdefault(ctx.name, MacBreakdown())
        per_layer.merge(layer_breakdown)
        return exact_int_matmul(x_q, w_q)


def mac_utilization_breakdown(
    harness: SysmtHarness, images: np.ndarray | None = None
) -> MacBreakdown:
    """Idle / partial / full MAC breakdown of one model (a Fig. 1 bar)."""
    engine = _ClassifyingEngine()
    harness.qmodel.set_engine(engine)
    if images is None:
        images = harness.eval_images
    harness.qmodel.forward(images[: harness.batch_size])
    return engine.breakdown


def model_mac_counts(model: Module, image_size: int = 32) -> dict[str, int]:
    """Per-model MAC counts split into convolution and fully-connected MACs.

    The counts are per input image, mirroring the Table I "MAC Ops." columns.
    Spatial sizes are tracked through the layer graph by a probe forward pass.
    """
    conv_macs = 0
    fc_macs = 0
    # Probe spatial dimensions by hooking conv layers during a single forward.
    spatial: dict[int, tuple[int, int]] = {}

    conv_layers = [m for m in model.modules() if isinstance(m, Conv2d)]
    linear_layers = [m for m in model.modules() if isinstance(m, Linear)]
    originals = [layer.matmul_fn for layer in conv_layers]

    def make_probe(index: int, original):
        def probe(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
            spatial[index] = (cols.shape[0], cols.shape[1])
            return original(cols, weight_2d)

        return probe

    try:
        for index, layer in enumerate(conv_layers):
            layer.matmul_fn = make_probe(index, originals[index])
        probe_image = np.zeros((1, 3, image_size, image_size), dtype=np.float32)
        model.eval()
        model(probe_image)
    finally:
        for layer, original in zip(conv_layers, originals):
            layer.matmul_fn = original

    for index, layer in enumerate(conv_layers):
        rows, depth = spatial.get(index, (0, 0))
        group_out = layer.out_channels // layer.groups
        conv_macs += rows * depth * group_out * layer.groups
    for layer in linear_layers:
        fc_macs += layer.macs_per_image()
    return {"conv": conv_macs, "fc": fc_macs, "total": conv_macs + fc_macs}
