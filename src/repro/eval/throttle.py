"""Layer throttling: trading speedup for accuracy (Section V-B).

SySMT is tunable: specific layers can be executed with fewer threads and
therefore contribute less (or no) NB-SMT noise.  The paper chooses the layers
to slow down by their recorded MSE -- highest-MSE layers first, breaking ties
towards the beginning of the network -- and reports the resulting
accuracy/speedup operating points (the GoogLeNet 1%-cap example, the MLPerf
quality targets, Table V and Fig. 10).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.smt import SMTStatistics
from repro.eval.harness import NBSMTRunResult, SysmtHarness


@dataclass
class ThrottlePlan:
    """A per-layer thread assignment together with its measured outcome."""

    threads: dict[str, int]
    slowed_layers: list[str] = field(default_factory=list)
    accuracy: float = 0.0
    speedup: float = 1.0

    @property
    def num_slowed(self) -> int:
        return len(self.slowed_layers)


def rank_layers_by_mse(
    layer_stats: dict[str, SMTStatistics], layer_order: list[str]
) -> list[str]:
    """Layers sorted by decreasing relative MSE (ties: earlier layers first)."""
    position = {name: index for index, name in enumerate(layer_order)}
    return sorted(
        (name for name in layer_stats if name in position),
        key=lambda name: (-round(layer_stats[name].relative_mse, 6), position[name]),
    )


def plan_speedup(harness: SysmtHarness, threads: dict[str, int]) -> float:
    """Speedup of a per-layer thread assignment over the conventional SA."""
    return harness.speedup_for(threads)


def throttle_assignment(
    qmodel,
    base_threads: int,
    slow_layers: list[str],
    slow_threads: int,
) -> dict[str, int]:
    """Per-layer thread assignment with the given layers slowed down.

    Depthwise convolutions keep their single thread when the quantization
    config pins them there (as :meth:`QuantizedModel.set_threads` would).
    """
    assignment = {}
    for name, layer in qmodel.layers.items():
        default = base_threads
        if (
            qmodel.config.depthwise_single_thread
            and getattr(layer.module, "groups", 1) > 1
        ):
            default = 1
        assignment[name] = slow_threads if name in slow_layers else default
    return assignment


def throttle_layers(
    harness: SysmtHarness,
    base_threads: int,
    slow_layers: list[str],
    slow_threads: int,
    policy: str | None = None,
    reorder: bool = True,
) -> tuple[NBSMTRunResult, dict[str, int]]:
    """Evaluate a run with the given layers slowed to ``slow_threads``."""
    assignment = throttle_assignment(
        harness.qmodel, base_threads, slow_layers, slow_threads
    )
    result = harness.evaluate_nbsmt(
        threads=assignment, policy=policy, reorder=reorder
    )
    return result, assignment


@dataclass(frozen=True)
class OperatingPoint:
    """One rung of a throttle ladder: an assignment plus its expectations.

    ``level`` is the rung index inside its ladder (0 = most throttled /
    highest quality).  ``expected_speedup`` is the MAC-reduction proxy from
    the harness performance model (Section V-B); ``expected_mse`` is the
    noise proxy: the summed baseline relative MSE of the layers *not*
    slowed at this rung (a slowed layer contributes its residual noise,
    which the proxy rounds down to zero).  ``expected_accuracy`` is only
    set when the ladder was built with measurement enabled.
    """

    level: int
    slowed_layers: tuple[str, ...]
    threads: dict[str, int]
    expected_speedup: float
    expected_mse: float
    expected_accuracy: float | None = None

    def describe(self) -> dict:
        """JSON-able summary (what the serving layer reports)."""
        return {
            "level": self.level,
            "slowed_layers": list(self.slowed_layers),
            "num_slowed": len(self.slowed_layers),
            "expected_speedup": self.expected_speedup,
            "expected_mse": self.expected_mse,
            "expected_accuracy": self.expected_accuracy,
        }


@dataclass(frozen=True)
class OperatingLadder:
    """An ordered sequence of operating points, quality-first.

    Rung 0 is the *top* rung: the most throttled, most accurate point.
    Walking towards the last rung un-throttles layers one by one, trading
    accuracy (expected MSE non-decreasing) for modeled throughput
    (expected speedup non-decreasing).  The serving QoS controller degrades
    down the ladder under sustained load and recovers back to rung 0.
    """

    points: tuple[OperatingPoint, ...]

    def __post_init__(self):
        if not self.points:
            raise ValueError("an operating ladder needs at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, level: int) -> OperatingPoint:
        return self.points[level]

    @property
    def top(self) -> OperatingPoint:
        """The highest-quality rung (level 0)."""
        return self.points[0]

    @property
    def fastest(self) -> OperatingPoint:
        """The least-throttled rung (highest modeled speedup)."""
        return self.points[-1]

    def describe(self) -> list[dict]:
        return [point.describe() for point in self.points]


def ladder_from_ranking(
    slowed_ranking: Sequence[str],
    layer_mse: dict[str, float],
    qmodel,
    base_threads: int,
    slow_threads: int,
    speedup_for: Callable[[dict[str, int]], float],
) -> OperatingLadder:
    """Build an operating ladder from an MSE-ranked list of slowable layers.

    Rung 0 slows every layer of ``slowed_ranking``; each subsequent rung
    un-throttles the lowest-ranked slowed layer, down to the last rung
    which slows nothing.  Layers whose default thread count is already at
    or below ``slow_threads`` (e.g. depthwise layers pinned to a single
    thread) are dropped from the ranking -- "slowing" them would speed them
    up and break the ladder's monotonicity.

    The resulting ladder is monotone by construction: walking from rung 0
    to the last rung, ``expected_speedup`` and ``expected_mse`` are both
    non-decreasing (equivalently, as throttling increases both the MAC
    reduction and the expected noise shrink).
    """
    defaults = throttle_assignment(qmodel, base_threads, [], slow_threads)
    slowable = [
        name
        for name in slowed_ranking
        if defaults.get(name, base_threads) > slow_threads
    ]
    points = []
    rungs = len(slowable) + 1
    for level in range(rungs):
        slowed = list(slowable[: rungs - 1 - level])
        assignment = throttle_assignment(
            qmodel, base_threads, slowed, slow_threads
        )
        expected_mse = float(
            sum(
                max(0.0, layer_mse.get(name, 0.0))
                for name in assignment
                if name not in slowed
            )
        )
        points.append(
            OperatingPoint(
                level=level,
                slowed_layers=tuple(slowed),
                threads=assignment,
                expected_speedup=float(speedup_for(assignment)),
                expected_mse=expected_mse,
            )
        )
    return OperatingLadder(tuple(points))


def operating_ladder(
    harness: SysmtHarness,
    base_threads: int = 4,
    slow_threads: int = 2,
    rungs: int = 3,
    policy: str | None = None,
    reorder: bool = False,
    slow_layers: Sequence[str] | None = None,
    baseline: NBSMTRunResult | None = None,
    measure_accuracy: bool = False,
) -> OperatingLadder:
    """The serving ladder of one model: quality-first operating points.

    One baseline evaluation at ``base_threads`` ranks the layers by
    recorded MSE (exactly the paper's throttling order); the top
    ``rungs - 1`` layers (or an explicit ``slow_layers`` list, best-first)
    become the progressively un-throttled set.  ``rungs`` is an upper
    bound either way -- an explicit list longer than ``rungs - 1`` is
    truncated (best-first), so a configured ladder size and the built
    ladder never silently disagree; the ladder only comes out *shorter*
    when fewer slowable layers exist (pinned depthwise layers are
    excluded).  ``measure_accuracy=True`` additionally evaluates every
    rung and records its measured accuracy (one extra evaluation per rung
    -- used by fixtures and benchmarks, not by serving warm-up).
    """
    if rungs < 1:
        raise ValueError("an operating ladder needs at least one rung")
    if baseline is None:
        baseline = harness.evaluate_nbsmt(
            threads=base_threads, policy=policy, reorder=reorder,
            collect_stats=True,
        )
    layer_mse = {
        name: max(0.0, stats.relative_mse)
        for name, stats in baseline.layer_stats.items()
    }
    if slow_layers is None:
        ranked = rank_layers_by_mse(
            baseline.layer_stats, harness.qmodel.layer_names()
        )
        slow_layers = ranked[: max(0, rungs - 1)]
    else:
        slow_layers = list(slow_layers)[: max(0, rungs - 1)]
    ladder = ladder_from_ranking(
        list(slow_layers),
        layer_mse,
        harness.qmodel,
        base_threads,
        slow_threads,
        harness.speedup_for,
    )
    if measure_accuracy:
        measured = []
        for point in ladder.points:
            result = harness.evaluate_nbsmt(
                threads=dict(point.threads), policy=policy, reorder=reorder,
                collect_stats=False,
            )
            measured.append(
                OperatingPoint(
                    level=point.level,
                    slowed_layers=point.slowed_layers,
                    threads=point.threads,
                    expected_speedup=point.expected_speedup,
                    expected_mse=point.expected_mse,
                    expected_accuracy=result.accuracy,
                )
            )
        ladder = OperatingLadder(tuple(measured))
    return ladder


def throttle_to_accuracy(
    harness: SysmtHarness,
    target_accuracy: float,
    base_threads: int = 4,
    slow_threads: int = 2,
    policy: str | None = None,
    reorder: bool = True,
    max_slowed: int | None = None,
) -> list[ThrottlePlan]:
    """Progressively slow down the highest-MSE layers until a target is met.

    Returns the sequence of operating points visited (the dots of Fig. 10 /
    the columns of Table V): the first entry runs every layer at
    ``base_threads``, each subsequent entry slows one more layer to
    ``slow_threads``.  The search stops when the target accuracy is reached
    or ``max_slowed`` layers have been slowed.
    """
    baseline = harness.evaluate_nbsmt(
        threads=base_threads, policy=policy, reorder=reorder
    )
    layer_order = harness.qmodel.layer_names()
    ranked = rank_layers_by_mse(baseline.layer_stats, layer_order)
    if max_slowed is None:
        max_slowed = len(ranked)

    plans = [
        ThrottlePlan(
            threads=dict(baseline.threads),
            slowed_layers=[],
            accuracy=baseline.accuracy,
            speedup=baseline.speedup,
        )
    ]
    if baseline.accuracy >= target_accuracy:
        return plans

    slowed: list[str] = []
    for layer_name in ranked[:max_slowed]:
        slowed.append(layer_name)
        result, assignment = throttle_layers(
            harness, base_threads, slowed, slow_threads, policy=policy, reorder=reorder
        )
        plans.append(
            ThrottlePlan(
                threads=assignment,
                slowed_layers=list(slowed),
                accuracy=result.accuracy,
                speedup=result.speedup,
            )
        )
        if result.accuracy >= target_accuracy:
            break
    return plans
