"""Layer throttling: trading speedup for accuracy (Section V-B).

SySMT is tunable: specific layers can be executed with fewer threads and
therefore contribute less (or no) NB-SMT noise.  The paper chooses the layers
to slow down by their recorded MSE -- highest-MSE layers first, breaking ties
towards the beginning of the network -- and reports the resulting
accuracy/speedup operating points (the GoogLeNet 1%-cap example, the MLPerf
quality targets, Table V and Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.smt import SMTStatistics
from repro.eval.harness import NBSMTRunResult, SysmtHarness


@dataclass
class ThrottlePlan:
    """A per-layer thread assignment together with its measured outcome."""

    threads: dict[str, int]
    slowed_layers: list[str] = field(default_factory=list)
    accuracy: float = 0.0
    speedup: float = 1.0

    @property
    def num_slowed(self) -> int:
        return len(self.slowed_layers)


def rank_layers_by_mse(
    layer_stats: dict[str, SMTStatistics], layer_order: list[str]
) -> list[str]:
    """Layers sorted by decreasing relative MSE (ties: earlier layers first)."""
    position = {name: index for index, name in enumerate(layer_order)}
    return sorted(
        (name for name in layer_stats if name in position),
        key=lambda name: (-round(layer_stats[name].relative_mse, 6), position[name]),
    )


def plan_speedup(harness: SysmtHarness, threads: dict[str, int]) -> float:
    """Speedup of a per-layer thread assignment over the conventional SA."""
    return harness.speedup_for(threads)


def throttle_assignment(
    qmodel,
    base_threads: int,
    slow_layers: list[str],
    slow_threads: int,
) -> dict[str, int]:
    """Per-layer thread assignment with the given layers slowed down.

    Depthwise convolutions keep their single thread when the quantization
    config pins them there (as :meth:`QuantizedModel.set_threads` would).
    """
    assignment = {}
    for name, layer in qmodel.layers.items():
        default = base_threads
        if (
            qmodel.config.depthwise_single_thread
            and getattr(layer.module, "groups", 1) > 1
        ):
            default = 1
        assignment[name] = slow_threads if name in slow_layers else default
    return assignment


def throttle_layers(
    harness: SysmtHarness,
    base_threads: int,
    slow_layers: list[str],
    slow_threads: int,
    policy: str | None = None,
    reorder: bool = True,
) -> tuple[NBSMTRunResult, dict[str, int]]:
    """Evaluate a run with the given layers slowed to ``slow_threads``."""
    assignment = throttle_assignment(
        harness.qmodel, base_threads, slow_layers, slow_threads
    )
    result = harness.evaluate_nbsmt(
        threads=assignment, policy=policy, reorder=reorder
    )
    return result, assignment


def throttle_to_accuracy(
    harness: SysmtHarness,
    target_accuracy: float,
    base_threads: int = 4,
    slow_threads: int = 2,
    policy: str | None = None,
    reorder: bool = True,
    max_slowed: int | None = None,
) -> list[ThrottlePlan]:
    """Progressively slow down the highest-MSE layers until a target is met.

    Returns the sequence of operating points visited (the dots of Fig. 10 /
    the columns of Table V): the first entry runs every layer at
    ``base_threads``, each subsequent entry slows one more layer to
    ``slow_threads``.  The search stops when the target accuracy is reached
    or ``max_slowed`` layers have been slowed.
    """
    baseline = harness.evaluate_nbsmt(
        threads=base_threads, policy=policy, reorder=reorder
    )
    layer_order = harness.qmodel.layer_names()
    ranked = rank_layers_by_mse(baseline.layer_stats, layer_order)
    if max_slowed is None:
        max_slowed = len(ranked)

    plans = [
        ThrottlePlan(
            threads=dict(baseline.threads),
            slowed_layers=[],
            accuracy=baseline.accuracy,
            speedup=baseline.speedup,
        )
    ]
    if baseline.accuracy >= target_accuracy:
        return plans

    slowed: list[str] = []
    for layer_name in ranked[:max_slowed]:
        slowed.append(layer_name)
        result, assignment = throttle_layers(
            harness, base_threads, slowed, slow_threads, policy=policy, reorder=reorder
        )
        plans.append(
            ThrottlePlan(
                threads=assignment,
                slowed_layers=list(slowed),
                accuracy=result.accuracy,
                speedup=result.speedup,
            )
        )
        if result.accuracy >= target_accuracy:
            break
    return plans
