"""Sharded multi-process evaluation.

Zoo-wide experiments evaluate many images through a quantized model whose
per-image work is independent, so the evaluation set is sharded across a
pool of worker processes and the results are reduced in the parent:

* accuracy as summed correct-prediction counts,
* NB-SMT per-layer counters via :meth:`SMTStatistics.merge`,
* per-layer context statistics (MAC/issue-slot counts) as summed floats.

Workers are forked (copy-on-write), so neither the model nor the images are
pickled; each child inherits the installed :class:`QuantizedModel` hooks and
its own copy of the engine, evaluates its contiguous shard, and sends back
only the small counter structures.  On platforms without ``fork`` (or for
``workers <= 1``) the evaluation degrades to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.core.smt import SMTStatistics

#: State inherited by forked workers; set immediately before the pool forks.
_WORKER_STATE: dict | None = None

#: True inside a forked sweep worker process (set by :func:`run_worklists`).
IN_POOL_WORKER = False


def fork_available() -> bool:
    """Whether fork-based worker processes can be used on this platform."""
    return (
        hasattr(os, "fork")
        and "fork" in multiprocessing.get_all_start_methods()
    )


def available_cpus() -> int:
    """Number of CPUs usable by this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def plan_worker_allocation(
    workers: int, groups: int, cpus: int | None = None
) -> tuple[int, int]:
    """Split a worker budget between sweep points and image shards.

    Returns ``(pool, inner)``: the number of point-worker processes and the
    number of image-shard workers each point evaluation may fork in turn.
    The plan never oversubscribes: ``pool * inner <= max(workers, 1)`` and
    ``pool * inner <= cpus``, and neither level exceeds what it can use
    (``pool <= groups``; on a single-CPU machine everything degrades to
    ``(1, 1)``, i.e. the serial path).
    """
    cpus = cpus if cpus is not None else available_cpus()
    cpus = max(1, cpus)
    workers = max(1, workers)
    pool = max(1, min(workers, groups, cpus))
    inner = max(1, min(workers // pool, cpus // pool))
    return pool, inner


def partition_worklists(weights: list[float], bins: int) -> list[list[int]]:
    """Partition task indices into ``bins`` lists, balancing total weight.

    Deterministic longest-processing-time greedy: tasks are placed heaviest
    first onto the currently lightest bin (ties towards lower bin index).
    Returns only non-empty bins; within a bin the original order is kept.
    """
    bins = max(1, min(bins, len(weights)))
    loads = [0.0] * bins
    assignment: list[list[int]] = [[] for _ in range(bins)]
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for index in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        loads[target] += weights[index]
        assignment[target].append(index)
    for worklist in assignment:
        worklist.sort()
    return [worklist for worklist in assignment if worklist]


def _worklist_main(thunks, initializer, finalizer) -> None:
    global IN_POOL_WORKER
    IN_POOL_WORKER = True
    # Forked workers inherit the parent's telemetry bus: drop its
    # subscribers (ticker/dashboard callbacks belong to the parent) but
    # keep the spool sink, which lazily reopens a per-pid file -- worker
    # events land in the same spool directory as the parent's.
    from repro.telemetry import bus as telemetry_bus

    telemetry_bus.get_bus().reset_after_fork(role="sweep-worker")
    # Graceful shutdown: SIGINT/SIGTERM ask the worker to *drain* -- the
    # thunk in flight completes (and persists its point), the remaining
    # thunks are skipped, and the finalizer still runs so engines/harnesses
    # are closed instead of the process being ripped out from under them.
    stop_requested = False

    def _request_stop(signum, frame):
        nonlocal stop_requested
        stop_requested = True

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        if initializer is not None:
            initializer()
        telemetry_bus.publish("worker_started", tasks=len(thunks))
        for thunk in thunks:
            if stop_requested:
                break
            thunk()
    finally:
        if finalizer is not None:
            finalizer()
        telemetry_bus.publish("worker_exited", drained=stop_requested)


def run_worklists(
    worklists: list[list],
    initializer=None,
    finalizer=None,
    remote_nodes=None,
) -> list[bool]:
    """Run each worklist of thunks serially inside one forked worker process.

    Workers are forked (copy-on-write), so thunks may close over arbitrary
    parent state; they communicate results through side effects visible to
    the parent (e.g. files).  ``initializer`` runs once per worker before its
    thunks (e.g. to drop state inherited from the parent); ``finalizer``
    runs once per worker after them, even when the worker is asked to stop.
    Returns one success flag per worklist; a worker that crashed or raised
    reports ``False``, and the caller is expected to degrade to running its
    missing work serially.

    ``remote_nodes`` is the multi-machine seam: anything with a ``drain()``
    method (a :class:`repro.cluster.worker.SweepHub`) holding work leased
    to processes on *other* machines.  After the local forks are joined,
    the remote work is drained under the same contract -- a dead remote
    node abandons its leases and the caller recomputes what is missing,
    exactly as for a crashed fork worker.

    Shutdown is graceful at both levels: a worker receiving SIGINT/SIGTERM
    finishes its in-flight thunk, skips the rest, runs the finalizer and
    exits cleanly; a ``KeyboardInterrupt`` in the joining parent forwards
    SIGTERM to the still-running workers, waits for them to drain (bounded),
    and escalates to SIGKILL only for stragglers -- no orphaned forks.
    """
    context = multiprocessing.get_context("fork")
    processes = []
    for worklist in worklists:
        process = context.Process(
            target=_worklist_main, args=(worklist, initializer, finalizer)
        )
        process.start()
        processes.append(process)
    try:
        for process in processes:
            process.join()
        if remote_nodes is not None:
            remote_nodes.drain()
    except BaseException:
        _drain_processes(processes)
        raise
    return [process.exitcode == 0 for process in processes]


def _drain_processes(processes, drain_timeout: float = 30.0) -> None:
    """Ask live workers to drain (SIGTERM), then reap; SIGKILL stragglers."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=drain_timeout)
    stragglers = [process for process in processes if process.is_alive()]
    if stragglers:
        print(
            f"parallel: killing {len(stragglers)} worker(s) that did not "
            "drain in time",
            file=sys.stderr,
        )
        for process in stragglers:
            process.kill()
            process.join()


def shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous chunks."""
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def count_correct(
    model, images: np.ndarray, labels: np.ndarray, batch_size: int
) -> int:
    """Number of correct top-1 predictions, evaluated batch by batch."""
    model.eval()
    correct = 0
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        logits = model(batch)
        correct += int((logits.argmax(axis=1) == labels[start : start + batch_size]).sum())
    return correct


@dataclass
class ShardOutcome:
    """What one worker sends back to the parent."""

    correct: int
    total: int
    layer_stats: dict[str, SMTStatistics] = field(default_factory=dict)
    ctx_stats: dict[str, dict[str, float]] = field(default_factory=dict)


def _run_shard(bounds: tuple[int, int]) -> ShardOutcome:
    state = _WORKER_STATE
    qmodel = state["qmodel"]
    engine = state["engine"]
    images = state["images"]
    labels = state["labels"]
    batch_size = state["batch_size"]
    start, stop = bounds
    # The forked child inherited the parent's accumulated statistics; clear
    # them so the shard reports only its own contribution.
    qmodel.clear_stats()
    if engine is not None and hasattr(engine, "reset_stats"):
        engine.reset_stats()
    correct = count_correct(
        qmodel.model, images[start:stop], labels[start:stop], batch_size
    )
    layer_stats = dict(engine.layer_stats) if engine is not None else {}
    return ShardOutcome(
        correct=correct,
        total=stop - start,
        layer_stats=layer_stats,
        ctx_stats=qmodel.collect_stats(),
    )


def evaluate_sharded(
    qmodel,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    batch_size: int = 64,
    workers: int = 1,
    engine=None,
) -> float:
    """Top-1 accuracy of ``qmodel`` with images sharded across processes.

    ``engine`` optionally names the NB-SMT engine whose per-layer
    :class:`SMTStatistics` should be reduced back into the parent (it must be
    the engine currently installed on ``qmodel``).  The per-layer context
    statistics of ``qmodel`` are always reduced.  Returns the accuracy; the
    merged statistics are left on ``engine``/``qmodel`` exactly as a serial
    evaluation would have left them.
    """
    global _WORKER_STATE
    total = int(images.shape[0])
    if total == 0:
        return 0.0
    if workers <= 1 or total < 2 or not fork_available():
        correct = count_correct(qmodel.model, images, labels, batch_size)
        return correct / total

    bounds = shard_bounds(total, workers)
    _WORKER_STATE = {
        "qmodel": qmodel,
        "engine": engine,
        "images": images,
        "labels": labels,
        "batch_size": batch_size,
    }
    context = multiprocessing.get_context("fork")
    try:
        with context.Pool(processes=len(bounds)) as pool:
            outcomes = pool.map(_run_shard, bounds)
    finally:
        _WORKER_STATE = None

    correct = sum(outcome.correct for outcome in outcomes)
    for outcome in outcomes:
        if engine is not None:
            for name, stats in outcome.layer_stats.items():
                engine.layer_stats.setdefault(name, SMTStatistics()).merge(stats)
        for name, values in outcome.ctx_stats.items():
            layer = qmodel.layers.get(name)
            if layer is None:
                continue
            for key, value in values.items():
                layer.context.add_stat(key, value)
    return correct / total
