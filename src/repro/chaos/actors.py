"""Seeded fault actors: the reusable injection primitives of the chaos lane.

Each actor wraps one class of real-world failure the serving stack claims
to survive, driven by an injected :class:`random.Random` so a chaos run is
reproducible from its seed:

* :class:`ProcessReaper` -- SIGKILLs victim processes (forked engine
  replicas, whole ``SO_REUSEPORT`` shards) picked from a candidate list.
* :class:`SpoolCorruptor` -- truncates, tears, and garbage-appends the
  JSONL telemetry/metrics spools and atomically-published JSON documents
  that the cross-process machinery reads, simulating writers that crashed
  mid-write and disks that lied.
* :class:`PeerFreezer` -- SIGSTOP/SIGCONT suspends a coordinator peer so
  its published state goes stale while its pid stays alive (the wedged-
  but-not-dead failure mode the staleness horizon exists for).
* :class:`ClockPerturber` -- a forward-skewing clock plus a latency
  wrapper for batch runners, perturbing QoS ticks and batch timing.
* :class:`NetworkMangler` -- the HTTP-client-path fault class: slow-loris
  header drips, byte-drip response readers, half-open connections
  (connect, then silence), and mid-body disconnects (RST after a partial
  request body).
* :class:`DiskFiller` -- squeezes :class:`repro.utils.diskbudget.DiskBudget`
  quotas down (and restores them), the disk-exhaustion fault class for
  spools, exchanges and stores.

Actors only *inject*; they never assert.  The invariant checks live in
:mod:`repro.chaos.invariants` and the composition (what fires when) in
:mod:`repro.chaos.schedule`.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import struct
import threading
import time

from repro.telemetry.bus import pid_alive

#: The corruption modes :meth:`SpoolCorruptor.corrupt_file` draws from.
CORRUPTION_MODES = ("truncate", "tear", "garbage", "non_event")


class ProcessReaper:
    """SIGKILLs victims chosen by a seeded RNG; remembers every kill."""

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)
        self.killed: list[int] = []

    def kill(self, pid: int) -> bool:
        """SIGKILL one pid; False when it was already gone."""
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        self.killed.append(pid)
        return True

    def reap(self, pids) -> int | None:
        """SIGKILL one live pid from ``pids`` (seeded choice), or None.

        Candidates are sorted first so the victim depends only on the RNG
        state and the candidate *set*, not on iteration order.
        """
        candidates = sorted(pid for pid in pids if pid_alive(pid))
        while candidates:
            victim = candidates.pop(self.rng.randrange(len(candidates)))
            if self.kill(victim):
                return victim
        return None


class PeerFreezer:
    """Suspends (SIGSTOP) and resumes (SIGCONT) peer processes.

    A frozen peer keeps its pid alive -- exactly the failure the staleness
    horizon (not pid liveness) must catch.  :meth:`thaw_all` makes cleanup
    safe to call from ``finally`` blocks regardless of how far a test got.
    """

    def __init__(self):
        self._frozen: set[int] = set()

    @property
    def frozen(self) -> set[int]:
        return set(self._frozen)

    def freeze(self, pid: int) -> bool:
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        self._frozen.add(pid)
        return True

    def thaw(self, pid: int) -> bool:
        self._frozen.discard(pid)
        try:
            os.kill(pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        return True

    def thaw_all(self) -> None:
        for pid in list(self._frozen):
            self.thaw(pid)


class SpoolCorruptor:
    """Damages spool files the way crashed writers and bad disks do.

    Modes (see :data:`CORRUPTION_MODES`):

    * ``truncate`` -- cut the file at a random byte offset (mid-line).
    * ``tear`` -- append the head of a JSON document with no newline (a
      writer that died mid-``write``); a later writer appending a full
      line turns the tear into one corrupt complete line.
    * ``garbage`` -- append a complete line of binary junk.
    * ``non_event`` -- append a complete line of *valid* JSON of the wrong
      shape (readers must reject structure, not just syntax).
    """

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)
        self.corrupted: list[tuple[str, str]] = []

    def corrupt_file(self, path: str, mode: str | None = None) -> str | None:
        """Apply one corruption to ``path``; returns the mode used."""
        mode = mode or self.rng.choice(CORRUPTION_MODES)
        try:
            # Stat first: corrupting damages existing files, the append
            # modes must never conjure a spool that was not there.
            size = os.path.getsize(path)
            if mode == "truncate":
                if size == 0:
                    return None
                os.truncate(path, self.rng.randrange(size))
            else:
                with open(path, "ab") as handle:
                    if mode == "tear":
                        handle.write(b'{"type":"torn","at":17')
                    elif mode == "garbage":
                        junk = bytes(
                            self.rng.randrange(256) for _ in range(24)
                        )
                        handle.write(junk.replace(b"\n", b"\x00") + b"\n")
                    else:  # non_event
                        handle.write(b'[1,2,{"not":"an event"}]\n')
        except OSError:
            return None
        self.corrupted.append((path, mode))
        return mode

    def corrupt_spool(
        self, directory: str, mode: str | None = None,
        suffixes: tuple[str, ...] = (".jsonl", ".jsonl.old"),
    ) -> tuple[str, str] | None:
        """Corrupt one random spool file under ``directory``."""
        try:
            names = sorted(
                name for name in os.listdir(directory)
                if name.endswith(suffixes)
            )
        except OSError:
            return None
        while names:
            name = names.pop(self.rng.randrange(len(names)))
            path = os.path.join(directory, name)
            used = self.corrupt_file(path, mode)
            if used is not None:
                return path, used
        return None

    def corrupt_document(self, path: str) -> bool:
        """Clobber an atomically-published JSON document in place.

        The atomic-rename protocol makes a torn *publish* impossible, but
        not a corrupted file (disk fault, a foreign writer): readers must
        drop the document, not crash or merge garbage.
        """
        try:
            with open(path, "rb") as handle:
                content = handle.read()
            with open(path, "wb") as handle:
                handle.write(content[: max(1, len(content) // 2)])
        except OSError:
            return False
        self.corrupted.append((path, "document"))
        return True


class NetworkMangler:
    """Misbehaving HTTP clients, as injectable faults against a front-end.

    Every method opens a *real* TCP connection to ``(host, port)`` and
    abuses it the way broken or malicious clients do.  The front-end's
    hardening (read/write timeouts, header caps, connection cap with
    idle eviction) must reclaim every connection these methods park; the
    conformance tests assert the cap never leaks and well-behaved traffic
    keeps flowing alongside.

    All methods are best-effort and never raise (a refused or reset
    connection just means the server already defended itself); each
    records what it did in :attr:`mangled`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        rng: random.Random | None = None,
        connect_timeout_s: float = 5.0,
    ):
        self.host = host
        self.port = int(port)
        self.rng = rng or random.Random(0)
        self.connect_timeout_s = float(connect_timeout_s)
        #: ``(mode, detail)`` per injection, in order.
        self.mangled: list[tuple[str, str]] = []
        self._lock = threading.Lock()
        self._held: list[socket.socket] = []

    def _connect(self) -> socket.socket | None:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError:
            return None
        return sock

    def _record(self, mode: str, detail: str = "") -> None:
        with self._lock:
            self.mangled.append((mode, detail))

    def _hold(self, sock: socket.socket) -> None:
        with self._lock:
            self._held.append(sock)

    # -- the fault modes ---------------------------------------------------
    def slow_loris(self, header_bytes: int = 24) -> bool:
        """Drip a partial request header, then park the connection open.

        The classic connection-exhaustion attack: the request never
        completes, so a front-end without read timeouts / idle eviction
        holds the connection forever.
        """
        sock = self._connect()
        if sock is None:
            return False
        try:
            drip = (
                b"POST /v1/models/x:predict HTTP/1.1\r\n"
                b"X-Drip: " + b"a" * max(1, header_bytes)
            )
            sock.sendall(drip)  # no terminating CRLFCRLF, ever
        except OSError:
            sock.close()
            return False
        self._hold(sock)
        self._record("slow_loris", f"{header_bytes} header bytes, parked")
        return True

    def half_open(self) -> bool:
        """Connect and go silent: not one byte, no FIN, no RST.

        Models a peer whose network vanished (pulled cable, dead NAT
        mapping).  Only the server's header-read timeout can reclaim it.
        """
        sock = self._connect()
        if sock is None:
            return False
        self._hold(sock)
        self._record("half_open", "connected, silent")
        return True

    def mid_body_disconnect(self, declared_bytes: int = 4096) -> bool:
        """Send headers declaring a body, half the body, then RST.

        ``SO_LINGER`` zero makes the close a hard RST, not a graceful
        FIN: the server's ``readexactly`` sees a reset mid-request and
        must account the connection without a response.
        """
        sock = self._connect()
        if sock is None:
            return False
        try:
            head = (
                b"POST /v1/models/x:predict HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(declared_bytes).encode() + b"\r\n"
                b"\r\n"
            )
            sock.sendall(head + b"{" + b" " * (declared_bytes // 2))
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            sock.close()
            return False
        sock.close()
        self._record("mid_body_disconnect", f"declared {declared_bytes}")
        return True

    def byte_drip_reader(self, path: str = "/v1/metrics") -> bool:
        """Issue a full request, then stop reading the response.

        With a tiny receive buffer the server's response write stalls in
        its send buffer; the write timeout must reclaim the connection
        instead of blocking the handler forever.
        """
        sock = self._connect()
        if sock is None:
            return False
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1)
            request = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                f"Connection: keep-alive\r\n\r\n"
            ).encode()
            sock.sendall(request)
        except OSError:
            sock.close()
            return False
        self._hold(sock)  # never read: the response wedges in flight
        self._record("byte_drip_reader", path)
        return True

    def inject(self) -> str | None:
        """Fire one seeded-choice fault mode (the schedule's entry point)."""
        modes = (
            self.slow_loris,
            self.half_open,
            self.mid_body_disconnect,
            self.byte_drip_reader,
        )
        mode = modes[self.rng.randrange(len(modes))]
        return mode.__name__ if mode() else None

    def release_all(self) -> int:
        """Close every parked connection (the faults lift)."""
        with self._lock:
            held, self._held = self._held, []
        for sock in held:
            try:
                sock.close()
            except OSError:
                pass
        return len(held)


class DiskFiller:
    """Quota squeeze against the :class:`~repro.utils.diskbudget.DiskBudget`
    layer: the injectable form of a disk filling up.

    Rather than actually exhausting the filesystem (slow, dangerous,
    unkillable in CI), the filler shrinks budgets to (at or below) their
    current usage -- every subsequent write is over quota, exactly the
    degrade path real ENOSPC exercises through ``note_enospc``.
    :meth:`restore` lifts the fault, and recovery must follow.
    """

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)
        self._originals: dict[int, tuple[object, int]] = {}
        self._lock = threading.Lock()
        #: ``(budget name, squeezed-to bytes)`` per squeeze, in order.
        self.squeezed: list[tuple[str, int]] = []

    def squeeze(self, budget, to_bytes: int | None = None) -> int:
        """Shrink ``budget`` so current usage (or ``to_bytes``) is the cap.

        Remembers the original quota (first squeeze wins) for
        :meth:`restore`.
        """
        with self._lock:
            key = id(budget)
            if key not in self._originals:
                self._originals[key] = (budget, budget.max_bytes)
        if to_bytes is None:
            # At-or-below current usage: the very next write is denied.
            to_bytes = max(1, budget.usage_bytes(refresh=True) // 2)
        budget.set_max_bytes(int(to_bytes))
        self.squeezed.append((budget.name, int(to_bytes)))
        return int(to_bytes)

    def squeeze_one(self, budgets) -> str | None:
        """Squeeze one seeded-choice budget from ``budgets``."""
        budgets = sorted(budgets, key=lambda budget: budget.name)
        if not budgets:
            return None
        victim = budgets[self.rng.randrange(len(budgets))]
        self.squeeze(victim)
        return victim.name

    def restore(self) -> int:
        """Put every squeezed budget back to its original quota."""
        with self._lock:
            originals, self._originals = self._originals, {}
        for budget, max_bytes in originals.values():
            budget.set_max_bytes(max_bytes)
        return len(originals)


class ClockPerturber:
    """Forward-skewing clock plus a seeded latency tax for batch runners.

    :meth:`clock` stays monotone (skew only jumps forward), so it is safe
    to hand to :class:`repro.serve.qos.QoSController` -- perturbation
    compresses the controller's perceived sustain/cooldown windows without
    ever running time backwards.  :meth:`wrap_runner` adds a seeded delay
    to each executed batch, the injection point for service-time jitter.
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        base_clock=time.monotonic,
        max_skew_s: float = 0.05,
        max_delay_s: float = 0.005,
    ):
        self.rng = rng or random.Random(0)
        self.base_clock = base_clock
        self.max_skew_s = float(max_skew_s)
        self.max_delay_s = float(max_delay_s)
        self._offset = 0.0
        self._lock = threading.Lock()

    def clock(self) -> float:
        with self._lock:
            return self.base_clock() + self._offset

    def perturb(self) -> float:
        """Jump the clock forward by a seeded skew; returns the jump."""
        jump = self.rng.uniform(0.0, self.max_skew_s)
        with self._lock:
            self._offset += jump
        return jump

    def wrap_runner(self, runner):
        """``runner`` plus a seeded pre-execution delay per batch."""

        def perturbed(payloads):
            delay = self.rng.uniform(0.0, self.max_delay_s)
            if delay > 0:
                time.sleep(delay)
            return runner(payloads)

        return perturbed
