"""Seeded fault actors: the reusable injection primitives of the chaos lane.

Each actor wraps one class of real-world failure the serving stack claims
to survive, driven by an injected :class:`random.Random` so a chaos run is
reproducible from its seed:

* :class:`ProcessReaper` -- SIGKILLs victim processes (forked engine
  replicas, whole ``SO_REUSEPORT`` shards) picked from a candidate list.
* :class:`SpoolCorruptor` -- truncates, tears, and garbage-appends the
  JSONL telemetry/metrics spools and atomically-published JSON documents
  that the cross-process machinery reads, simulating writers that crashed
  mid-write and disks that lied.
* :class:`PeerFreezer` -- SIGSTOP/SIGCONT suspends a coordinator peer so
  its published state goes stale while its pid stays alive (the wedged-
  but-not-dead failure mode the staleness horizon exists for).
* :class:`ClockPerturber` -- a forward-skewing clock plus a latency
  wrapper for batch runners, perturbing QoS ticks and batch timing.

Actors only *inject*; they never assert.  The invariant checks live in
:mod:`repro.chaos.invariants` and the composition (what fires when) in
:mod:`repro.chaos.schedule`.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

from repro.telemetry.bus import pid_alive

#: The corruption modes :meth:`SpoolCorruptor.corrupt_file` draws from.
CORRUPTION_MODES = ("truncate", "tear", "garbage", "non_event")


class ProcessReaper:
    """SIGKILLs victims chosen by a seeded RNG; remembers every kill."""

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)
        self.killed: list[int] = []

    def kill(self, pid: int) -> bool:
        """SIGKILL one pid; False when it was already gone."""
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        self.killed.append(pid)
        return True

    def reap(self, pids) -> int | None:
        """SIGKILL one live pid from ``pids`` (seeded choice), or None.

        Candidates are sorted first so the victim depends only on the RNG
        state and the candidate *set*, not on iteration order.
        """
        candidates = sorted(pid for pid in pids if pid_alive(pid))
        while candidates:
            victim = candidates.pop(self.rng.randrange(len(candidates)))
            if self.kill(victim):
                return victim
        return None


class PeerFreezer:
    """Suspends (SIGSTOP) and resumes (SIGCONT) peer processes.

    A frozen peer keeps its pid alive -- exactly the failure the staleness
    horizon (not pid liveness) must catch.  :meth:`thaw_all` makes cleanup
    safe to call from ``finally`` blocks regardless of how far a test got.
    """

    def __init__(self):
        self._frozen: set[int] = set()

    @property
    def frozen(self) -> set[int]:
        return set(self._frozen)

    def freeze(self, pid: int) -> bool:
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        self._frozen.add(pid)
        return True

    def thaw(self, pid: int) -> bool:
        self._frozen.discard(pid)
        try:
            os.kill(pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError, OSError):
            return False
        return True

    def thaw_all(self) -> None:
        for pid in list(self._frozen):
            self.thaw(pid)


class SpoolCorruptor:
    """Damages spool files the way crashed writers and bad disks do.

    Modes (see :data:`CORRUPTION_MODES`):

    * ``truncate`` -- cut the file at a random byte offset (mid-line).
    * ``tear`` -- append the head of a JSON document with no newline (a
      writer that died mid-``write``); a later writer appending a full
      line turns the tear into one corrupt complete line.
    * ``garbage`` -- append a complete line of binary junk.
    * ``non_event`` -- append a complete line of *valid* JSON of the wrong
      shape (readers must reject structure, not just syntax).
    """

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)
        self.corrupted: list[tuple[str, str]] = []

    def corrupt_file(self, path: str, mode: str | None = None) -> str | None:
        """Apply one corruption to ``path``; returns the mode used."""
        mode = mode or self.rng.choice(CORRUPTION_MODES)
        try:
            # Stat first: corrupting damages existing files, the append
            # modes must never conjure a spool that was not there.
            size = os.path.getsize(path)
            if mode == "truncate":
                if size == 0:
                    return None
                os.truncate(path, self.rng.randrange(size))
            else:
                with open(path, "ab") as handle:
                    if mode == "tear":
                        handle.write(b'{"type":"torn","at":17')
                    elif mode == "garbage":
                        junk = bytes(
                            self.rng.randrange(256) for _ in range(24)
                        )
                        handle.write(junk.replace(b"\n", b"\x00") + b"\n")
                    else:  # non_event
                        handle.write(b'[1,2,{"not":"an event"}]\n')
        except OSError:
            return None
        self.corrupted.append((path, mode))
        return mode

    def corrupt_spool(
        self, directory: str, mode: str | None = None,
        suffixes: tuple[str, ...] = (".jsonl", ".jsonl.old"),
    ) -> tuple[str, str] | None:
        """Corrupt one random spool file under ``directory``."""
        try:
            names = sorted(
                name for name in os.listdir(directory)
                if name.endswith(suffixes)
            )
        except OSError:
            return None
        while names:
            name = names.pop(self.rng.randrange(len(names)))
            path = os.path.join(directory, name)
            used = self.corrupt_file(path, mode)
            if used is not None:
                return path, used
        return None

    def corrupt_document(self, path: str) -> bool:
        """Clobber an atomically-published JSON document in place.

        The atomic-rename protocol makes a torn *publish* impossible, but
        not a corrupted file (disk fault, a foreign writer): readers must
        drop the document, not crash or merge garbage.
        """
        try:
            with open(path, "rb") as handle:
                content = handle.read()
            with open(path, "wb") as handle:
                handle.write(content[: max(1, len(content) // 2)])
        except OSError:
            return False
        self.corrupted.append((path, "document"))
        return True


class ClockPerturber:
    """Forward-skewing clock plus a seeded latency tax for batch runners.

    :meth:`clock` stays monotone (skew only jumps forward), so it is safe
    to hand to :class:`repro.serve.qos.QoSController` -- perturbation
    compresses the controller's perceived sustain/cooldown windows without
    ever running time backwards.  :meth:`wrap_runner` adds a seeded delay
    to each executed batch, the injection point for service-time jitter.
    """

    def __init__(
        self,
        rng: random.Random | None = None,
        base_clock=time.monotonic,
        max_skew_s: float = 0.05,
        max_delay_s: float = 0.005,
    ):
        self.rng = rng or random.Random(0)
        self.base_clock = base_clock
        self.max_skew_s = float(max_skew_s)
        self.max_delay_s = float(max_delay_s)
        self._offset = 0.0
        self._lock = threading.Lock()

    def clock(self) -> float:
        with self._lock:
            return self.base_clock() + self._offset

    def perturb(self) -> float:
        """Jump the clock forward by a seeded skew; returns the jump."""
        jump = self.rng.uniform(0.0, self.max_skew_s)
        with self._lock:
            self._offset += jump
        return jump

    def wrap_runner(self, runner):
        """``runner`` plus a seeded pre-execution delay per batch."""

        def perturbed(payloads):
            delay = self.rng.uniform(0.0, self.max_delay_s)
            if delay > 0:
                time.sleep(delay)
            return runner(payloads)

        return perturbed
