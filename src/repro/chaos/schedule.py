"""Deterministic timed composition of fault injections.

A :class:`ChaosSchedule` is a list of ``(at_s, label, fn)`` entries fired
against wall clock relative to :meth:`run`'s start.  Entries come from
:meth:`at` (one shot) or :meth:`every` (periodic with seeded jitter,
expanded eagerly so the full timeline is fixed before anything runs --
reproducibility comes from expanding with the seeded RNG, not from racing
timers).  ``run`` executes in the calling thread; :meth:`run_in_thread`
drives the same timeline behind live traffic.

Actor exceptions are recorded per firing, never raised: a fault injector
that itself crashes must not abort the run mid-experiment (the log shows
what happened, and invariant checks decide pass/fail).
"""

from __future__ import annotations

import random
import threading
import time


class ChaosSchedule:
    """Seeded timeline of fault injections against a running stack."""

    def __init__(self, seed: int = 0, clock=time.monotonic, sleep=time.sleep):
        self.seed = int(seed)
        self.rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep
        self._entries: list[tuple[float, int, str, object]] = []
        self._seq = 0
        self.fired: list[dict] = []
        self._stop = threading.Event()

    def at(self, at_s: float, label: str, fn) -> "ChaosSchedule":
        """Fire ``fn()`` once, ``at_s`` seconds after the run starts."""
        self._entries.append((float(at_s), self._seq, label, fn))
        self._seq += 1
        return self

    def every(
        self,
        period_s: float,
        label: str,
        fn,
        *,
        until_s: float,
        start_s: float | None = None,
        jitter_s: float = 0.0,
    ) -> "ChaosSchedule":
        """Fire ``fn()`` every ``period_s`` (plus seeded jitter) until
        ``until_s``.  Expanded now, so the timeline is deterministic."""
        at = period_s if start_s is None else float(start_s)
        while at < until_s:
            jitter = self.rng.uniform(0.0, jitter_s) if jitter_s > 0 else 0.0
            self.at(at + jitter, label, fn)
            at += period_s
        return self

    @property
    def timeline(self) -> list[tuple[float, str]]:
        """The planned ``(at_s, label)`` firings, in firing order."""
        return [
            (at, label)
            for at, _seq, label, _fn in sorted(self._entries)
        ]

    def stop(self) -> None:
        """Abort the remaining timeline (the run returns promptly)."""
        self._stop.set()

    def run(self, until_s: float | None = None) -> list[dict]:
        """Fire the timeline; returns the per-firing log.

        Each log entry records the planned and actual offset, the label,
        the return value (repr) or the exception (repr) -- enough to
        replay and diff two runs of the same seed.
        """
        self._stop.clear()
        started = self._clock()
        for at_s, _seq, label, fn in sorted(self._entries):
            if until_s is not None and at_s > until_s:
                break
            if self._stop.is_set():
                break
            delay = at_s - (self._clock() - started)
            while delay > 0 and not self._stop.is_set():
                self._sleep(min(delay, 0.05))
                delay = at_s - (self._clock() - started)
            if self._stop.is_set():
                break
            record = {
                "label": label,
                "planned_at_s": at_s,
                "fired_at_s": self._clock() - started,
                "result": None,
                "error": None,
            }
            try:
                record["result"] = repr(fn())
            except Exception as exc:  # noqa: BLE001 - logged, never fatal
                record["error"] = repr(exc)
            self.fired.append(record)
        return self.fired

    def run_in_thread(self, until_s: float | None = None) -> threading.Thread:
        """Drive the timeline from a daemon thread (traffic runs in front)."""
        thread = threading.Thread(
            target=self.run,
            kwargs={"until_s": until_s},
            name=f"chaos-schedule-{self.seed}",
            daemon=True,
        )
        thread.start()
        return thread

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "planned": len(self._entries),
            "fired": len(self.fired),
            "errors": sum(
                1 for record in self.fired if record["error"] is not None
            ),
            "timeline": self.timeline,
        }
