"""Timed soak lane: minutes of overload, churn, and corruption.

``python -m repro.chaos.soak --duration 120 --seed 7`` drives the
in-process serving stack (forked worker replicas, real engines, real
admission and metrics) with open-loop overload for the requested wall
time while a seeded :class:`~repro.chaos.schedule.ChaosSchedule`
continuously SIGKILLs replicas, corrupts the telemetry spool, and skews
the perturber clock.  After the storm, a fault-free recovery probe must
succeed within its bound.

The verdict is the invariant summary: exactly-once response accounting
across the whole run, a follower that survived every corrupt line (and
counted them), replicas that respawned (or degraded explicitly within
budget), and post-fault recovery.  Exit status 0 iff every invariant
held; the JSON summary goes to stdout (and ``--out`` when given).

Everything is derived from ``--seed``, so a red soak reproduces by
re-running with the seed it printed.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time

from repro.chaos.actors import ClockPerturber, ProcessReaper, SpoolCorruptor
from repro.chaos.drive import ServingStack, drive_open_loop
from repro.chaos.invariants import InvariantChecker, ResponseLedger
from repro.chaos.schedule import ChaosSchedule
from repro.telemetry import bus as telemetry_bus
from repro.telemetry.bus import SpoolFollower


def run_soak(
    duration_s: float = 60.0,
    seed: int = 0,
    model: str = "resnet18",
    scale: str = "fast",
    fork_workers: int = 2,
    rate: float | None = None,
    kill_period_s: float = 5.0,
    corrupt_period_s: float = 2.0,
    budget_s: float = 2.0,
    recovery_bound_s: float = 30.0,
) -> dict:
    """One seeded soak run; returns the JSON-able summary."""
    rng = random.Random(seed)
    reaper = ProcessReaper(random.Random(rng.randrange(2**31)))
    corruptor = SpoolCorruptor(random.Random(rng.randrange(2**31)))
    perturber = ClockPerturber(random.Random(rng.randrange(2**31)))

    spool_dir = tempfile.mkdtemp(prefix="repro-chaos-soak-")
    bus = telemetry_bus.get_bus()
    bus.attach_spool(spool_dir, role="soak")
    follower = SpoolFollower(spool_dir)
    ledger = ResponseLedger()
    checker = InvariantChecker()
    started = time.monotonic()

    stack = ServingStack(
        model=model,
        scale=scale,
        fork_workers=fork_workers,
        runner_wrap=perturber.wrap_runner,
    )
    try:
        # Overload: twice the rough measured capacity unless given.
        if rate is None:
            probe = drive_open_loop(
                stack, rate=50.0, duration=1.0, budget_s=budget_s,
                ledger=ledger,
            )
            rate = max(10.0, 2.0 * probe["throughput_images_per_s"])

        schedule = ChaosSchedule(seed=seed)
        schedule.every(
            kill_period_s, "reap-replica",
            lambda: reaper.reap(stack.replica_pids()),
            until_s=duration_s, jitter_s=kill_period_s / 2,
        )
        schedule.every(
            corrupt_period_s, "corrupt-spool",
            lambda: corruptor.corrupt_spool(spool_dir),
            until_s=duration_s, jitter_s=corrupt_period_s / 2,
        )
        schedule.every(
            max(0.5, corrupt_period_s), "perturb-clock",
            perturber.perturb,
            until_s=duration_s, jitter_s=0.25,
        )
        chaos_thread = schedule.run_in_thread(until_s=duration_s)

        drive = drive_open_loop(
            stack, rate=rate, duration=duration_s, budget_s=budget_s,
            ledger=ledger,
        )
        schedule.stop()
        chaos_thread.join(timeout=30.0)

        # The follower must still be consuming events -- and accounting
        # for every corrupt line the schedule injected.
        follower.poll()
        follower_stats = follower.stats()

        # Fault-free recovery probes: the stack must serve again.
        recovery_started = time.monotonic()
        recovery = drive_open_loop(
            stack, rate=min(rate, 20.0), duration=2.0, budget_s=budget_s,
            ledger=ledger,
        )
        recovery_elapsed = time.monotonic() - recovery_started

        health = stack.replica_health()
        checker.check_ledger(ledger)
        checker.check(
            "served_under_churn",
            drive["completed"] > 0,
            f"completed {drive['completed']} of {drive['offered']} offered",
        )
        checker.check(
            "follower_survived_corruption",
            len(corruptor.corrupted) == 0
            or follower_stats["corrupt_lines"] > 0
            or all(mode == "tear" for _p, mode in corruptor.corrupted),
            f"{len(corruptor.corrupted)} corruptions injected, "
            f"follower counted {follower_stats['corrupt_lines']}",
        )
        checker.check(
            "replicas_respawned_or_failed_explicitly",
            health["live_replicas"] > 0 or health["failed_replicas"] > 0,
            repr(health),
        )
        checker.check_recovered(
            recovery["completed"],
            recovery["admitted"],
            recovery_bound_s,
            recovery_elapsed,
        )
    finally:
        stack.close()
        bus.detach_spool()
        shutil.rmtree(spool_dir, ignore_errors=True)
        from repro.eval.experiments.common import clear_harness_cache

        clear_harness_cache()

    return {
        "soak": {
            "seed": seed,
            "duration_s": duration_s,
            "rate_images_per_s": rate,
            "elapsed_s": time.monotonic() - started,
            "drive": drive,
            "recovery": recovery,
            "ledger": ledger.counts(),
            "replica_health": health,
            "spool": follower_stats,
            "faults": {
                "killed_pids": reaper.killed,
                "corruptions": [
                    {"path": path, "mode": mode}
                    for path, mode in corruptor.corrupted
                ],
                "schedule": schedule.describe(),
            },
            "invariants": checker.summary(),
        }
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="soak the NB-SMT serving stack under seeded chaos"
    )
    parser.add_argument("--duration", type=float, default=60.0,
                        help="soak wall time in seconds (default 60)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model", default="resnet18")
    parser.add_argument("--scale", default="fast", choices=["fast", "paper"])
    parser.add_argument("--fork-workers", type=int, default=2)
    parser.add_argument("--rate", type=float, default=None,
                        help="offered images/s (default: 2x measured)")
    parser.add_argument("--kill-period", type=float, default=5.0)
    parser.add_argument("--corrupt-period", type=float, default=2.0)
    parser.add_argument("--budget", type=float, default=2.0,
                        help="per-request latency budget in seconds")
    parser.add_argument("--out", default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args(argv)

    summary = run_soak(
        duration_s=args.duration,
        seed=args.seed,
        model=args.model,
        scale=args.scale,
        fork_workers=args.fork_workers,
        rate=args.rate,
        kill_period_s=args.kill_period,
        corrupt_period_s=args.corrupt_period,
        budget_s=args.budget,
    )
    print(json.dumps(summary, indent=2, default=str))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, default=str)
    verdict = summary["soak"]["invariants"]
    print(
        f"soak[seed={args.seed}]: "
        + ("PASS" if verdict["ok"] else "FAIL")
        + f" ({verdict['checked']} invariants, {verdict['failed']} failed)",
        file=sys.stderr,
    )
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
