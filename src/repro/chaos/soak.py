"""Timed soak lane: minutes of overload, churn, corruption, and starvation.

``python -m repro.chaos.soak --duration 120 --seed 7`` drives the
in-process serving stack (forked worker replicas, real engines, real
admission and metrics) with open-loop overload for the requested wall
time while a seeded :class:`~repro.chaos.schedule.ChaosSchedule`
continuously SIGKILLs replicas, corrupts the telemetry spool, skews the
perturber clock, and squeezes the spool's disk budget down to nothing
(and back).  ``--network-faults`` additionally runs a real HTTP front-end
and lets a :class:`~repro.chaos.actors.NetworkMangler` park slow-loris,
half-open, and byte-drip connections against it.  After the storm every
fault lifts and a fault-free recovery probe must succeed within its
bound.

``--long`` turns on the trend profile: RSS and spool-directory bytes are
sampled throughout and the verdict asserts both stayed bounded -- the
leak class (fd / memory / unbounded spool growth) that only shows up
over minutes.  ``scripts/check.sh --soak-long`` is the entry point.

The verdict is the invariant summary: exactly-once response accounting
(deadline expiries included) across the whole run, a follower that
survived every corrupt line (and counted them), writers that degraded
with counters -- never silently -- while the disk was squeezed, a
connection cap that never leaked, replicas that respawned (or degraded
explicitly within budget), and post-fault recovery.  Exit status 0 iff
every invariant held; the JSON summary goes to stdout (and ``--out``
when given) and includes per-class fault counters.

Everything is derived from ``--seed``, so a red soak reproduces by
re-running with the seed it printed.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import threading
import time

from repro.chaos.actors import (
    ClockPerturber,
    DiskFiller,
    NetworkMangler,
    ProcessReaper,
    SpoolCorruptor,
)
from repro.chaos.drive import HttpStack, ServingStack, drive_open_loop
from repro.chaos.invariants import InvariantChecker, ResponseLedger
from repro.chaos.schedule import ChaosSchedule
from repro.telemetry import bus as telemetry_bus
from repro.telemetry.bus import SpoolFollower
from repro.utils.diskbudget import DiskBudget, directory_bytes


def _rss_kb() -> int:
    """This process's resident set size in KiB (0 when unreadable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


class _TrendSampler(threading.Thread):
    """Periodic RSS + spool-size samples for the ``--long`` trend verdict."""

    def __init__(self, spool_dir: str, period_s: float = 2.0):
        super().__init__(name="soak-trend-sampler", daemon=True)
        self.spool_dir = spool_dir
        self.period_s = float(period_s)
        self.samples: list[dict] = []
        self._halt = threading.Event()

    def run(self) -> None:
        started = time.monotonic()
        while not self._halt.is_set():
            self.samples.append(
                {
                    "t_s": time.monotonic() - started,
                    "rss_kb": _rss_kb(),
                    "spool_bytes": directory_bytes(self.spool_dir),
                }
            )
            self._halt.wait(self.period_s)

    def stop(self) -> None:
        self._halt.set()

    def verdict(self, spool_budget_bytes: int) -> dict:
        """Trend numbers plus pass/fail per bound (checked by the caller).

        RSS must not keep climbing: the mean of the last quarter of
        samples is allowed 25% + 128 MiB over the first quarter (engines
        are warm before sampling starts, so steady state is the
        expectation).  The spool must respect its byte budget (plus one
        rescan interval of slack for writes admitted between rescans).
        """
        samples = list(self.samples)
        quarter = max(1, len(samples) // 4)
        head = samples[:quarter]
        tail = samples[-quarter:]
        head_rss = sum(s["rss_kb"] for s in head) / len(head)
        tail_rss = sum(s["rss_kb"] for s in tail) / len(tail)
        max_spool = max((s["spool_bytes"] for s in samples), default=0)
        rss_bound_kb = head_rss * 1.25 + 128 * 1024
        spool_bound = spool_budget_bytes + 1024 * 1024
        return {
            "samples": len(samples),
            "head_rss_kb": head_rss,
            "tail_rss_kb": tail_rss,
            "rss_bound_kb": rss_bound_kb,
            "rss_ok": len(samples) < 8 or tail_rss <= rss_bound_kb,
            "max_spool_bytes": max_spool,
            "spool_bound_bytes": spool_bound,
            "spool_ok": max_spool <= spool_bound,
            "enough_samples": len(samples) >= 8,
        }


def run_soak(
    duration_s: float = 60.0,
    seed: int = 0,
    model: str = "resnet18",
    scale: str = "fast",
    fork_workers: int = 2,
    rate: float | None = None,
    kill_period_s: float = 5.0,
    corrupt_period_s: float = 2.0,
    budget_s: float = 2.0,
    recovery_bound_s: float = 30.0,
    disk_faults: bool = True,
    network_faults: bool = False,
    deadline_ms: float | None = None,
    spool_budget_bytes: int = 8 * 1024 * 1024,
    long_profile: bool = False,
) -> dict:
    """One seeded soak run; returns the JSON-able summary."""
    rng = random.Random(seed)
    reaper = ProcessReaper(random.Random(rng.randrange(2**31)))
    corruptor = SpoolCorruptor(random.Random(rng.randrange(2**31)))
    perturber = ClockPerturber(random.Random(rng.randrange(2**31)))
    filler = DiskFiller(random.Random(rng.randrange(2**31)))
    mangler_rng = random.Random(rng.randrange(2**31))

    spool_dir = tempfile.mkdtemp(prefix="repro-chaos-soak-")
    spool_budget = DiskBudget(
        spool_dir, spool_budget_bytes, name="soak-spool"
    )
    bus = telemetry_bus.get_bus()
    bus.attach_spool(spool_dir, role="soak", budget=spool_budget)
    follower = SpoolFollower(spool_dir)
    ledger = ResponseLedger()
    checker = InvariantChecker()
    started = time.monotonic()

    stack = ServingStack(
        model=model,
        scale=scale,
        fork_workers=fork_workers,
        runner_wrap=perturber.wrap_runner,
    )
    http_stack = None
    mangler = None
    sampler = None
    network_summary = None
    trend = None
    try:
        if network_faults:
            http_stack = HttpStack(model=model, scale=scale)
            mangler = NetworkMangler(
                http_stack.host, http_stack.port, rng=mangler_rng
            )
        if long_profile:
            sampler = _TrendSampler(spool_dir)
            sampler.start()

        # Overload: twice the rough measured capacity unless given.
        if rate is None:
            probe = drive_open_loop(
                stack, rate=50.0, duration=1.0, budget_s=budget_s,
                ledger=ledger,
            )
            rate = max(10.0, 2.0 * probe["throughput_images_per_s"])

        schedule = ChaosSchedule(seed=seed)
        schedule.every(
            kill_period_s, "reap-replica",
            lambda: reaper.reap(stack.replica_pids()),
            until_s=duration_s, jitter_s=kill_period_s / 2,
        )
        schedule.every(
            corrupt_period_s, "corrupt-spool",
            lambda: corruptor.corrupt_spool(spool_dir),
            until_s=duration_s, jitter_s=corrupt_period_s / 2,
        )
        schedule.every(
            max(0.5, corrupt_period_s), "perturb-clock",
            perturber.perturb,
            until_s=duration_s, jitter_s=0.25,
        )
        if disk_faults:
            # Alternate squeeze / restore so the spool sees both the
            # fault and the lift repeatedly over the run.
            squeezed = {"on": False}

            def disk_fault_tick():
                if squeezed["on"]:
                    squeezed["on"] = False
                    return f"restored {filler.restore()}"
                squeezed["on"] = True
                return f"squeezed to {filler.squeeze(spool_budget)}"

            schedule.every(
                max(2.0, corrupt_period_s * 2), "squeeze-disk",
                disk_fault_tick,
                until_s=duration_s, jitter_s=0.5,
            )
        if mangler is not None:
            schedule.every(
                3.0, "mangle-network", mangler.inject,
                until_s=duration_s, jitter_s=1.0,
            )
        chaos_thread = schedule.run_in_thread(until_s=duration_s)

        drive = drive_open_loop(
            stack, rate=rate, duration=duration_s, budget_s=budget_s,
            ledger=ledger, deadline_ms=deadline_ms,
        )
        schedule.stop()
        chaos_thread.join(timeout=30.0)

        # Every fault lifts before the recovery phase.
        filler.restore()
        released = mangler.release_all() if mangler is not None else 0

        # The follower must still be consuming events -- and accounting
        # for every corrupt line the schedule injected.
        follower.poll()
        follower_stats = follower.stats()
        spool_stats = bus.spool_stats() or {}

        # Fault-free recovery probes: the stack must serve again.
        recovery_started = time.monotonic()
        recovery = drive_open_loop(
            stack, rate=min(rate, 20.0), duration=2.0, budget_s=budget_s,
            ledger=ledger,
        )
        recovery_elapsed = time.monotonic() - recovery_started

        health = stack.replica_health()
        checker.check_ledger(ledger)
        checker.check(
            "served_under_churn",
            drive["completed"] > 0,
            f"completed {drive['completed']} of {drive['offered']} offered",
        )
        checker.check(
            "follower_survived_corruption",
            len(corruptor.corrupted) == 0
            or follower_stats["corrupt_lines"] > 0
            or all(mode == "tear" for _p, mode in corruptor.corrupted),
            f"{len(corruptor.corrupted)} corruptions injected, "
            f"follower counted {follower_stats['corrupt_lines']}",
        )
        checker.check(
            "replicas_respawned_or_failed_explicitly",
            health["live_replicas"] > 0 or health["failed_replicas"] > 0,
            repr(health),
        )
        if disk_faults and filler.squeezed:
            # The squeeze must have produced *counted* degradation, never
            # an exception or a silent loss: the spool keeps a tally.
            checker.check(
                "spool_degraded_with_counters",
                spool_stats.get("dropped_events", 0) > 0,
                f"{len(filler.squeezed)} squeezes, spool stats "
                f"{spool_stats}",
            )
        if mangler is not None:
            http_started = time.monotonic()
            probe_image = stack.images[0:1]
            http_ok = 0
            http_probes = 5
            for _ in range(http_probes):
                try:
                    status, _payload = http_stack.probe(model, probe_image)
                except OSError:
                    status = 0
                http_ok += 1 if status == 200 else 0
            http_elapsed = time.monotonic() - http_started
            stats = http_stack.connection_stats()
            network_summary = {
                "mangled": [list(entry) for entry in mangler.mangled],
                "released": released,
                "connections": stats,
                "probes_ok": http_ok,
                "probes": http_probes,
            }
            checker.check(
                "connection_cap_never_leaked",
                stats["open"] <= stats["max"],
                f"open {stats['open']} of max {stats['max']}",
            )
            checker.check_recovered(
                http_ok, http_probes, recovery_bound_s, http_elapsed,
                name="http_recovery",
            )
        checker.check_recovered(
            recovery["completed"],
            recovery["admitted"],
            recovery_bound_s,
            recovery_elapsed,
        )
        if sampler is not None:
            sampler.stop()
            sampler.join(timeout=10.0)
            trend = sampler.verdict(spool_budget_bytes)
            checker.check(
                "rss_trend_bounded",
                trend["rss_ok"],
                f"head {trend['head_rss_kb']:.0f} KiB -> tail "
                f"{trend['tail_rss_kb']:.0f} KiB "
                f"(bound {trend['rss_bound_kb']:.0f} KiB, "
                f"{trend['samples']} samples)",
            )
            checker.check(
                "spool_growth_bounded",
                trend["spool_ok"],
                f"max {trend['max_spool_bytes']} bytes "
                f"(bound {trend['spool_bound_bytes']})",
            )
    finally:
        if sampler is not None:
            sampler.stop()
        filler.restore()
        if mangler is not None:
            mangler.release_all()
        if http_stack is not None:
            http_stack.close()
        stack.close()
        bus.detach_spool()
        shutil.rmtree(spool_dir, ignore_errors=True)
        from repro.eval.experiments.common import clear_harness_cache

        clear_harness_cache()

    return {
        "soak": {
            "seed": seed,
            "duration_s": duration_s,
            "rate_images_per_s": rate,
            "deadline_ms": deadline_ms,
            "elapsed_s": time.monotonic() - started,
            "drive": drive,
            "recovery": recovery,
            "ledger": ledger.counts(),
            "replica_health": health,
            "spool": follower_stats,
            "faults": {
                "killed_pids": reaper.killed,
                "corruptions": [
                    {"path": path, "mode": mode}
                    for path, mode in corruptor.corrupted
                ],
                "disk": {
                    "enabled": disk_faults,
                    "squeezes": [
                        {"budget": name, "to_bytes": to_bytes}
                        for name, to_bytes in filler.squeezed
                    ],
                    "spool_stats": spool_stats,
                },
                "network": {
                    "enabled": network_faults,
                    **(network_summary or {}),
                },
                "schedule": schedule.describe(),
            },
            "trend": trend,
            "invariants": checker.summary(),
        }
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="soak the NB-SMT serving stack under seeded chaos"
    )
    parser.add_argument("--duration", type=float, default=60.0,
                        help="soak wall time in seconds (default 60)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model", default="resnet18")
    parser.add_argument("--scale", default="fast", choices=["fast", "paper"])
    parser.add_argument("--fork-workers", type=int, default=2)
    parser.add_argument("--rate", type=float, default=None,
                        help="offered images/s (default: 2x measured)")
    parser.add_argument("--kill-period", type=float, default=5.0)
    parser.add_argument("--corrupt-period", type=float, default=2.0)
    parser.add_argument("--budget", type=float, default=2.0,
                        help="per-request latency budget in seconds")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="attach this deadline to every driven request")
    parser.add_argument("--no-disk-faults", action="store_true",
                        help="skip the disk-budget squeeze phases")
    parser.add_argument("--network-faults", action="store_true",
                        help="also run an HTTP front-end and mangle its "
                             "connections (slow-loris, half-open, drip)")
    parser.add_argument("--spool-budget-mb", type=float, default=8.0,
                        help="telemetry spool disk budget in MiB")
    parser.add_argument("--long", action="store_true",
                        help="trend profile: sample RSS and spool growth "
                             "and assert both stay bounded; implies "
                             "--network-faults")
    parser.add_argument("--out", default=None,
                        help="also write the JSON summary to this path")
    args = parser.parse_args(argv)

    summary = run_soak(
        duration_s=args.duration,
        seed=args.seed,
        model=args.model,
        scale=args.scale,
        fork_workers=args.fork_workers,
        rate=args.rate,
        kill_period_s=args.kill_period,
        corrupt_period_s=args.corrupt_period,
        budget_s=args.budget,
        disk_faults=not args.no_disk_faults,
        network_faults=args.network_faults or args.long,
        deadline_ms=args.deadline_ms,
        spool_budget_bytes=int(args.spool_budget_mb * 1024 * 1024),
        long_profile=args.long,
    )
    print(json.dumps(summary, indent=2, default=str))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, default=str)
    verdict = summary["soak"]["invariants"]
    print(
        f"soak[seed={args.seed}]: "
        + ("PASS" if verdict["ok"] else "FAIL")
        + f" ({verdict['checked']} invariants, {verdict['failed']} failed)",
        file=sys.stderr,
    )
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
