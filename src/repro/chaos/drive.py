"""A driveable in-process serving stack plus a ledgered open-loop driver.

The chaos suite, the soak lane, and the benchmark chaos arm all need the
same thing: the real serving data path (warm replica pool -> dynamic
batcher -> admission controller -> endpoint metrics) assembled in-process
where fault actors can reach its moving parts, and an open-loop arrival
driver whose per-request accounting feeds a
:class:`~repro.chaos.invariants.ResponseLedger`.  This module is that
shared harness -- the HTTP front-end is deliberately absent (the sharded
chaos tests cover it end-to-end); everything below the route layer is the
identical production code.
"""

from __future__ import annotations

import time

from repro.chaos.invariants import ResponseLedger
from repro.serve.deadline import Deadline, DeadlineExceeded


class ServingStack:
    """One endpoint's in-process serving stack, built for fault injection.

    ``fork_workers > 0`` backs the endpoint with forked worker processes
    (the :class:`~repro.chaos.actors.ProcessReaper`'s victims);
    ``runner_wrap`` interposes on the batch runner (the
    :class:`~repro.chaos.actors.ClockPerturber`'s injection point).
    """

    def __init__(
        self,
        model: str = "resnet18",
        scale: str = "fast",
        fork_workers: int = 0,
        threads: int = 2,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        max_pending: int = 64,
        provider=None,
        warm: bool = True,
        runner_wrap=None,
        images=None,
        **spec_overrides,
    ):
        from repro.serve.batcher import DynamicBatcher
        from repro.serve.metrics import EndpointMetrics
        from repro.serve.pool import EnginePool
        from repro.serve.registry import default_registry

        self.registry = default_registry(
            models=[model],
            threads=threads,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
            **spec_overrides,
        )
        self.spec = self.registry.get(model)
        self.pool = EnginePool(
            self.registry,
            scale=scale,
            fork_workers=fork_workers,
            provider=provider,
            warm=warm,
        )
        self.metrics = EndpointMetrics(
            self.spec.name, batch_capacity=self.spec.max_batch
        )
        self.admission = self.registry.admission(self.spec.name)
        runner = self.pool.runner_for(self.spec.name, metrics=self.metrics)
        if runner_wrap is not None:
            runner = runner_wrap(runner)
        self.batcher = DynamicBatcher(
            runner,
            max_batch=self.spec.max_batch,
            max_wait=self.spec.max_wait_ms / 1000.0,
            on_batch=self.metrics.record_batch,
            workers=max(1, self.pool.replica_count(self.spec.name)),
            name=f"chaos-{self.spec.name}",
        )
        # Drive images come from the zoo (or the caller), not a replica's
        # harness: with fork workers the parent keeps no harness, and a
        # reaped replica must not take the driver's input data with it.
        if images is None:
            from repro.models.zoo import load_dataset

            images = load_dataset(fast=(scale == "fast")).val_images
        self.images = images

    def replica_pids(self) -> list[int]:
        """Live forked-worker pids (the reaper's candidate list)."""
        return self.pool.replica_set(self.spec.name).worker_pids()

    def replica_health(self) -> dict:
        return self.pool.replica_set(self.spec.name).health()

    def close(self) -> None:
        self.batcher.close()
        self.pool.close()


def drive_open_loop(
    stack: ServingStack,
    *,
    rate: float,
    duration: float,
    budget_s: float = 1.0,
    ledger: ResponseLedger | None = None,
    settle_timeout_s: float = 120.0,
    deadline_ms=None,
) -> dict:
    """Open-loop single-image arrivals, every outcome ledgered.

    Mirrors the server's ``:predict`` path: admission check, batcher
    submit, future callback.  Faults make submits raise and futures carry
    exceptions -- both are *explicit errors* (the request was admitted and
    resolved), which is what the ledger verifies.  Returns the drive
    summary including within-budget goodput.

    ``deadline_ms`` attaches a deadline to each submitted request: a
    number applies uniformly, a callable is invoked with the request index
    (for mixed-deadline traffic) and may return ``None`` for no deadline.
    Requests the batcher cancels at expiry resolve as the ledger's
    ``expired`` outcome and are reported separately from errors.
    """
    ledger = ledger if ledger is not None else ResponseLedger()
    state = {
        "offered": 0,
        "admitted": 0,
        "shed": 0,
        "errored": 0,
        "completed": [],  # (latency,) tuples appended by callbacks
        "expired": [],  # one entry per deadline-expired request
    }
    images = stack.images
    admission = stack.admission
    pending = []
    # Request ids must be unique across drives sharing one ledger (the
    # soak lane drives the same stack in phases): offset by what the
    # ledger has already seen.
    counts_before = ledger.counts()
    id_base = counts_before["offered"]
    resolved_before = counts_before["resolved"]
    started = time.perf_counter()
    index = 0
    while True:
        arrival = started + index / rate
        if arrival - started >= duration:
            break
        delay = arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        image = images[index % images.shape[0] : index % images.shape[0] + 1]
        request_id = id_base + index
        index += 1
        state["offered"] += 1
        ledger.offer()
        if not admission.try_admit(1):
            stack.metrics.record_rejection(1)
            state["shed"] += 1
            ledger.shed_one()
            continue
        ledger.admit(request_id)
        budget_ms = deadline_ms(index - 1) if callable(deadline_ms) else (
            deadline_ms
        )
        deadline = (
            Deadline.after_ms(budget_ms) if budget_ms is not None else None
        )
        issued = time.perf_counter()
        try:
            future = stack.batcher.submit(image, size=1, deadline=deadline)
        except Exception:
            # An explicit, immediate error (e.g. batcher closed by a
            # fault): the admitted request is resolved as errored.
            admission.release(1)
            state["errored"] += 1
            ledger.resolve(request_id, "error")
            continue
        state["admitted"] += 1
        ledger.attach(request_id, future, admission=admission)

        def on_done(done, issued=issued):
            # list.append is atomic; callbacks fire from batcher threads.
            if done.cancelled():
                return
            exc = done.exception()
            if isinstance(exc, DeadlineExceeded):
                state["expired"].append(1)
                return
            if exc is not None:
                return
            state["completed"].append(time.perf_counter() - issued)

        future.add_done_callback(on_done)
        pending.append(future)
    for future in pending:
        try:
            future.result(timeout=settle_timeout_s)
        except Exception:  # noqa: BLE001 - errors are ledgered outcomes
            pass
    # result() can return before the done-callbacks ran: the ledger (and
    # completion list) settle on the callback, so wait for them.
    admitted_total = state["admitted"] + state["errored"]
    deadline = time.perf_counter() + 30.0
    while time.perf_counter() < deadline:
        if ledger.counts()["resolved"] - resolved_before >= admitted_total:
            break
        time.sleep(0.01)
    elapsed = time.perf_counter() - started
    latencies = sorted(state["completed"])
    expired = len(state["expired"])
    within = sum(1 for latency in latencies if latency <= budget_s)
    return {
        "offered": state["offered"],
        "shed": state["shed"],
        "admitted": state["admitted"] + state["errored"],
        "completed": len(latencies),
        "expired": expired,
        "errored": (
            state["offered"] - state["shed"] - len(latencies) - expired
        ),
        "within_budget": within,
        "elapsed_s": elapsed,
        "goodput_images_per_s": within / max(elapsed, 1e-9),
        "throughput_images_per_s": len(latencies) / max(elapsed, 1e-9),
        "p99_s": latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0,
    }


class HttpStack:
    """A real :class:`~repro.serve.server.NBSMTServer` on a background
    event-loop thread, for faults that need actual TCP sockets.

    :class:`~repro.chaos.actors.NetworkMangler` abuses live connections
    (slow-loris, half-open, byte-drip), so the in-process
    :class:`ServingStack` cannot host it -- this helper runs the full HTTP
    front-end (socket hardening included) and exposes the address, the
    server object (for connection/eviction counters), and a blocking
    :meth:`probe` that well-behaved traffic uses to prove the server kept
    serving alongside the mangled connections.
    """

    def __init__(
        self,
        model: str = "resnet18",
        scale: str = "fast",
        threads: int = 2,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        max_pending: int = 64,
        provider=None,
        warm: bool = True,
        start_timeout_s: float = 600.0,
        **server_kwargs,
    ):
        import asyncio
        import threading

        from repro.serve.registry import default_registry
        from repro.serve.server import NBSMTServer

        self.registry = default_registry(
            models=[model],
            threads=threads,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )
        from repro.serve.pool import EnginePool

        pool = EnginePool(
            self.registry, scale=scale, provider=provider, warm=warm
        )
        self.server = NBSMTServer(
            self.registry, pool=pool, port=0, **server_kwargs
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True, name="chaos-http"
        )
        self._thread.start()
        self._on_loop(self.server.start(), timeout=start_timeout_s)
        self.host = self.server.host
        self.port = self.server.port

    def _on_loop(self, coroutine, timeout: float = 300.0):
        import asyncio

        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout)

    def probe(
        self, name: str, image, deadline_ms: float | None = None,
        timeout_s: float = 60.0,
    ) -> tuple[int, dict]:
        """One well-behaved ``:predict`` over a fresh connection."""
        import http.client

        from repro.serve.client import predict_once

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        try:
            return predict_once(
                connection, name, image, deadline_ms=deadline_ms
            )
        finally:
            connection.close()

    def connection_stats(self) -> dict:
        return self.server.connection_stats()

    def close(self) -> None:
        try:
            self._on_loop(self.server.stop(), timeout=60.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._loop.close()
