"""Seeded fault injection for the NB-SMT serving stack.

The chaos lane promotes the conformance story from steady state to
failure state: :mod:`~repro.chaos.actors` provides deterministic fault
primitives (process reaping, spool corruption, peer freezing, clock
perturbation), :mod:`~repro.chaos.schedule` composes them into a seeded
timeline, :mod:`~repro.chaos.invariants` checks the contracts the stack
claims under fire, :mod:`~repro.chaos.drive` assembles the real serving
data path for in-process injection, and :mod:`~repro.chaos.soak` is the
minutes-scale soak CLI.  See ``docs/chaos.md``.
"""

from repro.chaos.actors import (
    CORRUPTION_MODES,
    ClockPerturber,
    PeerFreezer,
    ProcessReaper,
    SpoolCorruptor,
)
from repro.chaos.invariants import (
    InvariantChecker,
    LedgerViolation,
    ResponseLedger,
)
from repro.chaos.schedule import ChaosSchedule

__all__ = [
    "CORRUPTION_MODES",
    "ChaosSchedule",
    "ClockPerturber",
    "InvariantChecker",
    "LedgerViolation",
    "PeerFreezer",
    "ProcessReaper",
    "ResponseLedger",
    "SpoolCorruptor",
]
