"""The contracts a chaos run must prove, as checkable objects.

:class:`ResponseLedger` is the core bookkeeping: every request the driver
offers is recorded, and the terminal outcome (ok / explicit error / shed)
must be recorded **exactly once** -- a lost response (admitted, never
resolved) and a double response (resolved twice) are both violations, which
is precisely the "every admitted request gets exactly one response or one
explicit error" contract the serving stack claims.

:class:`InvariantChecker` accumulates named pass/fail results (ledger
exactness, merged-metrics exactness, coordinator convergence, stale-spool
reaping, recovery bounds) into one summary that tests assert on and the
soak lane prints as its verdict.
"""

from __future__ import annotations

import threading

#: Terminal outcomes a ledger accepts for an admitted request.  ``expired``
#: is an *explicit* answer too: the batcher cancelled the request before
#: compute because its deadline passed, and the client was told so -- shed
#: accounting, never a silent drop.
OUTCOMES = ("ok", "error", "expired")


class LedgerViolation(AssertionError):
    """A response-accounting contract was broken during a chaos run."""


class ResponseLedger:
    """Exactly-once response accounting for one chaos drive.

    Thread-safe: the open-loop driver admits from one thread while future
    callbacks resolve from batcher worker threads.  ``attach`` wires a
    future's terminal state into the ledger (and releases admission) so
    drivers do not hand-roll callbacks.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._admitted: dict[object, int] = {}
        self._outcomes: dict[object, list[str]] = {}
        self.offered = 0
        self.shed = 0

    def offer(self) -> None:
        with self._lock:
            self.offered += 1

    def shed_one(self) -> None:
        with self._lock:
            self.shed += 1

    def admit(self, request_id) -> None:
        with self._lock:
            self._admitted[request_id] = self._admitted.get(request_id, 0) + 1

    def resolve(self, request_id, outcome: str) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._outcomes.setdefault(request_id, []).append(outcome)

    def attach(self, request_id, future, admission=None, images: int = 1):
        """Resolve ``request_id`` from ``future``'s terminal state.

        A cancelled future or one carrying an exception is an *explicit
        error* (the client observed a failure) -- except
        :class:`~repro.serve.deadline.DeadlineExceeded`, which maps to the
        ``expired`` outcome (the batcher shed the dead request before
        compute and said so).  A result is ``ok``.  ``admission`` (an
        :class:`~repro.serve.registry.AdmissionController`) is released
        exactly once, whatever the outcome.
        """
        from repro.serve.deadline import DeadlineExceeded

        def on_done(done):
            if admission is not None:
                admission.release(images)
            if done.cancelled():
                self.resolve(request_id, "error")
                return
            exc = done.exception()
            if exc is None:
                self.resolve(request_id, "ok")
            elif isinstance(exc, DeadlineExceeded):
                self.resolve(request_id, "expired")
            else:
                self.resolve(request_id, "error")

        future.add_done_callback(on_done)

    # -- accounting --------------------------------------------------------
    def counts(self) -> dict:
        with self._lock:
            outcomes = [
                outcome
                for results in self._outcomes.values()
                for outcome in results
            ]
            return {
                "offered": self.offered,
                "shed": self.shed,
                "admitted": len(self._admitted),
                "resolved": len(self._outcomes),
                "ok": outcomes.count("ok"),
                "error": outcomes.count("error"),
                "expired": outcomes.count("expired"),
            }

    def violations(self) -> list[str]:
        """Every way the exactly-once contract was broken (empty = clean)."""
        problems: list[str] = []
        with self._lock:
            for request_id, times in self._admitted.items():
                if times > 1:
                    problems.append(
                        f"request {request_id!r} admitted {times} times"
                    )
                results = self._outcomes.get(request_id)
                if results is None:
                    problems.append(
                        f"request {request_id!r} admitted but never resolved"
                        " (lost response)"
                    )
                elif len(results) > 1:
                    problems.append(
                        f"request {request_id!r} resolved {len(results)} "
                        f"times: {results} (double-counted response)"
                    )
            for request_id in self._outcomes:
                if request_id not in self._admitted:
                    problems.append(
                        f"request {request_id!r} resolved without admission"
                    )
        return problems

    def assert_exact(self) -> None:
        problems = self.violations()
        if problems:
            raise LedgerViolation(
                "response ledger violated:\n  " + "\n  ".join(problems)
            )


class InvariantChecker:
    """Named pass/fail results of one chaos run, with helpers per contract."""

    def __init__(self):
        self._lock = threading.Lock()
        self.results: list[dict] = []

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        with self._lock:
            self.results.append(
                {"name": name, "ok": bool(ok), "detail": detail}
            )
        return bool(ok)

    # -- the serving stack's contracts -------------------------------------
    def check_ledger(self, ledger: ResponseLedger, name: str = "ledger_exact"):
        problems = ledger.violations()
        return self.check(name, not problems, "; ".join(problems[:5]))

    def check_metrics_exact(
        self, observed: int, expected: int, name: str = "metrics_exact"
    ):
        return self.check(
            name,
            observed == expected,
            f"observed {observed}, expected {expected}",
        )

    def check_single_rung(self, levels, name: str = "rung_converged"):
        """All live shards/replicas serve the same rung after release."""
        distinct = sorted(set(levels))
        return self.check(
            name, len(distinct) == 1, f"levels observed: {distinct}"
        )

    def check_reaped(self, paths, name: str = "stale_spools_reaped"):
        import os

        leftovers = [path for path in paths if os.path.exists(path)]
        return self.check(name, not leftovers, f"still on disk: {leftovers}")

    def check_recovered(
        self, ok: int, attempted: int, bound_s: float, elapsed_s: float,
        name: str = "recovery",
    ):
        """Alert-free recovery: post-fault probes all succeed in bound."""
        return self.check(
            name,
            ok == attempted and elapsed_s <= bound_s,
            f"{ok}/{attempted} probes ok in {elapsed_s:.2f}s "
            f"(bound {bound_s:.2f}s)",
        )

    # -- verdict -----------------------------------------------------------
    @property
    def ok(self) -> bool:
        with self._lock:
            return all(result["ok"] for result in self.results)

    def failures(self) -> list[dict]:
        with self._lock:
            return [result for result in self.results if not result["ok"]]

    def summary(self) -> dict:
        with self._lock:
            results = [dict(result) for result in self.results]
        return {
            "ok": all(result["ok"] for result in results),
            "checked": len(results),
            "failed": sum(1 for result in results if not result["ok"]),
            "results": results,
        }

    def assert_all(self) -> None:
        failed = self.failures()
        if failed:
            lines = [
                f"{result['name']}: {result['detail']}" for result in failed
            ]
            raise AssertionError(
                "chaos invariants violated:\n  " + "\n  ".join(lines)
            )
