"""Command-line interface for the reproduction.

Provides three subcommands:

``repro-experiments``-style usage (via ``python -m repro.cli``):

* ``list`` -- show the experiment registry (one entry per paper table/figure).
* ``run <experiment> [...]`` -- run one or more experiments and print the
  formatted tables (equivalent to ``examples/reproduce_paper.py``).
* ``zoo`` -- train/load the scaled-down model zoo and print a summary.

The CLI is a thin layer over :mod:`repro.eval.experiments` so that results
are identical to the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.eval.experiments import EXPERIMENTS


def _cmd_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, module in EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.eval.sweep import SweepSession

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known experiments: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    # One session spans all selected experiments, so sweep points shared
    # between experiments (e.g. Fig. 8 / Fig. 9) are computed once and a
    # --resume run continues from whatever points already completed.
    session = SweepSession(
        scale=args.scale, workers=args.workers, resume=args.resume
    )
    for name in names:
        module = EXPERIMENTS[name]
        start = time.time()
        print(f"\n=== {name} ===")
        result = module.run(scale=args.scale, session=session)
        print(module.format_result(result))
        print(f"[{name} finished in {time.time() - start:.1f}s]")
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.models.zoo import MODEL_BUILDERS, load_trained_model
    from repro.utils.tables import format_table

    rows = []
    names = args.models or sorted(MODEL_BUILDERS)
    for name in names:
        trained = load_trained_model(name, fast=(args.scale == "fast"))
        rows.append(
            (
                trained.display_name,
                trained.model.num_parameters(),
                f"{100 * trained.fp32_accuracy:.1f}%",
            )
        )
    print(format_table(["Model", "Parameters", "FP32 top-1"], rows,
                       title="Scaled-down model zoo"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NB-SMT / SySMT reproduction (Shomron & Weiser, MICRO 2020)",
    )
    parser.add_argument(
        "--scale",
        choices=("fast", "full"),
        default="fast",
        help="experiment scale (fast: small eval sets; full: larger protocol)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker budget for the sweep scheduler (points x image shards; "
        "never oversubscribes the machine)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse sweep points persisted by earlier runs instead of "
        "recomputing them (continue an interrupted suite)",
    )
    run_parser.set_defaults(func=_cmd_run)

    zoo_parser = subparsers.add_parser("zoo", help="train/load the model zoo")
    zoo_parser.add_argument("models", nargs="*", metavar="MODEL")
    zoo_parser.set_defaults(func=_cmd_zoo)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
