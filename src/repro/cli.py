"""Command-line interface for the reproduction.

``repro-experiments``-style usage (via ``python -m repro.cli``):

* ``list`` -- show the experiment registry (one entry per paper table/figure).
* ``run <experiment> [...]`` -- run one or more experiments and print the
  formatted tables (equivalent to ``examples/reproduce_paper.py``).
* ``zoo`` -- train/load the scaled-down model zoo and print a summary.
* ``serve`` -- start the dynamically-batched NB-SMT inference server
  (:mod:`repro.serve`) for selected zoo models.
* ``client`` -- closed-loop load generator against a running server.

The CLI is a thin layer over :mod:`repro.eval.experiments` and
:mod:`repro.serve` so that results are identical to the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.eval.experiments import EXPERIMENTS


def _cmd_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, module in EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.eval.sweep import SweepSession

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known experiments: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    # One session spans all selected experiments, so sweep points shared
    # between experiments (e.g. Fig. 8 / Fig. 9) are computed once and a
    # --resume run continues from whatever points already completed.
    session = SweepSession(
        scale=args.scale, workers=args.workers, resume=args.resume
    )
    for name in names:
        module = EXPERIMENTS[name]
        start = time.time()
        print(f"\n=== {name} ===")
        result = module.run(scale=args.scale, session=session)
        print(module.format_result(result))
        print(f"[{name} finished in {time.time() - start:.1f}s]")
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.models.zoo import MODEL_BUILDERS, load_trained_model
    from repro.utils.tables import format_table

    rows = []
    names = args.models or sorted(MODEL_BUILDERS)
    for name in names:
        trained = load_trained_model(name, fast=(args.scale == "fast"))
        rows.append(
            (
                trained.display_name,
                trained.model.num_parameters(),
                f"{100 * trained.fp32_accuracy:.1f}%",
            )
        )
    print(format_table(["Model", "Parameters", "FP32 top-1"], rows,
                       title="Scaled-down model zoo"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.registry import default_registry
    from repro.serve.server import run_server

    overrides = {
        "threads": args.threads,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "max_pending": args.max_pending,
        "collect_stats": not args.no_stats,
        "ladder_rungs": args.ladder_rungs,
        "slow_threads": args.slow_threads,
        "latency_budget_ms": args.latency_budget_ms,
        "pace_sysmt": args.pace,
    }
    if args.policy is not None:
        overrides["policy"] = args.policy
    registry = default_registry(models=args.models or ["resnet18"], **overrides)
    if args.shards > 1:
        from repro.serve.sharding import run_sharded

        run_sharded(
            registry,
            shards=args.shards,
            host=args.host,
            port=args.port,
            scale=args.scale,
            fork_workers=args.fork_workers,
        )
        return 0
    run_server(
        registry=registry,
        scale=args.scale,
        fork_workers=args.fork_workers,
        host=args.host,
        port=args.port,
    )
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.models.zoo import load_dataset
    from repro.serve.client import fetch_json, run_load
    from repro.utils.tables import format_table

    dataset = load_dataset(fast=(args.scale == "fast"))
    images = dataset.val_images[: args.pool_images]
    labels = dataset.val_labels[: args.pool_images]
    report = run_load(
        args.url,
        args.model,
        images,
        labels,
        requests=args.requests,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        mode=args.mode,
        rate=args.rate,
        latency_budget_ms=args.latency_budget_ms,
    )
    summary = report.summary()
    rows = [(key, f"{value:.4g}" if isinstance(value, float) else str(value))
            for key, value in summary.items()]
    print(format_table(["Metric", "Value"], rows,
                       title=f"Load report: {args.model} @ {args.url}"))
    if args.show_metrics:
        metrics = fetch_json(args.url, "/v1/metrics")
        endpoint = metrics.get("endpoints", {}).get(args.model)
        if endpoint:
            print(
                f"server: batches={endpoint['batches']} "
                f"mean_batch={endpoint['mean_batch_size']:.2f} "
                f"fill={endpoint['batch_fill']:.2f} "
                f"p99={endpoint['latency']['p99_s'] * 1000:.1f}ms"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NB-SMT / SySMT reproduction (Shomron & Weiser, MICRO 2020)",
    )
    parser.add_argument(
        "--scale",
        choices=("fast", "full"),
        default="fast",
        help="experiment scale (fast: small eval sets; full: larger protocol)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker budget for the sweep scheduler (points x image shards; "
        "never oversubscribes the machine)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse sweep points persisted by earlier runs instead of "
        "recomputing them (continue an interrupted suite)",
    )
    run_parser.set_defaults(func=_cmd_run)

    zoo_parser = subparsers.add_parser("zoo", help="train/load the model zoo")
    zoo_parser.add_argument("models", nargs="*", metavar="MODEL")
    zoo_parser.set_defaults(func=_cmd_zoo)

    serve_parser = subparsers.add_parser(
        "serve", help="start the dynamically-batched NB-SMT inference server"
    )
    serve_parser.add_argument(
        "models",
        nargs="*",
        metavar="MODEL",
        default=None,
        help="zoo models to serve (default: resnet18)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8421)
    serve_parser.add_argument(
        "--threads", type=int, default=4, help="NB-SMT threads per endpoint"
    )
    serve_parser.add_argument(
        "--policy", default=None, help="packing policy (default: per-model)"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=32, help="images per engine call"
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="batching latency budget for the oldest queued request",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=512,
        help="admission budget: in-flight images before shedding (429)",
    )
    serve_parser.add_argument(
        "--fork-workers",
        type=int,
        default=0,
        help="forked worker replicas per endpoint (0 = serve in-process)",
    )
    serve_parser.add_argument(
        "--no-stats",
        action="store_true",
        help="skip NB-SMT statistics collection on the serving path",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="front-end server processes sharing the port via SO_REUSEPORT "
        "(1 = single process)",
    )
    serve_parser.add_argument(
        "--ladder-rungs",
        type=int,
        default=0,
        help="operating-point ladder size per endpoint (>1 enables the "
        "adaptive QoS controller; rung 0 slows the N-1 highest-MSE layers)",
    )
    serve_parser.add_argument(
        "--slow-threads",
        type=int,
        default=2,
        help="thread count of throttled (slowed) layers on the ladder",
    )
    serve_parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=0.0,
        help="per-request service objective the QoS controller defends "
        "(0 = no latency term in the overload signal)",
    )
    serve_parser.add_argument(
        "--pace",
        action="store_true",
        help="pace batches to the modeled SySMT service time of the active "
        "operating point (the host functional simulation is cost-inverted)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    client_parser = subparsers.add_parser(
        "client", help="closed-loop load generator against a running server"
    )
    client_parser.add_argument("model", metavar="MODEL")
    client_parser.add_argument("--url", default="http://127.0.0.1:8421")
    client_parser.add_argument("--requests", type=int, default=100)
    client_parser.add_argument("--concurrency", type=int, default=8)
    client_parser.add_argument(
        "--batch-size", type=int, default=1, help="images per request"
    )
    client_parser.add_argument(
        "--pool-images",
        type=int,
        default=128,
        help="validation images cycled through by the generator",
    )
    client_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (back-to-back) or open loop (fixed arrival rate; "
        "the only way to generate sustained overload)",
    )
    client_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in requests/second",
    )
    client_parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=None,
        help="count responses within this budget (reports goodput)",
    )
    client_parser.add_argument(
        "--show-metrics",
        action="store_true",
        help="also fetch and summarize the server-side /v1/metrics",
    )
    client_parser.set_defaults(func=_cmd_client)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
