"""Command-line interface for the reproduction.

``repro-experiments``-style usage (via ``python -m repro.cli``):

* ``list`` -- show the experiment registry (one entry per paper table/figure).
* ``run <experiment> [...]`` -- run one or more experiments and print the
  formatted tables (equivalent to ``examples/reproduce_paper.py``).
* ``zoo`` -- train/load the scaled-down model zoo and print a summary.
* ``serve`` -- start the dynamically-batched NB-SMT inference server
  (:mod:`repro.serve`) for selected zoo models.
* ``client`` -- closed-loop load generator against a running server.
* ``dash`` -- standalone telemetry dashboard over an event-spool
  directory (a live sweep's ``--telemetry-dir`` or a sharded service's).

``run`` shows a live one-line progress ticker (points done/total, reuse
hits, ETA) sourced from the telemetry event bus; ``--no-progress``
silences it (e.g. when piping output).

The CLI is a thin layer over :mod:`repro.eval.experiments` and
:mod:`repro.serve` so that results are identical to the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.eval.experiments import EXPERIMENTS


def _cmd_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, module in EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {summary}")
    return 0


class _ProgressTicker:
    """Live one-line sweep progress sourced from the telemetry spool.

    The parent and every forked sweep worker publish point events into one
    spool directory; the ticker follows it, folds the events through the
    :class:`~repro.telemetry.timeseries.TelemetryAggregator` (the same
    consumer the dashboard uses) and redraws one ``\\r`` status line on
    stderr twice a second.
    """

    def __init__(self, spool_dir: str):
        import threading

        from repro.telemetry.bus import SpoolFollower
        from repro.telemetry.timeseries import TelemetryAggregator

        self.follower = SpoolFollower(spool_dir)
        self.aggregator = TelemetryAggregator()
        self._stop = threading.Event()
        self._pause = threading.Event()
        self._drawn = False
        self._thread = threading.Thread(
            target=self._loop, name="sweep-ticker", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _line(self) -> str:
        sweep = self.aggregator.snapshot()["sweep"]
        label = f"[{sweep['experiment']}] " if sweep["experiment"] else ""
        eta = ""
        if not sweep["finished"] and sweep["eta_s"] is not None:
            eta = f" ETA {sweep['eta_s']:.0f}s"
        rate = (
            f" {sweep['points_per_s']:.2f}/s" if sweep["points_per_s"] else ""
        )
        workers = sum(
            1 for entry in sweep["workers"].values() if entry.get("alive")
        )
        workers_note = f" workers {workers}" if workers else ""
        return (
            f"{label}{sweep['done']}/{sweep['total']} points "
            f"({sweep['reused']} reused{rate}{eta}{workers_note})"
        )

    def _loop(self) -> None:
        while not self._stop.wait(0.5):
            self.aggregator.consume_all(self.follower.poll())
            if self._pause.is_set():
                continue
            print(f"\r\x1b[K{self._line()}", end="", file=sys.stderr,
                  flush=True)
            self._drawn = True

    def _clear(self) -> None:
        if self._drawn:
            print("\r\x1b[K", end="", file=sys.stderr, flush=True)
            self._drawn = False

    def pause(self) -> None:
        """Blank the status line while tables print (no interleaving)."""
        self._pause.set()
        self._clear()

    def resume(self) -> None:
        self._pause.clear()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        # One final catch-up so the summary reflects every event.
        self.aggregator.consume_all(self.follower.poll())
        self._clear()

    def summary(self) -> str:
        return self._line()


def _cmd_run(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from repro.eval.sweep import SweepSession
    from repro.telemetry import bus as telemetry_bus

    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"known experiments: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    # One session spans all selected experiments, so sweep points shared
    # between experiments (e.g. Fig. 8 / Fig. 9) are computed once and a
    # --resume run continues from whatever points already completed.
    session = SweepSession(
        scale=args.scale, workers=args.workers, resume=args.resume
    )
    # Telemetry: parent and forked workers spool their events into one
    # directory; the progress ticker (and any `repro.cli dash --dir`)
    # follows it.  An explicit --telemetry-dir survives the run.  With
    # --no-progress and no explicit directory there is no possible
    # consumer, so nothing is attached and the hot path stays event-free.
    spool_dir = args.telemetry_dir
    owns_spool = spool_dir is None and not args.no_progress
    bus = telemetry_bus.get_bus()
    ticker = None
    if spool_dir is not None or not args.no_progress:
        if owns_spool:
            spool_dir = tempfile.mkdtemp(prefix="repro-telemetry-")
        bus.configure_source(role="sweep")
        bus.attach_spool(spool_dir, role="sweep")
    if not args.no_progress:
        ticker = _ProgressTicker(spool_dir)
        ticker.start()
    hub = None
    if args.listen is not None:
        from repro.cluster.worker import SweepHub

        listen = (
            args.listen if ":" in args.listen else f"127.0.0.1:{args.listen}"
        )
        hub = SweepHub.create(session, listen=listen, telemetry_dir=spool_dir)
        session.hub = hub
        host, port = hub.address
        print(
            f"sweep hub: listening on {host}:{port} (connect executors "
            f"with `repro.cli worker --connect {host}:{port}`; "
            f"trace {hub.trace_id})",
            file=sys.stderr,
        )
    try:
        for name in names:
            module = EXPERIMENTS[name]
            start = time.time()
            print(f"\n=== {name} ===")
            telemetry_bus.publish("experiment_started", name=name)
            result = module.run(scale=args.scale, session=session)
            if ticker is not None:
                ticker.pause()
            print(module.format_result(result))
            print(f"[{name} finished in {time.time() - start:.1f}s]")
            if ticker is not None:
                ticker.resume()
    finally:
        if hub is not None:
            hub.close()
        if ticker is not None:
            ticker.stop()
            print(f"sweep: {ticker.summary()}", file=sys.stderr)
        if spool_dir is not None:
            bus.detach_spool()
        if owns_spool:
            shutil.rmtree(spool_dir, ignore_errors=True)
        elif args.telemetry_dir is not None:
            print(f"telemetry spool kept at {spool_dir}", file=sys.stderr)
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro.models.zoo import MODEL_BUILDERS, load_trained_model
    from repro.utils.tables import format_table

    rows = []
    names = args.models or sorted(MODEL_BUILDERS)
    for name in names:
        trained = load_trained_model(name, fast=(args.scale == "fast"))
        rows.append(
            (
                trained.display_name,
                trained.model.num_parameters(),
                f"{100 * trained.fp32_accuracy:.1f}%",
            )
        )
    print(format_table(["Model", "Parameters", "FP32 top-1"], rows,
                       title="Scaled-down model zoo"))
    return 0


def _load_alert_rules(path: str | None):
    """Parse a ``--alert-rules`` JSON file (a list of rule objects)."""
    if path is None:
        return None
    import json

    from repro.telemetry.alerts import AlertRule

    with open(path, encoding="utf-8") as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise ValueError("--alert-rules file must hold a JSON list of rules")
    return [AlertRule.from_dict(document) for document in documents]


def _load_alert_routes(path: str | None):
    """Parse an ``--alert-routes`` JSON file (a list of route objects)."""
    if path is None:
        return None
    import json

    from repro.telemetry.alerts import SinkRoute

    with open(path, encoding="utf-8") as handle:
        documents = json.load(handle)
    if not isinstance(documents, list):
        raise ValueError("--alert-routes file must hold a JSON list of routes")
    return [SinkRoute.from_dict(document) for document in documents]


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.registry import default_registry
    from repro.serve.server import run_server

    alert_kwargs = {
        "alerts": not args.no_alerts,
        "alert_rules": _load_alert_rules(args.alert_rules),
        "alert_webhook": args.alert_webhook,
        "alert_routes": _load_alert_routes(args.alert_routes),
        "probe_interval_s": args.probe_interval_s,
        "tracing": not args.no_trace,
        "trace_sample": args.trace_sample,
    }
    overrides = {
        "threads": args.threads,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "max_pending": args.max_pending,
        "collect_stats": not args.no_stats,
        "ladder_rungs": args.ladder_rungs,
        "slow_threads": args.slow_threads,
        "latency_budget_ms": args.latency_budget_ms,
        "pace_sysmt": args.pace,
    }
    if args.policy is not None:
        overrides["policy"] = args.policy
    registry = default_registry(models=args.models or ["resnet18"], **overrides)
    spool_budget_bytes = int(args.spool_budget_mb * 1024 * 1024)
    if args.federate is not None:
        # Cross-machine federation: this process's metrics exchange, QoS
        # quorum and telemetry spool all flow through the cluster agent at
        # --federate, so servers on different hosts form one service.
        if args.shards > 1:
            print(
                "--federate federates whole processes; run one `serve "
                "--federate` per machine instead of combining it with "
                "--shards",
                file=sys.stderr,
            )
            return 2
        from repro.cluster.documents import DocumentStore
        from repro.cluster.transport import RemoteSpoolWriter, SocketTransport
        from repro.serve.sharding import ShardMetricsExchange
        from repro.telemetry import bus as telemetry_bus
        from repro.telemetry.coordinator import (
            QoSCoordinator,
            ShardStateChannel,
        )

        index, count = args.fed_index, args.fed_count
        if not 0 <= index < count:
            print("--fed-index must be in [0, --fed-count)", file=sys.stderr)
            return 2
        transport = SocketTransport(
            args.federate, node=f"serve-{index}", role="serve"
        )
        exchange = ShardMetricsExchange(
            None, index, count, store=DocumentStore(transport, "exchange")
        )
        coordinator = None
        if not args.no_coordinate:
            coordinator = QoSCoordinator(
                ShardStateChannel(
                    None, index, count, store=DocumentStore(transport, "qos")
                ),
                min_publish_s=1.0,
                gather_cache_s=0.1,
            )
        telemetry_bus.get_bus().attach_spool_sink(
            RemoteSpoolWriter(transport, "telemetry", role="serve")
        )
        run_server(
            registry=registry,
            scale=args.scale,
            fork_workers=args.fork_workers,
            host=args.host,
            port=args.port,
            shard_exchange=exchange,
            shard_index=index,
            coordinator=coordinator,
            max_connections=args.max_connections,
            spool_budget_bytes=spool_budget_bytes,
            **alert_kwargs,
        )
        return 0
    if args.shards > 1:
        from repro.serve.sharding import run_sharded

        run_sharded(
            registry,
            shards=args.shards,
            host=args.host,
            port=args.port,
            scale=args.scale,
            fork_workers=args.fork_workers,
            exchange_dir=args.telemetry_dir,
            coordinate=not args.no_coordinate,
            exchange_budget_bytes=spool_budget_bytes,
            max_connections=args.max_connections,
            **alert_kwargs,
        )
        return 0
    run_server(
        registry=registry,
        scale=args.scale,
        fork_workers=args.fork_workers,
        host=args.host,
        port=args.port,
        telemetry_dir=args.telemetry_dir,
        max_connections=args.max_connections,
        spool_budget_bytes=spool_budget_bytes,
        **alert_kwargs,
    )
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry.dashboard import run_dashboard

    # A sharded server keeps its event spool under `<exchange>/telemetry`
    # (the exchange root holds only shard-*.json documents): pointing
    # `dash` at the exchange dir must find the events, not show an empty
    # dashboard.
    directory = args.dir
    nested = os.path.join(directory, "telemetry")
    try:
        has_spools = any(
            name.endswith((".jsonl", ".jsonl.old"))
            for name in os.listdir(directory)
        )
    except OSError:
        has_spools = False
    if not has_spools and os.path.isdir(nested):
        print(f"repro.telemetry: following {nested}", flush=True)
        directory = nested
    run_dashboard(spool_dir=directory, host=args.host, port=args.port)
    return 0


def _silence_rule(args: argparse.Namespace) -> int:
    """Write a silence window into the shared silence document.

    Targets ``<dir>/history`` when it exists (a server's history ring
    directory), else ``<dir>`` itself; every engine sharing the
    directory picks the window up within its ~1s refresh.
    """
    import os
    import time as _time

    from repro.cluster.documents import DocumentStore
    from repro.telemetry.alerts import SILENCE_DOCUMENT

    directory = args.dir
    nested = os.path.join(directory, "history")
    if os.path.isdir(nested):
        directory = nested
    store = DocumentStore.for_directory(directory)
    document = store.get(SILENCE_DOCUMENT) or {}
    silences = document.get("silences")
    if not isinstance(silences, dict):
        silences = {}
    deadline = _time.time() + max(0.0, args.for_s)
    previous = silences.get(args.silence)
    silences[args.silence] = max(
        float(previous) if isinstance(previous, (int, float)) else 0.0,
        deadline,
    )
    store.put(SILENCE_DOCUMENT, {"silences": silences})
    until = _time.strftime(
        "%H:%M:%S", _time.localtime(silences[args.silence])
    )
    print(
        f"alerts: silenced rule {args.silence!r} for {args.for_s:g}s "
        f"(until {until}, via {directory})"
    )
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    """Follow a spool directory; print the alert lifecycle as it happens."""
    import json
    import time as _time

    from repro.telemetry.alerts import (
        ALERT_EVENT_TYPES,
        AlertEngine,
        AlertRule,
        default_rules,
    )
    from repro.telemetry.bus import SpoolFollower

    if args.silence is not None:
        return _silence_rule(args)

    def show(alert: dict, derived: bool = False) -> None:
        status = str(alert.get("status", "?")).upper()
        stamp = _time.strftime(
            "%H:%M:%S", _time.localtime(float(alert.get("at") or _time.time()))
        )
        message = alert.get("message") or (
            f"{alert.get('rule')}[{alert.get('key')}]"
        )
        origin = "local" if derived else "bus"
        print(f"[{stamp}] {status:<8} {message} ({origin})", flush=True)

    engine = None
    if args.evaluate or args.rules:
        rules = default_rules()
        if args.rules:
            with open(args.rules, encoding="utf-8") as handle:
                rules = [AlertRule.from_dict(doc) for doc in json.load(handle)]
        engine = AlertEngine(
            rules, publish=None,
            sinks=[lambda alert: show(alert, derived=True)],
        )
    follower = SpoolFollower(args.dir)
    try:
        while True:
            for event in follower.poll():
                if event.type in ALERT_EVENT_TYPES:
                    # Server-published lifecycle events replay verbatim.
                    show(event.data)
                elif engine is not None:
                    engine.consume(event)
            if args.once:
                break
            _time.sleep(args.poll_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    stats = follower.stats()
    if stats.get("corrupt_lines"):
        print(
            f"alerts: skipped {stats['corrupt_lines']} corrupt spool line(s)",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """List (or waterfall-render) persisted traces from a ring directory."""
    import os

    from repro.telemetry.tracing import (
        TraceStore,
        render_waterfall,
        summarize_trace,
    )
    from repro.utils.tables import format_table

    # A serving front-end keeps its trace ring under `<telemetry>/traces`;
    # accept either the telemetry dir or the traces dir itself.
    directory = args.dir
    nested = os.path.join(directory, "traces")
    if os.path.isdir(nested):
        directory = nested
    store = TraceStore(directory)
    # compact=False: inspection must never rewrite a live server's ring.
    traces = store.load_traces(compact=False)
    if args.id:
        wanted = args.id.strip().lower()
        spans = traces.get(wanted)
        if not spans:
            print(
                f"trace: no spans for id {args.id!r} in {directory}",
                file=sys.stderr,
            )
            return 1
        summary = summarize_trace(wanted, spans)
        line = (
            f"trace {wanted}: {summary['spans']} span(s), "
            f"{summary['duration_ms']:.2f} ms, status {summary['status']}"
        )
        if summary["exemplar"]:
            line += f", exemplar={summary['exemplar']}"
        print(line)
        for row in render_waterfall(spans):
            print(row)
        return 0
    if not traces:
        print(f"trace: no traces in {directory}", file=sys.stderr)
        return 1
    summaries = sorted(
        (summarize_trace(tid, spans) for tid, spans in traces.items()),
        key=lambda s: s["start"],
        reverse=True,
    )
    rows = [
        (
            s["trace_id"],
            s["root"],
            s["endpoint"] or "-",
            f"{s['duration_ms']:.2f}",
            str(s["spans"]),
            s["status"] + (f" [{s['exemplar']}]" if s["exemplar"] else ""),
        )
        for s in summaries
    ]
    print(
        format_table(
            ["Trace", "Root", "Endpoint", "ms", "Spans", "Status"],
            rows,
            title=f"Traces in {directory}",
        )
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import importlib

    from repro.cluster.worker import RemoteWorker

    # Point runners register on import; the built-in experiment registry
    # is imported by RemoteWorker.run itself, --import adds extra kinds
    # (e.g. a test harness's cheap runners).
    for module in args.imports or []:
        importlib.import_module(module)
    worker = RemoteWorker(
        args.connect, node=args.node, max_idle_s=args.max_idle_s
    )
    summary = worker.run()
    print(
        f"worker: completed {summary['completed_points']} point(s) in "
        f"{summary['completed_groups']} group(s), "
        f"{summary['failed_groups']} group(s) failed",
        file=sys.stderr,
    )
    return 0


def _cmd_agent(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.cluster.agent import ClusterAgent
    from repro.cluster.transport import parse_address

    listen = args.listen if ":" in args.listen else f"127.0.0.1:{args.listen}"
    host, port = parse_address(listen)
    spaces = {
        name: os.path.join(args.dir, name)
        for name in ("exchange", "qos", "telemetry", "points")
    }
    agent = ClusterAgent(spaces, host=host, port=port, node=args.node)

    async def serve() -> None:
        bound_host, bound_port = await agent.start()
        print(
            f"repro.cluster: agent {agent.node!r} on "
            f"{bound_host}:{bound_port} serving {sorted(spaces)} under "
            f"{args.dir}",
            flush=True,
        )
        await agent.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.models.zoo import load_dataset
    from repro.serve.client import fetch_json, run_load
    from repro.utils.tables import format_table

    dataset = load_dataset(fast=(args.scale == "fast"))
    images = dataset.val_images[: args.pool_images]
    labels = dataset.val_labels[: args.pool_images]
    retry = None
    if args.retries > 0:
        from repro.serve.client import RetryPolicy

        retry = RetryPolicy(max_retries=args.retries)
    report = run_load(
        args.url,
        args.model,
        images,
        labels,
        requests=args.requests,
        concurrency=args.concurrency,
        batch_size=args.batch_size,
        mode=args.mode,
        rate=args.rate,
        latency_budget_ms=args.latency_budget_ms,
        deadline_ms=args.deadline_ms,
        retry=retry,
    )
    summary = report.summary()
    rows = [(key, f"{value:.4g}" if isinstance(value, float) else str(value))
            for key, value in summary.items()]
    print(format_table(["Metric", "Value"], rows,
                       title=f"Load report: {args.model} @ {args.url}"))
    if args.show_metrics:
        metrics = fetch_json(args.url, "/v1/metrics")
        endpoint = metrics.get("endpoints", {}).get(args.model)
        if endpoint:
            print(
                f"server: batches={endpoint['batches']} "
                f"mean_batch={endpoint['mean_batch_size']:.2f} "
                f"fill={endpoint['batch_fill']:.2f} "
                f"p99={endpoint['latency']['p99_s'] * 1000:.1f}ms"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NB-SMT / SySMT reproduction (Shomron & Weiser, MICRO 2020)",
    )
    parser.add_argument(
        "--scale",
        choices=("fast", "full"),
        default="fast",
        help="experiment scale (fast: small eval sets; full: larger protocol)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker budget for the sweep scheduler (points x image shards; "
        "never oversubscribes the machine)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse sweep points persisted by earlier runs instead of "
        "recomputing them (continue an interrupted suite)",
    )
    run_parser.add_argument(
        "--no-progress",
        action="store_true",
        help="disable the live one-line sweep progress ticker",
    )
    run_parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="spool sweep telemetry events into this directory (kept after "
        "the run; watch it live with `repro.cli dash --dir DIR`)",
    )
    run_parser.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="serve a sweep hub on this address: remote `repro.cli worker "
        "--connect` processes lease pending points and stream results "
        "(and telemetry) into this run's store (port 0 picks a free port)",
    )
    run_parser.set_defaults(func=_cmd_run)

    zoo_parser = subparsers.add_parser("zoo", help="train/load the model zoo")
    zoo_parser.add_argument("models", nargs="*", metavar="MODEL")
    zoo_parser.set_defaults(func=_cmd_zoo)

    serve_parser = subparsers.add_parser(
        "serve", help="start the dynamically-batched NB-SMT inference server"
    )
    serve_parser.add_argument(
        "models",
        nargs="*",
        metavar="MODEL",
        default=None,
        help="zoo models to serve (default: resnet18)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8421)
    serve_parser.add_argument(
        "--threads", type=int, default=4, help="NB-SMT threads per endpoint"
    )
    serve_parser.add_argument(
        "--policy", default=None, help="packing policy (default: per-model)"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=32, help="images per engine call"
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="batching latency budget for the oldest queued request",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=512,
        help="admission budget: in-flight images before shedding (429)",
    )
    serve_parser.add_argument(
        "--fork-workers",
        type=int,
        default=0,
        help="forked worker replicas per endpoint (0 = serve in-process)",
    )
    serve_parser.add_argument(
        "--no-stats",
        action="store_true",
        help="skip NB-SMT statistics collection on the serving path",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="front-end server processes sharing the port via SO_REUSEPORT "
        "(1 = single process)",
    )
    serve_parser.add_argument(
        "--ladder-rungs",
        type=int,
        default=0,
        help="operating-point ladder size per endpoint (>1 enables the "
        "adaptive QoS controller; rung 0 slows the N-1 highest-MSE layers)",
    )
    serve_parser.add_argument(
        "--slow-threads",
        type=int,
        default=2,
        help="thread count of throttled (slowed) layers on the ladder",
    )
    serve_parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=0.0,
        help="per-request service objective the QoS controller defends "
        "(0 = no latency term in the overload signal)",
    )
    serve_parser.add_argument(
        "--pace",
        action="store_true",
        help="pace batches to the modeled SySMT service time of the active "
        "operating point (the host functional simulation is cost-inverted)",
    )
    serve_parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="spool telemetry events (and, with --shards, the metrics/QoS "
        "exchange) into this directory; the live dashboard at /dashboard "
        "works with or without it",
    )
    serve_parser.add_argument(
        "--no-coordinate",
        action="store_true",
        help="with --shards: let every shard walk its QoS ladder "
        "independently instead of following the service-wide coordinator",
    )
    serve_parser.add_argument(
        "--max-connections",
        type=int,
        default=256,
        help="open-connection cap per front-end process; beyond it the "
        "idlest parked connection is evicted (slow-loris defense)",
    )
    serve_parser.add_argument(
        "--spool-budget-mb",
        type=float,
        default=0.0,
        help="disk budget for the telemetry spool (and, with --shards, the "
        "metrics exchange); over budget the writer degrades to "
        "count-and-drop instead of filling the disk (0 = unlimited)",
    )
    serve_parser.add_argument(
        "--federate",
        default=None,
        metavar="HOST:PORT",
        help="join the cross-machine serving federation whose cluster agent "
        "(`repro.cli agent`) listens at this address: metrics exchange, "
        "QoS quorum and telemetry all flow through the agent's shared "
        "spaces, so servers on different hosts answer /v1/metrics and "
        "walk the QoS ladder as one service",
    )
    serve_parser.add_argument(
        "--fed-index",
        type=int,
        default=0,
        help="this process's shard index within the federation",
    )
    serve_parser.add_argument(
        "--fed-count",
        type=int,
        default=1,
        help="total server processes in the federation",
    )
    serve_parser.add_argument(
        "--no-alerts",
        action="store_true",
        help="disable the alert engine (rules over the telemetry bus, "
        "lifecycle events, history ring)",
    )
    serve_parser.add_argument(
        "--alert-rules",
        default=None,
        metavar="FILE",
        help="JSON list of alert-rule objects replacing the default rules "
        "(see docs/telemetry.md for the schema)",
    )
    serve_parser.add_argument(
        "--alert-webhook",
        default=None,
        metavar="URL",
        help="POST every alert fire/resolve to this URL (retrying backoff, "
        "delivered off the serving path)",
    )
    serve_parser.add_argument(
        "--alert-routes",
        default=None,
        metavar="FILE",
        help="JSON list of sink routes ({rule glob, severity, sinks}): "
        "first match selects which named sinks (e.g. \"webhook\") receive "
        "an alert; an empty sink list keeps it bus-only",
    )
    serve_parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable distributed request tracing (span events, exemplars, "
        "the /v1/traces routes)",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.1,
        help="head-sampling probability for request traces; budget "
        "breaches, sheds, expiries and errors are always kept as "
        "exemplars regardless (default 0.1)",
    )
    serve_parser.add_argument(
        "--probe-interval-s",
        type=float,
        default=0.0,
        help="send one synthetic probe request per endpoint every N seconds "
        "through the real batcher/engine path; probe_result events feed "
        "the probe_failure rule (0 = no probes)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    alerts_parser = subparsers.add_parser(
        "alerts",
        help="follow a telemetry spool directory and print the alert "
        "lifecycle (fire/resolve) as it streams",
    )
    alerts_parser.add_argument(
        "--dir",
        required=True,
        help="telemetry spool directory to follow (a server's "
        "--telemetry-dir)",
    )
    alerts_parser.add_argument(
        "--evaluate",
        action="store_true",
        help="additionally run the default rules locally over the followed "
        "events (derives alerts here even if the server runs --no-alerts)",
    )
    alerts_parser.add_argument(
        "--rules",
        default=None,
        metavar="FILE",
        help="JSON list of alert-rule objects for --evaluate (implies it)",
    )
    alerts_parser.add_argument(
        "--once",
        action="store_true",
        help="drain what the spool holds now, print, and exit (scripting)",
    )
    alerts_parser.add_argument(
        "--poll-s", type=float, default=0.5, help="spool poll interval"
    )
    alerts_parser.add_argument(
        "--silence",
        default=None,
        metavar="RULE",
        help="instead of following: silence this alert rule (by name) for "
        "--for seconds, then exit; engines sharing the directory pick "
        "the window up within ~1s",
    )
    alerts_parser.add_argument(
        "--for",
        dest="for_s",
        type=float,
        default=300.0,
        metavar="S",
        help="silence window length in seconds (with --silence; "
        "default 300)",
    )
    alerts_parser.set_defaults(func=_cmd_alerts)

    dash_parser = subparsers.add_parser(
        "dash",
        help="standalone telemetry dashboard over an event-spool directory",
    )
    dash_parser.add_argument(
        "--dir",
        required=True,
        help="telemetry spool directory to follow (a run's --telemetry-dir, "
        "or `<exchange>/telemetry` of a sharded server)",
    )
    dash_parser.add_argument("--host", default="127.0.0.1")
    dash_parser.add_argument("--port", type=int, default=8471)
    dash_parser.set_defaults(func=_cmd_dash)

    trace_parser = subparsers.add_parser(
        "trace",
        help="list or inspect persisted request traces from a trace ring "
        "directory (a server's `<telemetry>/traces`)",
    )
    trace_parser.add_argument(
        "--dir",
        required=True,
        help="trace ring directory (a server's --telemetry-dir or its "
        "`traces` subdirectory)",
    )
    trace_parser.add_argument(
        "--id",
        default=None,
        metavar="TRACE",
        help="render this trace id as an ASCII waterfall instead of "
        "listing all traces",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    worker_parser = subparsers.add_parser(
        "worker",
        help="remote sweep executor: lease points from a `run --listen` hub",
    )
    worker_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the sweep hub (printed by `repro.cli run --listen`)",
    )
    worker_parser.add_argument(
        "--node",
        default=None,
        help="node identity in the hub's roster (default: host-role-pid)",
    )
    worker_parser.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long without leased work (default: stay "
        "resident until the hub goes away)",
    )
    worker_parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        metavar="MODULE",
        help="import MODULE before serving (registers extra point runners)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    agent_parser = subparsers.add_parser(
        "agent",
        help="standalone cluster agent serving shared spaces over TCP",
    )
    agent_parser.add_argument(
        "--dir",
        required=True,
        help="root directory of the served spaces (exchange/, qos/, "
        "telemetry/, points/ are created under it; follow telemetry/ "
        "with `repro.cli dash --dir`)",
    )
    agent_parser.add_argument(
        "--listen", default="127.0.0.1:9431", metavar="[HOST:]PORT"
    )
    agent_parser.add_argument("--node", default="agent")
    agent_parser.set_defaults(func=_cmd_agent)

    client_parser = subparsers.add_parser(
        "client", help="closed-loop load generator against a running server"
    )
    client_parser.add_argument("model", metavar="MODEL")
    client_parser.add_argument("--url", default="http://127.0.0.1:8421")
    client_parser.add_argument("--requests", type=int, default=100)
    client_parser.add_argument("--concurrency", type=int, default=8)
    client_parser.add_argument(
        "--batch-size", type=int, default=1, help="images per request"
    )
    client_parser.add_argument(
        "--pool-images",
        type=int,
        default=128,
        help="validation images cycled through by the generator",
    )
    client_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (back-to-back) or open loop (fixed arrival rate; "
        "the only way to generate sustained overload)",
    )
    client_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in requests/second",
    )
    client_parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=None,
        help="count responses within this budget (reports goodput)",
    )
    client_parser.add_argument(
        "--show-metrics",
        action="store_true",
        help="also fetch and summarize the server-side /v1/metrics",
    )
    client_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="attach a per-request deadline (X-Deadline-Ms); each retry "
        "carries the remaining budget, 504s count as expired",
    )
    client_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry budget per request for sheds (429, honoring "
        "Retry-After) and transport errors, on capped exponential "
        "backoff with jitter and a stable idempotency key",
    )
    client_parser.set_defaults(func=_cmd_client)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
