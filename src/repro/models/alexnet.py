"""AlexNet-style plain convolution stack (scaled down to 32x32 inputs)."""

from __future__ import annotations

from repro.nn import (
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.models.common import SeedStream


def build_alexnet_mini(num_classes: int = 10, width: int = 24, seed: int = 2020) -> Sequential:
    """A five-convolution plain stack in the spirit of AlexNet.

    AlexNet's defining property for this paper is that it is a plain (no skip
    connections) stack of wide convolutions followed by large fully-connected
    layers; it is also the paper's most quantization-robust model (Fig. 7).
    """
    seeds = SeedStream("alexnet", seed)
    w = width
    return Sequential(
        Conv2d(3, w, 5, stride=1, padding=2, bias=False, seed=seeds.next()),
        BatchNorm2d(w),
        ReLU(),
        MaxPool2d(2),
        Conv2d(w, 2 * w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(2 * w),
        ReLU(),
        MaxPool2d(2),
        Conv2d(2 * w, 3 * w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(3 * w),
        ReLU(),
        Conv2d(3 * w, 3 * w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(3 * w),
        ReLU(),
        Conv2d(3 * w, 2 * w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(2 * w),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(2 * w * 4 * 4, 4 * w, seed=seeds.next()),
        ReLU(),
        Linear(4 * w, num_classes, seed=seeds.next()),
    )
