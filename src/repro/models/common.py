"""Shared helpers for the model zoo builders."""

from __future__ import annotations

from repro.utils.rng import derive_seed


class SeedStream:
    """Deterministic per-layer seed source for a model builder.

    Each call to :meth:`next` yields a new seed derived from the model name
    and a running counter, so two builds of the same model are identical and
    two different models are independent.
    """

    def __init__(self, model_name: str, base_seed: int = 2020):
        self._model_name = model_name
        self._base_seed = base_seed
        self._counter = 0

    def next(self) -> int:
        seed = derive_seed(self._base_seed, self._model_name, self._counter)
        self._counter += 1
        return seed
