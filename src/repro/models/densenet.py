"""DenseNet-style model built from dense blocks and transition layers."""

from __future__ import annotations

from repro.nn import (
    AvgPool2d,
    Conv2d,
    DenseBlock,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.models.common import SeedStream


def _dense_layer(in_ch: int, growth: int, seeds: SeedStream) -> Sequential:
    """BN-ReLU-Conv(3x3) producing ``growth`` new feature maps."""
    return Sequential(
        BatchNorm2d(in_ch),
        ReLU(),
        Conv2d(in_ch, growth, 3, padding=1, bias=False, seed=seeds.next()),
    )


def _dense_block(in_ch: int, layers: int, growth: int, seeds: SeedStream) -> tuple[DenseBlock, int]:
    blocks = []
    channels = in_ch
    for _ in range(layers):
        blocks.append(_dense_layer(channels, growth, seeds))
        channels += growth
    return DenseBlock(blocks), channels


def _transition(in_ch: int, out_ch: int, seeds: SeedStream) -> Sequential:
    return Sequential(
        BatchNorm2d(in_ch),
        ReLU(),
        Conv2d(in_ch, out_ch, 1, bias=False, seed=seeds.next()),
        AvgPool2d(2),
    )


def build_densenet121_mini(
    num_classes: int = 10, growth: int = 12, seed: int = 2020
) -> Sequential:
    """Three dense blocks with transitions (DenseNet-121 motif)."""
    seeds = SeedStream("densenet121", seed)
    stem_ch = 2 * growth
    layers = Sequential(
        Conv2d(3, stem_ch, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(stem_ch),
        ReLU(),
    )
    channels = stem_ch
    for block_index, num_layers in enumerate((4, 4, 4)):
        block, channels = _dense_block(channels, num_layers, growth, seeds)
        layers.append(block)
        if block_index < 2:
            out_channels = channels // 2
            layers.append(_transition(channels, out_channels, seeds))
            channels = out_channels
    layers.append(BatchNorm2d(channels))
    layers.append(ReLU())
    layers.append(GlobalAvgPool2d())
    layers.append(Linear(channels, num_classes, seed=seeds.next()))
    return layers
