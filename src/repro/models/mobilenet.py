"""MobileNet-v1-style model built from depthwise-separable convolutions.

Used for the paper's MLPerf paragraph: pointwise (1x1) convolutions carry the
bulk of the MACs and run under NB-SMT with two threads, while depthwise
convolutions run with a single thread.
"""

from __future__ import annotations

from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    Sequential,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.models.common import SeedStream


def _depthwise_separable(
    in_ch: int, out_ch: int, stride: int, seeds: SeedStream
) -> Sequential:
    """Depthwise 3x3 (groups=in_ch) followed by pointwise 1x1."""
    return Sequential(
        Conv2d(
            in_ch,
            in_ch,
            3,
            stride=stride,
            padding=1,
            bias=False,
            groups=in_ch,
            seed=seeds.next(),
        ),
        BatchNorm2d(in_ch),
        ReLU(),
        Conv2d(in_ch, out_ch, 1, bias=False, seed=seeds.next()),
        BatchNorm2d(out_ch),
        ReLU(),
    )


def build_mobilenet_v1_mini(num_classes: int = 10, width: int = 16, seed: int = 2020) -> Sequential:
    """Stem + five depthwise-separable blocks (MobileNet-v1 motif)."""
    seeds = SeedStream("mobilenet_v1", seed)
    w = width
    return Sequential(
        Conv2d(3, w, 3, stride=1, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(w),
        ReLU(),
        _depthwise_separable(w, 2 * w, 1, seeds),
        _depthwise_separable(2 * w, 2 * w, 2, seeds),
        _depthwise_separable(2 * w, 4 * w, 1, seeds),
        _depthwise_separable(4 * w, 4 * w, 2, seeds),
        _depthwise_separable(4 * w, 8 * w, 1, seeds),
        GlobalAvgPool2d(),
        Linear(8 * w, num_classes, seed=seeds.next()),
    )


def is_depthwise_conv(conv: Conv2d) -> bool:
    """True when the convolution is depthwise (one group per input channel)."""
    return conv.groups > 1 and conv.groups == conv.in_channels
