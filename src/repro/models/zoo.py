"""Model registry plus train-or-load-from-cache helpers.

Experiments request models by the paper's names (``"resnet18"`` etc.); the
zoo trains the scaled-down analogue once on the synthetic dataset and caches
the resulting parameters under the artifact cache, so repeated benchmark runs
reuse the same checkpoints, just as the paper reuses PyTorch's pre-trained
weights.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.models.alexnet import build_alexnet_mini
from repro.models.densenet import build_densenet121_mini
from repro.models.googlenet import build_googlenet_mini
from repro.models.mobilenet import build_mobilenet_v1_mini
from repro.models.resnet import build_resnet18_mini, build_resnet50_mini
from repro.nn.data import DatasetConfig, SyntheticImageDataset
from repro.nn.module import Module
from repro.nn.train import TrainConfig, Trainer, evaluate_accuracy
from repro.utils.cache import ArtifactCache, default_cache
from repro.utils.rng import derive_seed

#: Builders keyed by the paper's model names.
MODEL_BUILDERS: dict[str, Callable[..., Module]] = {
    "alexnet": build_alexnet_mini,
    "resnet18": build_resnet18_mini,
    "resnet50": build_resnet50_mini,
    "googlenet": build_googlenet_mini,
    "densenet121": build_densenet121_mini,
    "mobilenet_v1": build_mobilenet_v1_mini,
}

#: The five models of the paper's main evaluation (Table I / Fig. 1 / Fig. 7).
PAPER_MODEL_NAMES: tuple[str, ...] = (
    "alexnet",
    "resnet18",
    "resnet50",
    "googlenet",
    "densenet121",
)

#: Display names matching the paper's tables.
DISPLAY_NAMES: dict[str, str] = {
    "alexnet": "AlexNet",
    "resnet18": "ResNet-18",
    "resnet50": "ResNet-50",
    "googlenet": "GoogLeNet",
    "densenet121": "DenseNet-121",
    "mobilenet_v1": "MobileNet-v1",
}

_DATASET_CACHE: dict[tuple, SyntheticImageDataset] = {}


def load_dataset(
    fast: bool = False, config: DatasetConfig | None = None
) -> SyntheticImageDataset:
    """Return the shared synthetic dataset (memoized per configuration).

    ``fast=True`` selects a much smaller dataset used by the test suite.
    """
    if config is None:
        if fast:
            config = DatasetConfig(train_size=512, val_size=160, image_size=32)
        else:
            config = DatasetConfig()
    key = (
        config.num_classes,
        config.image_size,
        config.channels,
        config.train_size,
        config.val_size,
        config.noise_std,
        config.seed,
    )
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = SyntheticImageDataset(config)
    return _DATASET_CACHE[key]


@dataclass
class TrainedModel:
    """A trained zoo entry along with its evaluation context."""

    name: str
    model: Module
    dataset: SyntheticImageDataset
    fp32_accuracy: float
    train_config: dict

    @property
    def display_name(self) -> str:
        return DISPLAY_NAMES.get(self.name, self.name)


def _default_train_config(name: str, fast: bool) -> TrainConfig:
    if fast:
        return TrainConfig(epochs=3, batch_size=64, lr=0.08, lr_decay_epochs=(2,),
                           seed=derive_seed(7, name, "train"))
    return TrainConfig(
        epochs=8,
        batch_size=64,
        lr=0.08,
        lr_decay_epochs=(5, 7),
        weight_decay=1e-4,
        seed=derive_seed(7, name, "train"),
    )


def _model_config_key(name: str, fast: bool, builder_kwargs: dict) -> dict:
    return {"name": name, "fast": fast, "builder": builder_kwargs, "version": 3}


def load_trained_model(
    name: str,
    fast: bool = False,
    cache: ArtifactCache | None = None,
    train_config: TrainConfig | None = None,
    builder_kwargs: dict | None = None,
    force_retrain: bool = False,
) -> TrainedModel:
    """Train (or load from cache) one zoo model.

    Parameters
    ----------
    name:
        One of :data:`MODEL_BUILDERS`.
    fast:
        Use the small dataset / short schedule intended for unit tests.
    cache:
        Artifact cache; defaults to the repository-wide cache.
    train_config, builder_kwargs:
        Overrides for the training schedule and model builder.
    force_retrain:
        Ignore any cached checkpoint.
    """
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}")
    cache = cache or default_cache()
    builder_kwargs = dict(builder_kwargs or {})
    dataset = load_dataset(fast=fast)
    builder_kwargs.setdefault("num_classes", dataset.num_classes)
    model = MODEL_BUILDERS[name](**builder_kwargs)
    config = train_config or _default_train_config(name, fast)
    cache_key = _model_config_key(name, fast, builder_kwargs)

    cached = None if force_retrain else cache.load(f"model-{name}", cache_key)
    if cached is not None and "__fp32_accuracy" in cached:
        accuracy = float(cached.pop("__fp32_accuracy"))
        model.load_state_dict(cached)
        model.eval()
        return TrainedModel(name, model, dataset, accuracy, vars(config))

    trainer = Trainer(model, config)
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        dataset.val_images,
        dataset.val_labels,
    )
    accuracy = evaluate_accuracy(model, dataset.val_images, dataset.val_labels)
    state = model.state_dict()
    state["__fp32_accuracy"] = np.array(accuracy, dtype=np.float64)
    cache.save(f"model-{name}", cache_key, state)
    model.eval()
    return TrainedModel(name, model, dataset, accuracy, vars(config))


def load_zoo(
    names: tuple[str, ...] | list[str] = PAPER_MODEL_NAMES,
    fast: bool = False,
    cache: ArtifactCache | None = None,
) -> dict[str, TrainedModel]:
    """Load several zoo models keyed by name."""
    return {name: load_trained_model(name, fast=fast, cache=cache) for name in names}
