"""GoogLeNet-style model built from inception blocks."""

from __future__ import annotations

from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    InceptionBlock,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.models.common import SeedStream


def _conv_bn_relu(in_ch: int, out_ch: int, kernel: int, seeds: SeedStream, stride: int = 1) -> Sequential:
    return Sequential(
        Conv2d(
            in_ch,
            out_ch,
            kernel,
            stride=stride,
            padding=kernel // 2,
            bias=False,
            seed=seeds.next(),
        ),
        BatchNorm2d(out_ch),
        ReLU(),
    )


def _inception(in_ch: int, ch1: int, ch3: int, ch5: int, chp: int, seeds: SeedStream) -> InceptionBlock:
    """Four parallel branches: 1x1, 1x1->3x3, 1x1->5x5 and pool->1x1."""
    branch1 = _conv_bn_relu(in_ch, ch1, 1, seeds)
    branch3 = Sequential(
        _conv_bn_relu(in_ch, ch3 // 2, 1, seeds),
        _conv_bn_relu(ch3 // 2, ch3, 3, seeds),
    )
    branch5 = Sequential(
        _conv_bn_relu(in_ch, max(ch5 // 2, 4), 1, seeds),
        _conv_bn_relu(max(ch5 // 2, 4), ch5, 5, seeds),
    )
    branch_pool = Sequential(
        MaxPool2d(3, stride=1, padding=1),
        _conv_bn_relu(in_ch, chp, 1, seeds),
    )
    return InceptionBlock(branch1, branch3, branch5, branch_pool)


def build_googlenet_mini(num_classes: int = 10, seed: int = 2020) -> Sequential:
    """Stem + three inception blocks + classifier (GoogLeNet motif)."""
    seeds = SeedStream("googlenet", seed)
    return Sequential(
        _conv_bn_relu(3, 16, 3, seeds),
        MaxPool2d(2),
        _inception(16, 8, 16, 8, 8, seeds),        # -> 40 channels
        _inception(40, 12, 24, 8, 8, seeds),       # -> 52 channels
        MaxPool2d(2),
        _inception(52, 16, 32, 12, 12, seeds),     # -> 72 channels
        GlobalAvgPool2d(),
        Linear(72, num_classes, seed=seeds.next()),
    )
