"""ResNet-style models: basic blocks (ResNet-18) and bottlenecks (ResNet-50)."""

from __future__ import annotations

from repro.nn import (
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    ResidualBlock,
    Sequential,
)
from repro.nn.layers.norm import BatchNorm2d
from repro.models.common import SeedStream


def _conv_bn(in_ch: int, out_ch: int, kernel: int, stride: int, seeds: SeedStream) -> Sequential:
    return Sequential(
        Conv2d(
            in_ch,
            out_ch,
            kernel,
            stride=stride,
            padding=kernel // 2,
            bias=False,
            seed=seeds.next(),
        ),
        BatchNorm2d(out_ch),
    )


def _basic_block(in_ch: int, out_ch: int, stride: int, seeds: SeedStream) -> ResidualBlock:
    body = Sequential(
        Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(out_ch),
        ReLU(),
        Conv2d(out_ch, out_ch, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(out_ch),
    )
    shortcut = None
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(in_ch, out_ch, 1, stride, seeds)
    return ResidualBlock(body, shortcut)


def _bottleneck_block(
    in_ch: int, mid_ch: int, out_ch: int, stride: int, seeds: SeedStream
) -> ResidualBlock:
    body = Sequential(
        Conv2d(in_ch, mid_ch, 1, bias=False, seed=seeds.next()),
        BatchNorm2d(mid_ch),
        ReLU(),
        Conv2d(mid_ch, mid_ch, 3, stride=stride, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(mid_ch),
        ReLU(),
        Conv2d(mid_ch, out_ch, 1, bias=False, seed=seeds.next()),
        BatchNorm2d(out_ch),
    )
    shortcut = None
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(in_ch, out_ch, 1, stride, seeds)
    return ResidualBlock(body, shortcut)


def build_resnet18_mini(num_classes: int = 10, width: int = 16, seed: int = 2020) -> Sequential:
    """Three stages of two basic residual blocks each (ResNet-18 motif)."""
    seeds = SeedStream("resnet18", seed)
    w = width
    return Sequential(
        Conv2d(3, w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(w),
        ReLU(),
        _basic_block(w, w, 1, seeds),
        _basic_block(w, w, 1, seeds),
        _basic_block(w, 2 * w, 2, seeds),
        _basic_block(2 * w, 2 * w, 1, seeds),
        _basic_block(2 * w, 4 * w, 2, seeds),
        _basic_block(4 * w, 4 * w, 1, seeds),
        GlobalAvgPool2d(),
        Linear(4 * w, num_classes, seed=seeds.next()),
    )


def build_resnet50_mini(num_classes: int = 10, width: int = 16, seed: int = 2020) -> Sequential:
    """Three stages of bottleneck residual blocks (ResNet-50 motif)."""
    seeds = SeedStream("resnet50", seed)
    w = width
    expansion = 2
    return Sequential(
        Conv2d(3, w, 3, padding=1, bias=False, seed=seeds.next()),
        BatchNorm2d(w),
        ReLU(),
        _bottleneck_block(w, w, expansion * w, 1, seeds),
        _bottleneck_block(expansion * w, w, expansion * w, 1, seeds),
        _bottleneck_block(expansion * w, 2 * w, 2 * expansion * w, 2, seeds),
        _bottleneck_block(2 * expansion * w, 2 * w, 2 * expansion * w, 1, seeds),
        _bottleneck_block(2 * expansion * w, 4 * w, 4 * expansion * w, 2, seeds),
        _bottleneck_block(4 * expansion * w, 4 * w, 4 * expansion * w, 1, seeds),
        GlobalAvgPool2d(),
        Linear(4 * expansion * w, num_classes, seed=seeds.next()),
    )
