"""Scaled-down CNN zoo mirroring the architectures evaluated in the paper.

The paper evaluates AlexNet, ResNet-18, ResNet-50, GoogLeNet and DenseNet-121
on ImageNet (plus MobileNet-v1 for the MLPerf paragraph).  Those pre-trained
models are not available offline, so each entry here reproduces the same
architectural motif at 32x32 resolution on the synthetic dataset: plain
convolution stacks (AlexNet), basic and bottleneck residual blocks (ResNet),
parallel inception branches (GoogLeNet), dense feature reuse (DenseNet) and
depthwise-separable convolutions (MobileNet-v1).
"""

from repro.models.alexnet import build_alexnet_mini
from repro.models.resnet import build_resnet18_mini, build_resnet50_mini
from repro.models.googlenet import build_googlenet_mini
from repro.models.densenet import build_densenet121_mini
from repro.models.mobilenet import build_mobilenet_v1_mini
from repro.models.zoo import (
    MODEL_BUILDERS,
    PAPER_MODEL_NAMES,
    TrainedModel,
    load_dataset,
    load_trained_model,
    load_zoo,
)

__all__ = [
    "build_alexnet_mini",
    "build_resnet18_mini",
    "build_resnet50_mini",
    "build_googlenet_mini",
    "build_densenet121_mini",
    "build_mobilenet_v1_mini",
    "MODEL_BUILDERS",
    "PAPER_MODEL_NAMES",
    "TrainedModel",
    "load_dataset",
    "load_trained_model",
    "load_zoo",
]
