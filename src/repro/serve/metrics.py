"""Serving metrics: latency quantiles, throughput, batch fill, NB-SMT stats.

Every endpoint accumulates its own :class:`EndpointMetrics`; the server
exposes the JSON snapshot under ``GET /v1/metrics``.  Latency quantiles are
estimated from geometric histograms (fixed memory, ~9% relative resolution
per bucket) while counts, sums and extrema stay exact.  The per-layer
:class:`~repro.core.smt.SMTStatistics` produced by the NB-SMT engines are
merged across batches, so an endpoint's aggregated statistics over a set of
requests equal what one harness evaluation of the same images would report.
"""

from __future__ import annotations

import math
import threading
import time

from repro.core.smt import SMTStatistics

#: Histogram range: 1 microsecond .. 120 seconds, geometric buckets.
_LATENCY_MIN = 1e-6
_LATENCY_MAX = 120.0
_BUCKETS_PER_DECADE = 25


class LatencyHistogram:
    """Geometric latency histogram with quantile estimation.

    Bucket upper bounds grow by ``10 ** (1 / buckets_per_decade)`` (~9.6%
    steps), so a quantile estimate is within one bucket width of the true
    order statistic.  Counts, the sum and the min/max are tracked exactly.
    """

    def __init__(
        self,
        low: float = _LATENCY_MIN,
        high: float = _LATENCY_MAX,
        buckets_per_decade: int = _BUCKETS_PER_DECADE,
    ):
        self.low = low
        self.ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._log_ratio = math.log(self.ratio)
        num = int(math.ceil(math.log(high / low) / self._log_ratio)) + 1
        self.counts = [0] * (num + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= self.low:
            return 0
        index = int(math.log(seconds / self.low) / self._log_ratio) + 1
        return min(index, len(self.counts) - 1)

    def _upper_bound(self, index: int) -> float:
        return self.low * self.ratio**index

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.counts[self._bucket(seconds)] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (upper bucket bound), clamped to max."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return min(self._upper_bound(index), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }


class EndpointMetrics:
    """Counters and histograms of one served model endpoint.

    ``batch_capacity`` is the endpoint's configured maximum batch size; the
    *batch fill* is the mean fraction of that capacity realized by executed
    batches -- the figure of merit of the dynamic batcher.
    """

    def __init__(self, name: str, batch_capacity: int = 1):
        self.name = name
        self.batch_capacity = max(1, int(batch_capacity))
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.requests = 0
        self.images = 0
        self.rejected_requests = 0
        self.rejected_images = 0
        self.failed_requests = 0
        self.batches = 0
        self.batched_images = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.batch_service = LatencyHistogram()
        self.layer_stats: dict[str, SMTStatistics] = {}

    # -- recording ---------------------------------------------------------
    def record_request(self, latency_seconds: float, images: int = 1) -> None:
        """One completed request (end-to-end latency, admission to reply)."""
        with self._lock:
            self.requests += 1
            self.images += int(images)
            self.latency.record(latency_seconds)

    def record_rejection(self, images: int = 1) -> None:
        """One request turned away by admission control (backpressure)."""
        with self._lock:
            self.rejected_requests += 1
            self.rejected_images += int(images)

    def record_failure(self) -> None:
        with self._lock:
            self.failed_requests += 1

    def record_batch(self, report) -> None:
        """One executed batch (a :class:`repro.serve.batcher.BatchReport`)."""
        with self._lock:
            self.batches += 1
            self.batched_images += report.num_images
            self.batch_service.record(report.service_seconds)
            for wait in report.queue_waits:
                self.queue_wait.record(wait)

    def merge_layer_stats(self, layer_stats: dict[str, SMTStatistics]) -> None:
        """Fold one batch's per-layer NB-SMT statistics into the endpoint."""
        with self._lock:
            for layer_name, stats in layer_stats.items():
                self.layer_stats.setdefault(layer_name, SMTStatistics()).merge(stats)

    # -- derived -----------------------------------------------------------
    @property
    def batch_fill(self) -> float:
        """Mean executed batch size over the configured maximum batch size."""
        if self.batches == 0:
            return 0.0
        return self.batched_images / (self.batches * self.batch_capacity)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_images / self.batches if self.batches else 0.0

    def throughput(self) -> float:
        """Served images per second since this endpoint started."""
        elapsed = time.monotonic() - self.started_at
        return self.images / elapsed if elapsed > 0 else 0.0

    def merged_smt_stats(self) -> dict[str, SMTStatistics]:
        """Copy of the aggregated per-layer NB-SMT statistics."""
        with self._lock:
            copies: dict[str, SMTStatistics] = {}
            for layer_name, stats in self.layer_stats.items():
                copy = SMTStatistics()
                copy.merge(stats)
                copies[layer_name] = copy
            return copies

    def snapshot(self) -> dict:
        with self._lock:
            smt = {
                layer_name: stats.to_payload()
                for layer_name, stats in self.layer_stats.items()
            }
            return {
                "name": self.name,
                "requests": self.requests,
                "images": self.images,
                "rejected_requests": self.rejected_requests,
                "rejected_images": self.rejected_images,
                "failed_requests": self.failed_requests,
                "throughput_images_per_s": self.throughput(),
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size,
                "batch_fill": self.batch_fill,
                "latency": self.latency.snapshot(),
                "queue_wait": self.queue_wait.snapshot(),
                "batch_service": self.batch_service.snapshot(),
                "smt_layer_stats": smt,
            }


class MetricsRegistry:
    """All endpoint metrics of one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(self, name: str, batch_capacity: int = 1) -> EndpointMetrics:
        with self._lock:
            entry = self._endpoints.get(name)
            if entry is None:
                entry = EndpointMetrics(name, batch_capacity=batch_capacity)
                self._endpoints[name] = entry
            return entry

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = list(self._endpoints.values())
        return {
            "endpoints": {entry.name: entry.snapshot() for entry in endpoints}
        }
