"""Serving metrics: latency quantiles, throughput, batch fill, NB-SMT stats.

Every endpoint accumulates its own :class:`EndpointMetrics`; the server
exposes the JSON snapshot under ``GET /v1/metrics``.  Latency quantiles are
estimated from geometric histograms (fixed memory, ~9% relative resolution
per bucket) while counts, sums and extrema stay exact.  The per-layer
:class:`~repro.core.smt.SMTStatistics` produced by the NB-SMT engines are
merged across batches, so an endpoint's aggregated statistics over a set of
requests equal what one harness evaluation of the same images would report.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from repro.core.smt import SMTStatistics

#: Histogram range: 1 microsecond .. 120 seconds, geometric buckets.
_LATENCY_MIN = 1e-6
_LATENCY_MAX = 120.0
_BUCKETS_PER_DECADE = 25


class LatencyHistogram:
    """Geometric latency histogram with quantile estimation.

    Bucket upper bounds grow by ``10 ** (1 / buckets_per_decade)`` (~9.6%
    steps), so a quantile estimate is within one bucket width of the true
    order statistic.  Counts, the sum and the min/max are tracked exactly.
    """

    def __init__(
        self,
        low: float = _LATENCY_MIN,
        high: float = _LATENCY_MAX,
        buckets_per_decade: int = _BUCKETS_PER_DECADE,
    ):
        self.low = low
        self.ratio = 10.0 ** (1.0 / buckets_per_decade)
        self._log_ratio = math.log(self.ratio)
        num = int(math.ceil(math.log(high / low) / self._log_ratio)) + 1
        self.counts = [0] * (num + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= self.low:
            return 0
        index = int(math.log(seconds / self.low) / self._log_ratio) + 1
        return min(index, len(self.counts) - 1)

    def _upper_bound(self, index: int) -> float:
        return self.low * self.ratio**index

    def record(self, seconds: float) -> None:
        seconds = max(float(seconds), 0.0)
        self.counts[self._bucket(seconds)] += 1
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (upper bucket bound), clamped to max."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return min(self._upper_bound(index), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }

    # -- cross-process merging (front-end sharding) -------------------------
    def to_payload(self) -> dict:
        """Exact, mergeable state (bucket counts, not quantile estimates)."""
        return {
            "low": self.low,
            "ratio": self.ratio,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold another histogram's payload in (same bucket geometry)."""
        if len(payload["counts"]) != len(self.counts) or not math.isclose(
            payload["ratio"], self.ratio
        ):
            raise ValueError("histogram payloads have different geometries")
        for index, bucket_count in enumerate(payload["counts"]):
            self.counts[index] += bucket_count
        self.count += payload["count"]
        self.sum += payload["sum"]
        if payload["count"]:
            self.min = min(self.min, payload["min"])
            self.max = max(self.max, payload["max"])

    @classmethod
    def from_payload(cls, payload: dict) -> "LatencyHistogram":
        histogram = cls()
        histogram.merge_payload(payload)
        return histogram


class EndpointMetrics:
    """Counters and histograms of one served model endpoint.

    ``batch_capacity`` is the endpoint's configured maximum batch size; the
    *batch fill* is the mean fraction of that capacity realized by executed
    batches -- the figure of merit of the dynamic batcher.
    """

    def __init__(
        self,
        name: str,
        batch_capacity: int = 1,
        latency_budget_ms: float = 0.0,
        recent_window: int = 256,
    ):
        self.name = name
        self.batch_capacity = max(1, int(batch_capacity))
        self.latency_budget_ms = float(latency_budget_ms)
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.requests = 0
        self.images = 0
        self.rejected_requests = 0
        self.rejected_images = 0
        self.failed_requests = 0
        self.expired_requests = 0
        self.expired_images = 0
        self.batches = 0
        self.batched_images = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.batch_service = LatencyHistogram()
        self.layer_stats: dict[str, SMTStatistics] = {}
        #: Sliding window of (recorded_at, latency, images): the QoS
        #: controller's overload/recovery signal must reflect *recent*
        #: traffic, not the whole (cumulative) histogram -- and entries age
        #: out by time too, or an idle endpoint would stare at its
        #: overload-era p99 forever and never recover.
        self.recent_latencies: deque[tuple[float, float, int]] = deque(
            maxlen=max(8, recent_window)
        )
        #: Images served per ladder rung, plus the current rung gauge.
        self.points_served: dict[int, int] = {}
        self.operating_point_level = 0
        self.operating_point: dict | None = None
        self.transitions = 0
        self.recent_transitions: deque[dict] = deque(maxlen=64)

    # -- recording ---------------------------------------------------------
    def record_request(self, latency_seconds: float, images: int = 1) -> None:
        """One completed request (end-to-end latency, admission to reply)."""
        with self._lock:
            self.requests += 1
            self.images += int(images)
            self.latency.record(latency_seconds)
            self.recent_latencies.append(
                (time.monotonic(), float(latency_seconds), int(images))
            )

    def record_rejection(self, images: int = 1) -> None:
        """One request turned away by admission control (backpressure)."""
        with self._lock:
            self.rejected_requests += 1
            self.rejected_images += int(images)

    def record_failure(self) -> None:
        with self._lock:
            self.failed_requests += 1

    def record_expiry(self, images: int = 1) -> None:
        """One request cancelled because its deadline passed (shed, not
        failed: the client was told ``deadline_exceeded``, and the engine
        never spent capacity on it)."""
        with self._lock:
            self.expired_requests += 1
            self.expired_images += int(images)

    def record_batch(self, report) -> None:
        """One executed batch (a :class:`repro.serve.batcher.BatchReport`)."""
        with self._lock:
            self.batches += 1
            self.batched_images += report.num_images
            self.batch_service.record(report.service_seconds)
            for wait in report.queue_waits:
                self.queue_wait.record(wait)

    def merge_layer_stats(self, layer_stats: dict[str, SMTStatistics]) -> None:
        """Fold one batch's per-layer NB-SMT statistics into the endpoint."""
        with self._lock:
            for layer_name, stats in layer_stats.items():
                self.layer_stats.setdefault(layer_name, SMTStatistics()).merge(stats)

    def record_served_level(self, level: int, images: int) -> None:
        """Count images served at one ladder rung (per-rung breakdown)."""
        with self._lock:
            self.points_served[int(level)] = (
                self.points_served.get(int(level), 0) + int(images)
            )

    def set_operating_point(self, level: int, description: dict | None) -> None:
        """Gauge: the rung this endpoint currently serves at."""
        with self._lock:
            self.operating_point_level = int(level)
            self.operating_point = description

    def record_transition(self, transition) -> None:
        """One QoS ladder transition (a :class:`repro.serve.qos.Transition`)."""
        with self._lock:
            self.transitions += 1
            self.recent_transitions.append(transition.describe())

    def recent_p99(self, max_age_s: float = 10.0) -> float:
        """The p99 of the sliding latency window (the QoS signal).

        Entries older than ``max_age_s`` are ignored: the signal must go
        quiet when traffic does, or recovery would wait forever on a p99
        frozen at its overload-era value.
        """
        horizon = time.monotonic() - max_age_s
        with self._lock:
            ordered = sorted(
                entry[1]
                for entry in self.recent_latencies
                if entry[0] >= horizon
            )
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(math.ceil(0.99 * len(ordered))) - 1)
        return ordered[max(0, index)]

    def recent_rates(self, window_s: float = 10.0) -> dict:
        """Request and goodput rates over the sliding latency window.

        Goodput counts requests whose latency fit the endpoint's budget;
        with no budget configured every completed request is good.  Used
        by the telemetry health tick -- the dashboard shows *recent*
        behaviour, not lifetime averages.

        The sliding window holds at most ``recent_window`` samples; when
        it is full the effective window shrinks to the span the retained
        samples actually cover, so high-traffic endpoints report their
        true rate instead of a ``recent_window / window_s`` plateau.
        """
        now = time.monotonic()
        horizon = now - window_s
        budget_s = (
            self.latency_budget_ms / 1000.0 if self.latency_budget_ms else None
        )
        with self._lock:
            full = len(self.recent_latencies) == self.recent_latencies.maxlen
            if full and self.recent_latencies:
                horizon = max(horizon, self.recent_latencies[0][0])
            recent = [
                entry[1:] for entry in self.recent_latencies
                if entry[0] >= horizon
            ]
        window = max(1e-9, now - horizon)
        within_images = sum(
            images
            for latency, images in recent
            if budget_s is None or latency <= budget_s
        )
        return {
            "requests_per_s": len(recent) / window,
            # Goodput is in *images* (matching the throughput gauge): a
            # request contributes its whole batch when it fit the budget.
            "goodput_images_per_s": within_images / window,
        }

    # -- derived -----------------------------------------------------------
    @property
    def batch_fill(self) -> float:
        """Mean executed batch size over the configured maximum batch size."""
        if self.batches == 0:
            return 0.0
        return self.batched_images / (self.batches * self.batch_capacity)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_images / self.batches if self.batches else 0.0

    def throughput(self) -> float:
        """Served images per second since this endpoint started."""
        elapsed = time.monotonic() - self.started_at
        return self.images / elapsed if elapsed > 0 else 0.0

    def merged_smt_stats(self) -> dict[str, SMTStatistics]:
        """Copy of the aggregated per-layer NB-SMT statistics."""
        with self._lock:
            copies: dict[str, SMTStatistics] = {}
            for layer_name, stats in self.layer_stats.items():
                copy = SMTStatistics()
                copy.merge(stats)
                copies[layer_name] = copy
            return copies

    def snapshot(self) -> dict:
        with self._lock:
            smt = {
                layer_name: stats.to_payload()
                for layer_name, stats in self.layer_stats.items()
            }
            return {
                "name": self.name,
                "requests": self.requests,
                "images": self.images,
                "rejected_requests": self.rejected_requests,
                "rejected_images": self.rejected_images,
                "failed_requests": self.failed_requests,
                "expired_requests": self.expired_requests,
                "expired_images": self.expired_images,
                "throughput_images_per_s": self.throughput(),
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size,
                "batch_fill": self.batch_fill,
                "latency": self.latency.snapshot(),
                "queue_wait": self.queue_wait.snapshot(),
                "batch_service": self.batch_service.snapshot(),
                "smt_layer_stats": smt,
                "operating_point": {
                    "level": self.operating_point_level,
                    "point": self.operating_point,
                    "transitions": self.transitions,
                    "recent_transitions": list(self.recent_transitions),
                },
                "points_served_images": {
                    str(level): images
                    for level, images in sorted(self.points_served.items())
                },
            }

    # -- cross-process merging (front-end sharding) -------------------------
    def to_payload(self) -> dict:
        """Exact, mergeable state of this endpoint (one shard's share)."""
        with self._lock:
            return {
                "name": self.name,
                "batch_capacity": self.batch_capacity,
                "elapsed_s": time.monotonic() - self.started_at,
                "requests": self.requests,
                "images": self.images,
                "rejected_requests": self.rejected_requests,
                "rejected_images": self.rejected_images,
                "failed_requests": self.failed_requests,
                "expired_requests": self.expired_requests,
                "expired_images": self.expired_images,
                "batches": self.batches,
                "batched_images": self.batched_images,
                "latency": self.latency.to_payload(),
                "queue_wait": self.queue_wait.to_payload(),
                "batch_service": self.batch_service.to_payload(),
                "smt_layer_stats": {
                    layer_name: stats.to_payload()
                    for layer_name, stats in self.layer_stats.items()
                },
                "operating_point_level": self.operating_point_level,
                "operating_point": self.operating_point,
                "transitions": self.transitions,
                "points_served_images": {
                    str(level): images
                    for level, images in self.points_served.items()
                },
            }


def merge_endpoint_payloads(payloads: list[dict]) -> dict:
    """One endpoint's merged snapshot across front-end shards.

    Counters and bucket counts are summed exactly; throughput uses the
    longest shard uptime (shards start together); the operating-point gauge
    reports the *worst* (highest, most degraded) rung any shard serves at,
    plus the per-shard levels -- each shard runs its own QoS controller.
    """
    if not payloads:
        raise ValueError("nothing to merge")
    merged = EndpointMetrics(
        payloads[0]["name"], batch_capacity=payloads[0]["batch_capacity"]
    )
    elapsed = 0.0
    levels = []
    transitions = 0
    for payload in payloads:
        elapsed = max(elapsed, payload["elapsed_s"])
        merged.requests += payload["requests"]
        merged.images += payload["images"]
        merged.rejected_requests += payload["rejected_requests"]
        merged.rejected_images += payload["rejected_images"]
        merged.failed_requests += payload["failed_requests"]
        # Older shard documents predate expiry accounting; treat as zero.
        merged.expired_requests += payload.get("expired_requests", 0)
        merged.expired_images += payload.get("expired_images", 0)
        merged.batches += payload["batches"]
        merged.batched_images += payload["batched_images"]
        merged.latency.merge_payload(payload["latency"])
        merged.queue_wait.merge_payload(payload["queue_wait"])
        merged.batch_service.merge_payload(payload["batch_service"])
        for layer_name, stats_payload in payload["smt_layer_stats"].items():
            merged.layer_stats.setdefault(layer_name, SMTStatistics()).merge(
                SMTStatistics.from_payload(stats_payload)
            )
        for level, images in payload["points_served_images"].items():
            merged.points_served[int(level)] = (
                merged.points_served.get(int(level), 0) + images
            )
        levels.append(payload["operating_point_level"])
        transitions += payload["transitions"]
    merged.started_at = time.monotonic() - elapsed
    merged.operating_point_level = max(levels)
    merged.transitions = transitions
    snapshot = merged.snapshot()
    snapshot["operating_point"]["shard_levels"] = levels
    return snapshot


def merge_registry_payloads(payloads: list[dict]) -> dict:
    """Merged ``/v1/metrics`` body across shard payload documents."""
    by_endpoint: dict[str, list[dict]] = {}
    for payload in payloads:
        for name, endpoint_payload in payload.get("endpoints", {}).items():
            by_endpoint.setdefault(name, []).append(endpoint_payload)
    return {
        "endpoints": {
            name: merge_endpoint_payloads(entries)
            for name, entries in sorted(by_endpoint.items())
        }
    }


class MetricsRegistry:
    """All endpoint metrics of one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}

    def endpoint(
        self,
        name: str,
        batch_capacity: int = 1,
        latency_budget_ms: float = 0.0,
    ) -> EndpointMetrics:
        with self._lock:
            entry = self._endpoints.get(name)
            if entry is None:
                entry = EndpointMetrics(
                    name,
                    batch_capacity=batch_capacity,
                    latency_budget_ms=latency_budget_ms,
                )
                self._endpoints[name] = entry
            return entry

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = list(self._endpoints.values())
        return {
            "endpoints": {entry.name: entry.snapshot() for entry in endpoints}
        }

    def to_payload(self) -> dict:
        """This process's mergeable share of the metrics (one shard)."""
        with self._lock:
            endpoints = list(self._endpoints.values())
        return {
            "endpoints": {entry.name: entry.to_payload() for entry in endpoints}
        }
