"""Dynamic request batching: coalesce queued requests into engine batches.

The NB-SMT engines (like the hardware they model) amortize per-invocation
cost over the batch dimension, so serving one image per engine call wastes
most of the machine.  :class:`DynamicBatcher` sits between the request
front-end and a warm engine replica: requests are queued, and a worker
thread assembles them into batches bounded by two knobs:

* ``max_batch`` -- never put more than this many images into one engine call;
* ``max_wait`` -- never hold the oldest queued request longer than this many
  seconds waiting for companions (the latency budget).

A batch is flushed as soon as it is full *or* its oldest member's wait
budget expires; whatever is queued at that moment rides along (greedy
fill), so an idle server adds at most ``max_wait`` of latency and a
saturated server runs full batches back to back.  An empty queue costs
nothing: the worker blocks on the queue, no polling.

Requests may carry micro-batches (``size > 1``).  Requests are atomic --
one is never split across engine calls; a request that would overflow the
current batch is carried over to start the next one.

Requests may also carry a :class:`~repro.serve.deadline.Deadline`.  An
expired request is cancelled at batch-assembly time -- *before* engine
compute -- by resolving its future with
:class:`~repro.serve.deadline.DeadlineExceeded` and counting it
(``expired_requests`` / ``expired_images``, plus the ``on_expire`` hook).
Under overload this is the difference between goodput and busywork: the
engine's scarce capacity goes to requests whose clients are still
waiting, never to the dead.

The batcher is synchronous at its core (``submit`` returns a
``concurrent.futures.Future``); the asyncio front-end bridges with
``asyncio.wrap_future``, and tests/benchmarks drive it directly.
"""

from __future__ import annotations

import inspect
import queue as queue_module
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.serve.deadline import Deadline, DeadlineExceeded
from repro.telemetry.tracing import new_span_id


class BatcherClosed(RuntimeError):
    """Raised by :meth:`DynamicBatcher.submit` after :meth:`close`."""


class QueueFull(RuntimeError):
    """Raised by :meth:`DynamicBatcher.submit` when ``max_queue`` is hit."""


@dataclass
class BatchRequest:
    """One queued request: an opaque payload plus its image count."""

    payload: object
    size: int = 1
    enqueued_at: float = 0.0
    future: Future = field(default_factory=Future)
    deadline: Deadline | None = None
    #: The request's :class:`~repro.telemetry.tracing.TraceContext` (its
    #: ``span_id`` is the front-end request span the batcher's spans nest
    #: under); ``None`` for untraced requests.
    trace: object | None = None


@dataclass
class BatchReport:
    """What the ``on_batch`` hook learns about one executed batch."""

    num_requests: int
    num_images: int
    service_seconds: float
    queue_waits: list[float] = field(default_factory=list)


_STOP = object()


class DynamicBatcher:
    """Coalesces submitted requests and executes them through ``runner``.

    Parameters
    ----------
    runner:
        ``runner(payloads) -> results``: executes one batch, returning one
        result per payload, in order.  Runs on the batcher's worker thread.
    max_batch:
        Image budget per engine call (a single larger request still runs,
        alone).
    max_wait:
        Seconds the oldest queued request may wait for companions.
    max_queue:
        Optional bound on queued images; ``0`` means unbounded (admission
        control normally lives in front of the batcher, see
        :class:`repro.serve.registry.AdmissionController`).
    on_batch:
        Optional hook called with a :class:`BatchReport` after each batch
        executes (before request futures resolve).
    on_expire:
        Optional hook called with each expired :class:`BatchRequest` as it
        is cancelled (after its future resolves with
        :class:`~repro.serve.deadline.DeadlineExceeded`).
    edf:
        Earliest-deadline-first packing (the default).  When the gathered
        candidates exceed one batch, the ones with the least deadline
        slack are packed first and the rest are carried to the next batch
        -- under overload the engine's capacity goes to the requests
        closest to dying, which would otherwise expire while younger,
        roomier requests computed.  Requests without deadlines sort last
        (infinite slack); a workload with no deadlines at all packs in
        arrival order, bit-identically to ``edf=False`` (the sort is
        stable and every key ties).
    clock:
        Monotonic clock used for every expiry decision; injectable so
        chaos tests drive deadlines deterministically.
    tracer:
        Optional :class:`~repro.telemetry.tracing.Tracer`.  Requests
        submitted with a trace context then get queue-wait and batch
        spans (the batch span links every request span it carried, and
        nests the engine-compute span with its per-layer children when
        the runner fills a trace carrier).  ``None`` (the default) keeps
        the hot path span-free at the cost of one ``is None`` check.
    workers:
        Batch-assembly worker threads.  One (the default) is right for a
        single in-process replica; with several replicas behind the runner
        (e.g. forked workers on a multicore box) matching ``workers`` to
        the replica count keeps every replica busy -- batches then execute
        concurrently, at the cost of deterministic batch splits.
    autostart:
        Start the worker threads immediately.  Tests and benchmarks pass
        ``False`` to pre-fill the queue and get deterministic batch splits.
    """

    def __init__(
        self,
        runner,
        *,
        max_batch: int = 32,
        max_wait: float = 0.005,
        max_queue: int = 0,
        on_batch=None,
        on_expire=None,
        workers: int = 1,
        autostart: bool = True,
        name: str = "batcher",
        edf: bool = True,
        clock=time.monotonic,
        tracer=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.runner = runner
        self.tracer = tracer
        # Does the runner accept a ``trace=`` carrier?  Decided once here
        # so plain ``lambda payloads: ...`` runners (tests, benchmarks)
        # keep working untouched.
        try:
            params = inspect.signature(runner).parameters
            self._runner_takes_trace = "trace" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in params.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - builtins
            self._runner_takes_trace = False
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_queue = int(max_queue)
        self.on_batch = on_batch
        self.on_expire = on_expire
        self.edf = bool(edf)
        self.workers = int(workers)
        self.name = name
        self.clock = clock
        self._queue: queue_module.Queue = queue_module.Queue()
        self._lock = threading.Lock()
        self._pending_images = 0
        self.expired_requests = 0
        self.expired_images = 0
        self._closed = False
        self._drain = True
        self._threads: list[threading.Thread] = []
        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent; refuses after close)."""
        with self._lock:
            if self._closed:
                raise BatcherClosed(f"{self.name} is closed")
            if not self._threads:
                for index in range(self.workers):
                    thread = threading.Thread(
                        target=self._worker,
                        name=f"{self.name}-{index}",
                        daemon=True,
                    )
                    thread.start()
                    self._threads.append(thread)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests and shut the workers down.

        ``drain=True`` (the default, and what the server's graceful shutdown
        uses) executes every already-queued request before returning;
        ``drain=False`` cancels them.
        """
        with self._lock:
            just_closed = not self._closed
            if just_closed:
                self._closed = True
                self._drain = drain
                for _ in range(max(1, self.workers)):
                    self._queue.put(_STOP)
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=timeout)
        if just_closed:
            # Settle whatever the workers did not pick up (everything, when
            # the batcher was never started).
            self._finish()

    @property
    def pending_images(self) -> int:
        """Images queued (or carried over) but not yet executing."""
        with self._lock:
            return self._pending_images

    def oldest_pending_age(self) -> float:
        """Seconds the oldest *queued* request has been waiting.

        A backlog-age probe for the QoS controller: it inspects the queue
        head only (a request already being assembled into a batch no longer
        counts), so it underestimates slightly but needs no extra
        bookkeeping on the hot path.
        """
        now = self.clock()
        with self._queue.mutex:
            for item in self._queue.queue:
                if item is not _STOP:
                    return now - item.enqueued_at
        return 0.0

    # -- submission --------------------------------------------------------
    def submit(
        self,
        payload,
        size: int = 1,
        deadline: Deadline | None = None,
        trace=None,
    ) -> Future:
        """Queue one request; resolves to ``runner``'s result for it.

        A request carrying a ``deadline`` that expires while queued is
        cancelled before compute: its future resolves with
        :class:`~repro.serve.deadline.DeadlineExceeded` instead.  A
        ``trace`` context makes the batcher emit this request's
        queue-wait/batch/engine spans (needs a ``tracer`` configured).
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        request = BatchRequest(
            payload, int(size), enqueued_at=self.clock(), deadline=deadline,
            trace=trace if self.tracer is not None else None,
        )
        with self._lock:
            if self._closed:
                raise BatcherClosed(f"{self.name} is closed")
            if self.max_queue and self._pending_images + request.size > self.max_queue:
                raise QueueFull(
                    f"{self.name}: {self._pending_images} images queued "
                    f"(max_queue={self.max_queue})"
                )
            self._pending_images += request.size
            self._queue.put(request)
        return request.future

    # -- expiry ------------------------------------------------------------
    def _expired(self, request: BatchRequest) -> bool:
        return request.deadline is not None and request.deadline.expired(
            self.clock
        )

    def _expire(self, request: BatchRequest) -> None:
        """Cancel one expired request: counted, resolved, never computed."""
        with self._lock:
            self._pending_images -= request.size
            self.expired_requests += 1
            self.expired_images += request.size
        if not request.future.cancelled():
            late_by = -request.deadline.remaining_s(self.clock)
            request.future.set_exception(
                DeadlineExceeded(
                    f"{self.name}: deadline expired "
                    f"{late_by * 1000.0:.1f}ms before compute",
                    late_by_s=late_by,
                )
            )
        if self.tracer is not None and request.trace is not None:
            wait_s = max(0.0, self.clock() - request.enqueued_at)
            self.tracer.emit(
                request.trace, "queue_wait",
                start=time.time() - wait_s, duration_s=wait_s,
                status="expired", batcher=self.name, images=request.size,
            )
        if self.on_expire is not None:
            try:
                self.on_expire(request)
            except Exception:  # noqa: BLE001 - hooks never break the worker
                pass

    # -- worker ------------------------------------------------------------
    def _worker(self) -> None:
        carry: list[BatchRequest] = []
        while True:
            if carry:
                first = carry.pop(0)
                pending = carry
            else:
                item = self._queue.get()
                if item is _STOP:
                    return
                first = item
                pending = []
            # The head request may have died waiting (carry-over included:
            # it waited out a whole previous batch).  Expire it here, ahead
            # of assembly, so a dead head never anchors a batch's wait
            # budget.
            if self._expired(first):
                self._expire(first)
                carry = pending
                continue
            batch, images, carry = self._collect(first, pending)
            if batch:
                self._run_batch(batch, images)

    def _collect(
        self, first: BatchRequest, pending: list[BatchRequest] | None = None
    ) -> tuple[list[BatchRequest], int, list[BatchRequest]]:
        """Assemble one batch starting from ``first``; returns any carry.

        Gathering is greedy exactly as before: ``pending`` (requests
        carried over from the previous batch) is consumed first without
        waiting, then the queue is drained against ``first``'s wait
        budget until the image budget is met.  Packing then chooses which
        gathered candidates actually ride: earliest-deadline-first when
        ``edf`` is set, arrival order otherwise; either way packing stops
        at the first candidate that does not fit, and it plus everything
        after it carries to the next batch in order.
        """
        candidates = [first]
        images = first.size
        pending = list(pending or ())
        flush_at = first.enqueued_at + self.max_wait
        while images < self.max_batch:
            if pending:
                item = pending.pop(0)
            else:
                timeout = flush_at - self.clock()
                try:
                    if timeout > 0:
                        item = self._queue.get(timeout=timeout)
                    else:
                        # Budget spent: greedily take whatever is already
                        # queued (batching queued work costs no extra
                        # latency).
                        item = self._queue.get_nowait()
                except queue_module.Empty:
                    break
                if item is _STOP:
                    # Nothing follows a sentinel (submit refuses once
                    # closed), so re-queueing keeps it for this worker's
                    # exit.
                    self._queue.put(_STOP)
                    break
            if self._expired(item):
                # Dead on arrival at assembly: cancel instead of computing.
                self._expire(item)
                continue
            candidates.append(item)
            images += item.size
        order = candidates
        if self.edf:
            now = self.clock()
            order = sorted(
                candidates,
                key=lambda request: (
                    request.deadline.at - now
                    if request.deadline is not None
                    else float("inf")
                ),
            )
        batch: list[BatchRequest] = []
        packed = 0
        carry: list[BatchRequest] = []
        for request in order:
            if not carry and (
                not batch or packed + request.size <= self.max_batch
            ):
                batch.append(request)
                packed += request.size
            else:
                carry.append(request)
        carry.extend(pending)
        return batch, packed, carry

    def _run_batch(self, batch: list[BatchRequest], images: int) -> None:
        with self._lock:
            self._pending_images -= images
        started = self.clock()
        traced = (
            [r for r in batch if r.trace is not None]
            if self.tracer is not None
            else []
        )
        wall_started = time.time()
        carrier: dict | None = {} if traced else None
        try:
            payloads = [request.payload for request in batch]
            if carrier is not None and self._runner_takes_trace:
                results = self.runner(payloads, trace=carrier)
            else:
                results = self.runner(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"{self.name}: runner returned {len(results)} results "
                    f"for {len(batch)} requests"
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            if traced:
                self._emit_spans(
                    traced, batch, images, started, wall_started,
                    self.clock() - started, carrier,
                    status="error", error=repr(exc),
                )
            for request in batch:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            return
        finished = self.clock()
        if self.on_batch is not None:
            self.on_batch(
                BatchReport(
                    num_requests=len(batch),
                    num_images=images,
                    service_seconds=finished - started,
                    queue_waits=[started - r.enqueued_at for r in batch],
                )
            )
        if traced:
            # Spans publish before the futures resolve, so a client that
            # saw its response never races its own trace.
            self._emit_spans(
                traced, batch, images, started, wall_started,
                finished - started, carrier,
            )
        for request, result in zip(batch, results):
            if not request.future.cancelled():
                request.future.set_result(result)

    def _emit_spans(
        self, traced, batch, images, started_mono, wall_started,
        duration_s, carrier, status: str = "ok", error: str | None = None,
    ) -> None:
        """One batch's spans, per traced request it carried.

        Every traced request gets its *own complete subtree* -- queue-wait,
        batch, engine-compute with per-layer children -- so each trace is
        well-formed standalone; the shared physical batch shows up as the
        common ``batch_id`` plus cross-trace ``links`` to the peer request
        spans the batch carried.
        """
        tracer = self.tracer
        batch_id = new_span_id()
        links = [
            {"trace_id": r.trace.trace_id, "span_id": r.trace.span_id}
            for r in traced
        ]
        engine = (carrier or {}).get("engine")
        respawn = (carrier or {}).get("respawn")
        for request in traced:
            context = request.trace
            wait_s = max(0.0, started_mono - request.enqueued_at)
            tracer.emit(
                context, "queue_wait",
                start=wall_started - wait_s, duration_s=wait_s,
                batcher=self.name, images=request.size,
            )
            extra = {"error": error} if error is not None else {}
            payload = tracer.emit(
                context, "batch",
                start=wall_started, duration_s=duration_s, status=status,
                batch_id=batch_id, batcher=self.name,
                requests=len(batch), images=images,
                links=[
                    link for link in links
                    if link["span_id"] != context.span_id
                ],
                **extra,
            )
            batch_context = context.child(payload["span_id"])
            if respawn is not None:
                # The replica serving this batch died; the respawn gap is
                # annotated inside the failed batch span so a retry's
                # trace shows what it survived.
                tracer.emit(
                    batch_context, "replica_respawn",
                    start=respawn.get("at", wall_started), duration_s=0.0,
                    status="error", endpoint=respawn.get("endpoint"),
                    pid=respawn.get("pid"),
                )
            if engine is not None:
                engine_payload = tracer.emit(
                    batch_context, "engine_compute",
                    start=engine.get("start", wall_started),
                    duration_s=engine.get("duration_s", 0.0),
                    pid=engine.get("pid"), level=engine.get("level"),
                )
                engine_context = batch_context.child(
                    engine_payload["span_id"]
                )
                for name, layer_start, layer_dur in engine.get(
                    "layers", ()
                )[:128]:
                    tracer.emit(
                        engine_context, f"layer:{name}",
                        start=layer_start, duration_s=layer_dur,
                    )

    def _finish(self) -> None:
        """Settle whatever remains queued after the workers exited."""
        leftovers: list[BatchRequest] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue_module.Empty:
                break
            if item is not _STOP:
                leftovers.append(item)
        if self._drain:
            while leftovers:
                chunk: list[BatchRequest] = []
                images = 0
                while leftovers and (
                    not chunk or images + leftovers[0].size <= self.max_batch
                ):
                    request = leftovers.pop(0)
                    if self._expired(request):
                        # Draining serves the waiting, not the dead.
                        self._expire(request)
                        continue
                    chunk.append(request)
                    images += request.size
                if chunk:
                    self._run_batch(chunk, images)
        else:
            for request in leftovers:
                with self._lock:
                    self._pending_images -= request.size
                request.future.cancel()
