"""Model registry and admission control for the serving subsystem.

A :class:`ModelSpec` pins down everything needed to serve one endpoint:
which zoo model backs it, the NB-SMT engine configuration (threads, packing
policy, 4-thread implementation, block pruning, K-dimension reordering),
an optional *throttled* operating point (selected layers slowed to fewer
threads for accuracy, exactly the per-layer assignments of
:mod:`repro.eval.throttle`), and the serving knobs (batch size, latency
budget, queue capacity).

:class:`AdmissionController` implements backpressure: each endpoint admits
at most ``max_pending`` in-flight images; beyond that, requests are
rejected immediately (HTTP 429) instead of building an unbounded queue.
The controller exposes its *pressure* (in-flight over capacity) so
operators can drive throttling decisions -- e.g. re-registering an endpoint
at a faster :func:`~repro.eval.throttle.throttle_assignment` operating
point when sustained pressure is high.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from repro.models.zoo import MODEL_BUILDERS, PAPER_MODEL_NAMES


@dataclass(frozen=True)
class ModelSpec:
    """Serving configuration of one endpoint.

    ``model`` names the zoo model backing the endpoint (defaults to the
    endpoint name itself).  ``slow_layers``/``slow_threads`` configure a
    throttled operating point: the named layers run with ``slow_threads``
    instead of ``threads`` (depthwise layers keep their pinned single
    thread), matching :func:`repro.eval.throttle.throttle_assignment`.

    ``ladder_rungs > 1`` makes the endpoint *adaptive*: the engine pool
    pre-computes an :class:`~repro.eval.throttle.OperatingLadder` at warm-up
    (rung 0 slows the ``ladder_rungs - 1`` highest-MSE layers -- or the
    explicit ``slow_layers``, best-first -- down to the last rung which
    slows nothing) and the QoS controller walks it under load, degrading
    to faster rungs under sustained admission pressure and recovering
    hysteretically.  ``latency_budget_ms`` is the per-request service
    objective the controller defends (recent p99 above it counts as
    overload).  ``pace_sysmt`` paces each replica's batch wall-clock to the
    modeled SySMT service time of the *active* operating point (the host
    functional simulation is cost-inverted -- fewer threads are host
    cheaper -- so without pacing an operating-point change would not have
    the modeled throughput effect).
    """

    name: str
    model: str | None = None
    threads: int = 4
    policy: str | None = None
    reorder: bool = False
    fast4t_impl: str = "stacked"
    prune_blocks: bool = True
    collect_stats: bool = True
    slow_layers: tuple[str, ...] = ()
    slow_threads: int = 2
    max_batch: int = 32
    max_wait_ms: float = 5.0
    max_pending: int = 512
    replicas: int = 1
    ladder_rungs: int = 0
    latency_budget_ms: float = 0.0
    pace_sysmt: bool = False
    #: Deadline attached to requests that carry none (0 = no default; the
    #: request then has no lifeline and is always served to completion).
    default_deadline_ms: float = 0.0

    @property
    def adaptive(self) -> bool:
        """Whether this endpoint serves a multi-rung operating ladder."""
        return self.ladder_rungs > 1

    @property
    def zoo_model(self) -> str:
        return self.model if self.model is not None else self.name

    def resolved_policy(self) -> str:
        """The packing-policy name this endpoint runs with."""
        if self.policy is not None:
            return self.policy
        from repro.core.policies import default_policy_for

        return default_policy_for(self.zoo_model).name

    def describe(self) -> dict:
        """JSON-able summary (what ``GET /v1/models`` reports)."""
        return {
            "name": self.name,
            "model": self.zoo_model,
            "threads": self.threads,
            "policy": self.resolved_policy(),
            "reorder": self.reorder,
            "fast4t_impl": self.fast4t_impl,
            "prune_blocks": self.prune_blocks,
            "collect_stats": self.collect_stats,
            "slow_layers": list(self.slow_layers),
            "slow_threads": self.slow_threads,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
            "replicas": self.replicas,
            "ladder_rungs": self.ladder_rungs,
            "adaptive": self.adaptive,
            "latency_budget_ms": self.latency_budget_ms,
            "pace_sysmt": self.pace_sysmt,
            "default_deadline_ms": self.default_deadline_ms,
        }


class AdmissionController:
    """Bounded in-flight image budget of one endpoint (backpressure).

    The budget is *rung-aware*: ``price`` is the relative per-image cost
    of the operating point currently serving the endpoint (1.0 at the top
    rung; a degraded rung with 2x the expected speedup prices each image
    at 0.5).  In-flight counts stay in images -- the price only rescales
    the effective capacity -- so admit/release pairs remain balanced even
    when the rung changes while a request is in flight.  Keeping the
    *time* the admitted backlog represents roughly constant across the
    ladder is the ROADMAP's "price a request by the rung that will serve
    it".
    """

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._in_flight = 0
        self._price = 1.0
        #: Requests refused at the door because their deadline had already
        #: passed on arrival (no admission slot is ever reserved for the
        #: dead; the front-end answers ``deadline_exceeded``).
        self.expired_arrivals = 0

    def note_expired_arrival(self, images: int = 1) -> None:
        """Count a request that arrived with its deadline already passed."""
        with self._lock:
            self.expired_arrivals += int(images)

    def set_price(self, price: float) -> None:
        """Per-image admission cost of the rung now serving the endpoint."""
        with self._lock:
            self._price = max(1e-6, float(price))

    @property
    def price(self) -> float:
        with self._lock:
            return self._price

    @property
    def effective_capacity(self) -> float:
        """Images admittable at the current price (capacity / price)."""
        with self._lock:
            return self.capacity / self._price

    def try_admit(self, images: int = 1) -> bool:
        """Reserve queue room for ``images``; False means shed the request."""
        with self._lock:
            if (self._in_flight + images) * self._price > self.capacity:
                return False
            self._in_flight += images
            return True

    def release(self, images: int = 1) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - images)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def pressure(self) -> float:
        """Priced in-flight load over capacity (1.0 = saturated, shedding)."""
        with self._lock:
            return (self._in_flight * self._price) / self.capacity


@dataclass
class ServeRegistry:
    """The set of served endpoints plus their admission controllers."""

    specs: dict[str, ModelSpec] = field(default_factory=dict)
    admissions: dict[str, AdmissionController] = field(default_factory=dict)

    def register(self, spec: ModelSpec) -> ModelSpec:
        if spec.zoo_model not in MODEL_BUILDERS:
            raise KeyError(
                f"endpoint {spec.name!r} names unknown zoo model "
                f"{spec.zoo_model!r}; known: {sorted(MODEL_BUILDERS)}"
            )
        self.specs[spec.name] = spec
        self.admissions[spec.name] = AdmissionController(spec.max_pending)
        return spec

    def get(self, name: str) -> ModelSpec:
        try:
            return self.specs[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; serving: {sorted(self.specs)}"
            ) from None

    def admission(self, name: str) -> AdmissionController:
        return self.admissions[name]

    def names(self) -> list[str]:
        return list(self.specs)

    def describe(self) -> list[dict]:
        entries = []
        for name, spec in self.specs.items():
            entry = spec.describe()
            admission = self.admissions[name]
            entry["in_flight"] = admission.in_flight
            entry["pressure"] = admission.pressure
            entry["admission_price"] = admission.price
            entry["effective_capacity"] = admission.effective_capacity
            entry["expired_arrivals"] = admission.expired_arrivals
            entries.append(entry)
        return entries


def default_registry(
    models: tuple[str, ...] | list[str] = PAPER_MODEL_NAMES, **overrides
) -> ServeRegistry:
    """A registry serving the mini-zoo, one endpoint per model.

    ``overrides`` are applied to every :class:`ModelSpec` (e.g.
    ``threads=2, max_batch=64``).
    """
    registry = ServeRegistry()
    for name in models:
        registry.register(replace(ModelSpec(name=name), **overrides))
    return registry
