"""Asyncio HTTP front-end of the NB-SMT inference service.

Pure stdlib: a minimal HTTP/1.1 server on ``asyncio`` streams (keep-alive,
``Content-Length`` framing, JSON bodies).  The event loop only parses
requests and awaits futures; all model execution happens on the dynamic
batchers' worker threads (NumPy/BLAS release the GIL), so one process
serves many concurrent connections per endpoint.

Routes
------
* ``GET /healthz`` -- liveness.
* ``GET /v1/models`` -- registered endpoints, their engine configuration
  and current admission pressure.
* ``GET /v1/metrics`` -- per-endpoint latency/throughput/batch-fill plus
  aggregated NB-SMT statistics.  When the server runs as one shard of a
  ``SO_REUSEPORT`` group (see :mod:`repro.serve.sharding`), the answering
  shard merges every peer's published payload with its own live state, so
  any shard reports whole-service metrics.
* ``GET /v1/models/<name>/operating_point`` -- the endpoint's throttle
  ladder, the rung it currently serves at, and the QoS controller state
  (recent transitions included).
* ``POST /v1/models/<name>/operating_point`` -- operator override: body
  ``{"level": L}`` forces the rung (``"hold": true`` additionally freezes
  the controller; ``{"hold": false}`` alone resumes automatic walking).
* ``POST /v1/models/<name>:predict`` -- body ``{"inputs": [...]}`` where
  ``inputs`` is one image ``(C, H, W)`` or a micro-batch ``(B, C, H, W)``
  as nested JSON lists.  Responds with logits, top-1 classes and the
  operating point that served the request.  When the endpoint's admission
  budget is exhausted, responds ``429`` immediately (backpressure) instead
  of queueing without bound.

Adaptive endpoints (``ModelSpec.ladder_rungs > 1``) are watched by a
periodic QoS tick: each endpoint's :class:`~repro.serve.qos.EndpointGovernor`
reads the load signal and walks the throttle ladder (degrade under
sustained pressure, hysteretic recovery), applying transitions through the
engine pool off the event loop.

Request lifelines (PR 7)
------------------------
Every request may carry a deadline (``X-Deadline-Ms`` header or a
``deadline_ms`` body field, pinned to the arrival instant); the front-end
refuses dead-on-arrival requests before admission, threads the deadline
into the batcher (which cancels expired requests *before* engine
compute), and answers ``504 deadline_exceeded`` -- never a silent drop.
``X-Idempotency-Key`` headers dedupe retries: a concurrent duplicate
shares the in-flight future, a later duplicate replays the recorded
response, so a retried request never double-resolves.  The socket layer
is hardened against misbehaving clients: header/body read timeouts
(408), header size caps (431), body size caps (413), write timeouts
(byte-drip readers are aborted), and a connection cap that evicts the
idlest connection (slow-loris) rather than refusing service.

Alerts + health history (PR 9)
------------------------------
Every server runs an :class:`~repro.telemetry.alerts.AlertEngine` over
its event relay (rules with hysteresis/min-duration/cooldown; lifecycle
events published back onto the bus, so ``/v1/events`` SSE streams and
spools carry them for free), persists ``endpoint_health`` /
``rung_transition`` / alert events into a size-rotated history ring
(``<telemetry_dir>/history`` by default) replayed on restart, publishes
a ``spool_health`` corruption heartbeat, and -- with
``probe_interval_s > 0`` -- sends synthetic per-endpoint probe requests
through the real batcher/engine path (``probe_result`` events feed the
``probe_failure`` rule).  ``alert_webhook`` POSTs every lifecycle event
with retrying backoff.  ``alerts=False`` turns the whole subsystem off.

Shutdown is graceful *and drain-aware*: SIGINT/SIGTERM flip ``/healthz``
to ``draining`` (503) and stop accepting new connections first -- so
load balancers rolling a sharded front-end can take one shard out of
rotation at a time -- then wait (bounded) for in-flight requests, drain
every batcher (queued requests still execute and respond), close the
engine pool (releasing harness leases / terminating forked workers), and
then return from :meth:`NBSMTServer.serve_forever`.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import time
from collections import OrderedDict

import numpy as np

from repro.serve.batcher import DynamicBatcher, QueueFull
from repro.serve.deadline import (
    DEADLINE_HEADER,
    IDEMPOTENCY_HEADER,
    Deadline,
    DeadlineExceeded,
    parse_deadline_ms,
)
from repro.serve.metrics import MetricsRegistry, merge_registry_payloads
from repro.serve.pool import EnginePool
from repro.serve.qos import EndpointGovernor, QoSConfig, QoSController
from repro.serve.registry import ServeRegistry, default_registry
from repro.telemetry import bus as telemetry_bus
from repro.telemetry.dashboard import DASHBOARD_HTML, EventRelay, stream_sse
from repro.telemetry.tracing import TRACE_HEADER, TraceStore, Tracer

_MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_BYTES = 32 * 1024


def retry_after_header(retry_after_ms: float) -> str:
    """``Retry-After`` seconds that never under-advise the ms advice.

    The header carries integer seconds; rounding (``int(round(...))``)
    floors sub-second advice -- 1400 ms became ``1`` and anything under
    500 ms became ``0``-clamped-to-``1`` by accident rather than by
    contract.  A client honouring the header as its backoff floor would
    then retry *before* the millisecond advice in the body, defeating
    the advice-as-floor contract.  Ceiling keeps the header a
    conservative upper bound of ``retry_after_ms``.
    """
    return str(max(1, math.ceil(float(retry_after_ms) / 1000.0)))


class _HttpError(Exception):
    def __init__(self, status: int, message: str, extra: dict | None = None,
                 headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.extra = extra or {}
        self.headers = headers or {}

    def body(self) -> dict:
        return {"error": self.message, **self.extra}


class _RawBody:
    """A non-JSON response body (the dashboard page)."""

    def __init__(self, body: bytes, content_type: str):
        self.body = body
        self.content_type = content_type


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _ConnState:
    """Liveness bookkeeping of one open connection (slow-loris eviction)."""

    __slots__ = ("writer", "last_activity", "busy")

    def __init__(self, writer, now: float):
        self.writer = writer
        self.last_activity = now
        #: A busy connection is awaiting an admitted request's result --
        #: evicting it would lose a ledgered response, so eviction only
        #: ever targets idle (reading/parked) connections.
        self.busy = False


class NBSMTServer:
    """The serving subsystem assembled: registry + pool + batchers + HTTP."""

    def __init__(
        self,
        registry: ServeRegistry | None = None,
        *,
        scale: str = "fast",
        fork_workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 8421,
        warm: bool = True,
        pool: EnginePool | None = None,
        sock=None,
        reuse_port: bool = False,
        qos: QoSConfig | None = None,
        qos_tick_s: float = 0.2,
        shard_exchange=None,
        shard_index: int = 0,
        shard_publish_s: float = 0.5,
        telemetry_dir: str | None = None,
        coordinator=None,
        telemetry_tick_s: float = 1.0,
        max_connections: int = 256,
        read_timeout_s: float = 10.0,
        body_timeout_s: float = 30.0,
        write_timeout_s: float = 30.0,
        drain_timeout_s: float = 5.0,
        max_header_bytes: int = _MAX_HEADER_BYTES,
        max_body_bytes: int = _MAX_BODY_BYTES,
        idempotency_cache: int = 1024,
        spool_budget_bytes: int = 0,
        alerts: bool = True,
        alert_rules=None,
        alert_webhook: str | None = None,
        alert_routes=None,
        probe_interval_s: float = 0.0,
        history_dir: str | None = None,
        tracing: bool = True,
        trace_sample: float = 0.1,
        trace_dir: str | None = None,
        clock=time.monotonic,
    ):
        self.registry = registry or default_registry()
        self.scale = scale
        self.host = host
        self.port = port
        self.metrics = MetricsRegistry()
        self.pool = pool or EnginePool(
            self.registry, scale=scale, fork_workers=fork_workers, warm=warm
        )
        self.batchers: dict[str, DynamicBatcher] = {}
        self.governors: dict[str, EndpointGovernor] = {}
        self.qos_config = qos or QoSConfig()
        self.qos_tick_s = float(qos_tick_s)
        self.shard_exchange = shard_exchange
        self.shard_index = int(shard_index)
        self.shard_publish_s = float(shard_publish_s)
        self.coordinator = coordinator
        self.telemetry_tick_s = float(telemetry_tick_s)
        # Telemetry: events publish on the process bus; with a spool dir
        # (sharded mode) they also spill to disk so any shard's relay can
        # stream the whole service's events from `/v1/events`.
        bus = telemetry_bus.get_bus()
        bus.configure_source(role="serve", shard=self.shard_index)
        self._owns_spool = False
        self.spool_budget = None
        if telemetry_dir is not None and bus.spool_dir != str(telemetry_dir):
            if spool_budget_bytes > 0:
                from repro.utils.diskbudget import DiskBudget

                self.spool_budget = DiskBudget(
                    str(telemetry_dir),
                    spool_budget_bytes,
                    name="telemetry-spool",
                )
            bus.attach_spool(telemetry_dir, role="serve",
                             budget=self.spool_budget)
            self._owns_spool = True
        self.relay = EventRelay(
            local_bus=bus,
            spool_dir=telemetry_dir,
            stats_name=(
                f"shard{self.shard_index}" if telemetry_dir is not None
                else None
            ),
        )
        # -- alert engine + health history (see repro.telemetry.alerts) ----
        self.alert_engine = None
        self.history = None
        self._webhook = None
        self._history_callback = None
        self.probe_interval_s = float(probe_interval_s)
        self._probe_arrays: dict[str, np.ndarray] = {}
        self._last_corrupt_lines = 0
        history_path = history_dir
        if history_path is None and telemetry_dir is not None:
            # A subdirectory keeps the history ring out of the relay
            # follower's glob (its events would otherwise re-ingest).
            history_path = os.path.join(str(telemetry_dir), "history")
        if alerts:
            from repro.telemetry import alerts as telemetry_alerts

            if history_path is not None:
                self.history = telemetry_alerts.AlertHistoryStore(history_path)
            rules = (
                list(alert_rules) if alert_rules is not None
                else telemetry_alerts.default_rules()
            )
            if self.probe_interval_s > 0:
                rules.append(telemetry_alerts.probe_rule(self.probe_interval_s))
            sinks = {}
            if alert_webhook:
                self._webhook = telemetry_alerts.WebhookSink(alert_webhook)
                sinks["webhook"] = self._webhook
            self.alert_engine = telemetry_alerts.AlertEngine(
                rules,
                publish=telemetry_bus.publish,
                sinks=sinks,
                store=self.history,
                routes=alert_routes,
            )
            # The engine sees everything the relay sees: the local bus
            # plus (when sharded) every peer's followed spool.
            self.relay.add_consumer(self.alert_engine.consume)
            if self.history is not None:
                # Replay the surviving ring window so timelines and the
                # alert timeline pick up where the last process stopped;
                # then record this process's own events (each shard
                # records its own -- peers' rings live in the same
                # directory, merged on the next load).
                try:
                    replayed = self.history.load()
                except (OSError, ValueError):
                    replayed = []
                imported = []
                for event in replayed:
                    self.relay.aggregator.consume(event)
                    if event.type in telemetry_alerts.ALERT_EVENT_TYPES:
                        imported.append(dict(event.data))
                self.alert_engine.import_history(imported)
                self._history_callback = bus.subscribe(
                    callback=self.history.record
                )
        # -- distributed request tracing (see repro.telemetry.tracing) -----
        self.tracer = None
        self.trace_store = None
        self._trace_callback = None
        if tracing:
            self.tracer = Tracer(
                publish=telemetry_bus.publish, sample_rate=trace_sample
            )
            trace_path = trace_dir
            if trace_path is None and telemetry_dir is not None:
                # Same trick as the history ring: a subdirectory keeps the
                # trace ring out of the relay follower's glob.
                trace_path = os.path.join(str(telemetry_dir), "traces")
            if trace_path is not None:
                self.trace_store = TraceStore(trace_path)
                self._trace_callback = bus.subscribe(
                    callback=self.trace_store.record
                )
        self._last_shed: dict[str, int] = {}
        self._last_expired: dict[str, int] = {}
        self._sock = sock
        self._reuse_port = bool(reuse_port)
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._background_tasks: list[asyncio.Task] = []
        self._stopped = False
        self._draining = False
        # -- socket hardening (request lifelines) --------------------------
        self.clock = clock
        self.max_connections = max(1, int(max_connections))
        self.read_timeout_s = float(read_timeout_s)
        self.body_timeout_s = float(body_timeout_s)
        self.write_timeout_s = float(write_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.max_header_bytes = int(max_header_bytes)
        self.max_body_bytes = int(max_body_bytes)
        self._connections: set[_ConnState] = set()
        self._active_requests = 0
        self.evicted_connections = 0
        self.refused_connections = 0
        self.timed_out_reads = 0
        self.timed_out_writes = 0
        self.idempotent_replays = 0
        self._idempotency_cache = max(0, int(idempotency_cache))
        self._idempotency: OrderedDict[str, object] = OrderedDict()

    # -- endpoint assembly -------------------------------------------------
    def _build_endpoints(self) -> None:
        """Warm every registered endpoint and start its batcher."""
        for name in self.registry.names():
            if name in self.batchers:
                continue
            spec = self.registry.get(name)
            endpoint_metrics = self.metrics.endpoint(
                name,
                batch_capacity=spec.max_batch,
                latency_budget_ms=spec.latency_budget_ms,
            )
            runner = self.pool.runner_for(
                name, metrics=endpoint_metrics, with_point=True
            )

            def on_batch(report, _record=endpoint_metrics.record_batch,
                         _name=name):
                _record(report)
                telemetry_bus.publish(
                    "batch_served",
                    endpoint=_name,
                    images=report.num_images,
                    service_s=report.service_seconds,
                )

            batcher = DynamicBatcher(
                runner,
                max_batch=spec.max_batch,
                max_wait=spec.max_wait_ms / 1000.0,
                on_batch=on_batch,
                # One assembly thread per replica keeps every forked worker
                # busy; a single in-process replica gets a single thread.
                workers=self.pool.replica_count(name),
                name=f"batch-{name}",
                clock=self.clock,
                tracer=self.tracer,
            )
            self.batchers[name] = batcher
            ladder = self.pool.ladder(name)
            controller = (
                QoSController(len(ladder), config=self.qos_config)
                if len(ladder) > 1
                else None
            )
            self.governors[name] = EndpointGovernor(
                endpoint=name,
                pool=self.pool,
                admission=self.registry.admission(name),
                batcher=batcher,
                metrics=endpoint_metrics,
                controller=controller,
                coordinator=(
                    self.coordinator if controller is not None else None
                ),
            )
            endpoint_metrics.set_operating_point(
                self.pool.current_level(name),
                self.pool.current_point(name).describe(),
            )

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Warm the endpoints and start listening (sets :attr:`port`)."""
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Endpoint warm-up trains/calibrates on first use; keep it off the
        # event loop thread so health checks stay responsive once up.
        await loop.run_in_executor(None, self._build_endpoints)
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                reuse_port=self._reuse_port or None,
            )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if any(
            governor.controller is not None
            for governor in self.governors.values()
        ):
            self._background_tasks.append(
                asyncio.create_task(self._qos_loop())
            )
        if self.shard_exchange is not None:
            self._background_tasks.append(
                asyncio.create_task(self._publish_loop())
            )
        self._background_tasks.append(
            asyncio.create_task(self._telemetry_loop())
        )
        if self.probe_interval_s > 0 and self.alert_engine is not None:
            self._background_tasks.append(
                asyncio.create_task(self._probe_loop())
            )
        if self.relay.follower is not None:
            self._background_tasks.append(
                asyncio.create_task(self._follow_loop())
            )
        telemetry_bus.publish(
            "server_started",
            endpoints=sorted(self.batchers),
            host=self.host,
            port=self.port,
        )

    async def _qos_loop(self) -> None:
        """Periodic QoS tick: walk every adaptive endpoint's ladder.

        Applying a transition waits on replica execution locks (up to one
        in-flight batch), so ticks run on the executor, never on the event
        loop thread.
        """
        loop = asyncio.get_running_loop()

        tick_errors: dict[str, str] = {}

        def tick_all():
            for governor in self.governors.values():
                try:
                    transition = governor.tick()
                except Exception as exc:  # noqa: BLE001 - loop must survive
                    # One endpoint's failed transition (e.g. a dead forked
                    # replica mid-swap) must not kill adaptivity for every
                    # endpoint; the governor already resynced its
                    # controller.  Log once per distinct error.
                    if self._stopped:
                        return
                    message = repr(exc)
                    if tick_errors.get(governor.endpoint) != message:
                        tick_errors[governor.endpoint] = message
                        print(
                            f"repro.serve: qos tick for {governor.endpoint} "
                            f"failed: {message}",
                            flush=True,
                        )
                    continue
                tick_errors.pop(governor.endpoint, None)
                if transition is not None:
                    print(
                        f"repro.serve: {governor.endpoint} "
                        f"{transition.direction} rung "
                        f"{transition.from_level}->{transition.to_level} "
                        f"({transition.reason})",
                        flush=True,
                    )

        while not self._stopped:
            await loop.run_in_executor(None, tick_all)
            await asyncio.sleep(self.qos_tick_s)

    async def _publish_loop(self) -> None:
        """Periodically publish this shard's mergeable metrics payload."""
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await loop.run_in_executor(None, self._publish_metrics)
            await asyncio.sleep(self.shard_publish_s)

    def _publish_metrics(self) -> None:
        try:
            self.shard_exchange.publish(self.metrics.to_payload())
        except OSError:  # pragma: no cover - spool dir torn down
            pass

    async def _telemetry_loop(self) -> None:
        """Periodic ``endpoint_health`` events (the dashboard's heartbeat)."""
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await loop.run_in_executor(None, self.publish_health)
            await asyncio.sleep(self.telemetry_tick_s)

    async def _follow_loop(self) -> None:
        """Relay peer shards' spool events into this shard's SSE streams."""
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await loop.run_in_executor(None, self.relay.poll)
            await asyncio.sleep(0.25)

    async def _probe_loop(self) -> None:
        """Synthetic self-test requests per endpoint (``probe_result``)."""
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await loop.run_in_executor(None, self._run_probes)
            await asyncio.sleep(self.probe_interval_s)

    def _run_probes(self) -> None:
        """One probe request through each endpoint's real data path.

        Probes submit straight into the batcher -- deliberately past
        admission control, so a load-shedding endpoint still proves its
        compute path works -- and publish ``probe_result`` events that
        feed the ``probe_failure`` rule.  A saturated batcher queue
        (QueueFull) or an engine error both count as a failed probe.
        """
        bus = telemetry_bus.get_bus()
        for name in list(self.batchers):
            if self._stopped or self._draining:
                return
            started = self.clock()
            level = None
            try:
                image = self._probe_arrays.get(name)
                if image is None:
                    image = np.zeros(
                        (1, *self.pool.input_shape(name)), dtype=np.float32
                    )
                    self._probe_arrays[name] = image
                future = self.batchers[name].submit(image, size=1)
                logits, level = future.result(
                    timeout=max(1.0, self.probe_interval_s)
                )
                ok = bool(np.isfinite(np.asarray(logits)).all())
                reason = None if ok else "non-finite logits"
            except Exception as exc:  # noqa: BLE001 - a failed probe is data
                ok = False
                reason = repr(exc)
            bus.publish(
                "probe_result",
                endpoint=name,
                ok=ok,
                failed=not ok,
                latency_ms=(self.clock() - started) * 1000.0,
                level=level,
                reason=reason,
            )

    def publish_health(self) -> None:
        """One health event per endpoint, plus aggregated shed deltas."""
        bus = telemetry_bus.get_bus()
        if not bus.active:
            return
        replica_health = self.pool.replica_health()
        for name in list(self.batchers):
            metrics = self.metrics.endpoint(name)
            admission = self.registry.admission(name)
            rates = metrics.recent_rates()
            rejected = metrics.rejected_images
            shed_delta = rejected - self._last_shed.get(name, 0)
            self._last_shed[name] = rejected
            if shed_delta > 0:
                bus.publish("shed", endpoint=name, images=shed_delta)
            expired = metrics.expired_images
            expired_delta = expired - self._last_expired.get(name, 0)
            self._last_expired[name] = expired
            if expired_delta > 0:
                bus.publish("expired", endpoint=name, images=expired_delta)
            bus.publish(
                "endpoint_health",
                endpoint=name,
                requests=metrics.requests,
                images=metrics.images,
                rejected_images=rejected,
                expired_images=expired,
                throughput_images_per_s=metrics.throughput(),
                goodput_images_per_s=rates["goodput_images_per_s"],
                recent_requests_per_s=rates["requests_per_s"],
                recent_p99_ms=metrics.recent_p99() * 1000.0,
                pressure=admission.pressure,
                admission_price=admission.price,
                level=self.pool.current_level(name),
                latency=metrics.latency.to_payload(),
                latency_budget_ms=metrics.latency_budget_ms,
                replicas=replica_health.get(name),
            )
        # Spool-corruption heartbeat: cumulative across follower restarts
        # (the relay persists a baseline), delta per tick.  Published
        # every tick -- the `spool_corruption` rule needs clean events to
        # sustain its clear streak and resolve.
        stats = self.relay.corruption_stats()
        corrupt = int(stats["corrupt_lines"])
        delta = max(0, corrupt - self._last_corrupt_lines)
        self._last_corrupt_lines = corrupt
        bus.publish(
            "spool_health", corrupt_lines=corrupt, corrupt_delta=delta
        )

    async def stop(self) -> None:
        """Graceful, drain-aware shutdown.

        Ordering matters for rolling restarts of a sharded front-end:
        first ``/healthz`` flips to ``draining`` (503) and the listener
        closes -- the load balancer and the kernel's ``SO_REUSEPORT``
        group both stop routing *new* work here -- then in-flight
        requests get a bounded grace period to finish (keep-alive
        connections close after their current response), lingering
        connections are aborted, and only then do the batchers drain and
        the engine pool close.
        """
        if self._stopped or self._draining:
            return
        self._draining = True
        telemetry_bus.publish(
            "server_draining", endpoints=sorted(self.batchers)
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drain_until = self.clock() + self.drain_timeout_s
        while self._active_requests > 0 and self.clock() < drain_until:
            await asyncio.sleep(0.02)
        self._stopped = True
        for state in list(self._connections):
            transport = state.writer.transport
            if transport is not None:
                transport.abort()
        for task in self._background_tasks:
            task.cancel()
        for task in self._background_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        loop = asyncio.get_running_loop()

        def drain_and_close():
            for batcher in self.batchers.values():
                batcher.close(drain=True)
            self.pool.close()

        await loop.run_in_executor(None, drain_and_close)
        telemetry_bus.publish("server_stopped", endpoints=sorted(self.batchers))
        self.relay.close()
        if self._history_callback is not None:
            telemetry_bus.get_bus().unsubscribe(self._history_callback)
            self._history_callback = None
        if self._trace_callback is not None:
            telemetry_bus.get_bus().unsubscribe(self._trace_callback)
            self._trace_callback = None
        if self.trace_store is not None:
            self.trace_store.close()
        if self._webhook is not None:
            self._webhook.close(timeout=1.0)
        if self.history is not None:
            self.history.close()
        if self._owns_spool:
            telemetry_bus.get_bus().detach_spool()
        if self._stop_event is not None:
            self._stop_event.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def serve_forever(self) -> None:
        """Start, install signal handlers, and run until stopped."""
        await self.start()
        self.install_signal_handlers()
        print(
            f"repro.serve: listening on http://{self.host}:{self.port} "
            f"(endpoints: {', '.join(sorted(self.batchers)) or 'none'})",
            flush=True,
        )
        await self._stop_event.wait()

    # -- HTTP plumbing -----------------------------------------------------
    def _evict_idlest(self) -> bool:
        """Abort the longest-idle non-busy connection (slow-loris victim).

        Only idle connections are candidates -- a busy one is awaiting an
        admitted request's result, and evicting it would turn a ledgered
        in-flight request into a lost response.
        """
        candidates = [s for s in self._connections if not s.busy]
        if not candidates:
            return False
        victim = min(candidates, key=lambda s: s.last_activity)
        self.evicted_connections += 1
        transport = victim.writer.transport
        if transport is not None:
            transport.abort()
        # The victim's handler wakes with a reset and unregisters itself;
        # drop it from the set now so the accounting never over-counts.
        self._connections.discard(victim)
        return True

    async def _handle_connection(self, reader, writer) -> None:
        state = _ConnState(writer, self.clock())
        if self._draining:
            # The listener is closed, but a connection may have been
            # accepted into the kernel backlog before that.
            self.refused_connections += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return
        if len(self._connections) >= self.max_connections:
            if not self._evict_idlest():
                # Every slot is busy computing: refuse the newcomer rather
                # than kill an in-flight response.
                self.refused_connections += 1
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return
        self._connections.add(state)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": exc.message}, False
                    )
                    break
                if request is None:
                    break
                state.last_activity = self.clock()
                method, path, headers, body = request
                if path.split("?", 1)[0] == "/v1/events":
                    # SSE takes over the connection (no framing, no reuse).
                    if method != "GET":
                        await self._write_response(
                            writer, 405, {"error": "use GET"}, False
                        )
                        break
                    await stream_sse(
                        writer,
                        self.relay,
                        stopped=lambda: self._stopped or self._draining,
                    )
                    break
                extra_headers: dict[str, str] = {}
                trace = root_span = None
                if (
                    self.tracer is not None
                    and path.split("?", 1)[0].endswith(":predict")
                ):
                    # Front door of the trace: honor an inbound id, echo
                    # it on the response, open the root request span.
                    trace = self.tracer.trace(headers.get(TRACE_HEADER))
                    extra_headers["X-Trace-Id"] = trace.trace_id
                    root_span = self.tracer.start_span(
                        trace, "request", root=True,
                        method=method, path=path.split("?", 1)[0],
                        shard=self.shard_index,
                    )
                state.busy = True
                self._active_requests += 1
                try:
                    status, payload = await self._route(
                        method, path, body, headers, trace=trace
                    )
                except _HttpError as exc:
                    status, payload = exc.status, exc.body()
                    extra_headers = {**extra_headers, **exc.headers}
                except Exception as exc:  # noqa: BLE001 - reported as 500
                    status, payload = 500, {"error": repr(exc)}
                finally:
                    state.busy = False
                    self._active_requests -= 1
                    state.last_activity = self.clock()
                if root_span is not None:
                    root_span.finish(
                        status="ok" if status < 400 else f"http_{status}",
                        http_status=status,
                    )
                    self._apply_exemplar_policy(trace, status)
                keep_alive = (
                    headers.get("connection", "keep-alive") != "close"
                    and not self._draining
                )
                await self._write_response(
                    writer, status, payload, keep_alive, extra_headers
                )
                state.last_activity = self.clock()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(state)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _read_line(self, reader) -> bytes:
        """One header line within the read timeout (slow-loris defense).

        The timeout bounds *each line*, not the whole header block -- but
        with the header byte cap a dripping client can stretch the read
        phase to at most ``read_timeout_s`` per line over a bounded number
        of lines before 431/408 reclaims the connection.
        """
        try:
            return await asyncio.wait_for(
                reader.readline(), timeout=self.read_timeout_s
            )
        except asyncio.TimeoutError:
            self.timed_out_reads += 1
            raise _HttpError(408, "timed out reading request") from None

    async def _read_request(self, reader):
        request_line = await self._read_line(reader)
        if not request_line:
            return None
        header_bytes = len(request_line)
        if header_bytes > self.max_header_bytes:
            raise _HttpError(431, "request line too large")
        try:
            method, path, _version = request_line.decode("ascii").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await self._read_line(reader)
            header_bytes += len(line)
            if header_bytes > self.max_header_bytes:
                raise _HttpError(431, "request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length > self.max_body_bytes:
            raise _HttpError(413, "request body too large")
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.body_timeout_s
                )
            except asyncio.TimeoutError:
                # Mid-body disconnect or byte-drip: the declared body never
                # arrived inside the budget.
                self.timed_out_reads += 1
                raise _HttpError(408, "timed out reading request body") from None
        else:
            body = b""
        return method.upper(), path, headers, body

    async def _write_response(
        self, writer, status: int, payload, keep_alive: bool,
        extra_headers: dict | None = None,
    ) -> None:
        if isinstance(payload, _RawBody):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        headers = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{headers}"
            "\r\n"
        ).encode("ascii")
        writer.write(head + body)
        try:
            await asyncio.wait_for(writer.drain(), timeout=self.write_timeout_s)
        except asyncio.TimeoutError:
            # A client that stopped reading (byte-drip / half-open) is
            # holding our buffers hostage; abort rather than wait forever.
            self.timed_out_writes += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError("response write timed out") from None

    # -- routing -----------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes, headers=None,
                     trace=None):
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if self._draining or self._stopped:
                # 503 takes a draining shard out of LB rotation while its
                # in-flight requests finish.
                return 503, {
                    "status": "draining",
                    "endpoints": sorted(self.batchers),
                    "active_requests": self._active_requests,
                }
            replica_health = self.pool.replica_health()
            degraded = sorted(
                name
                for name, health in replica_health.items()
                if health.get("degraded")
            )
            payload = {
                # "degraded" (not an error status) -- the endpoint still
                # serves on its surviving replicas; load balancers may
                # prefer an undamaged shard.
                "status": "degraded" if degraded else "ok",
                "endpoints": sorted(self.batchers),
                "degraded_endpoints": degraded,
                "connections": self.connection_stats(),
            }
            if self.alert_engine is not None:
                payload["active_alerts"] = len(self.alert_engine.active())
            return 200, payload
        if path == "/v1/models":
            if method != "GET":
                raise _HttpError(405, "use GET")
            return 200, {"models": self.registry.describe()}
        if path in ("/dashboard", "/dashboard/"):
            if method != "GET":
                raise _HttpError(405, "use GET")
            return 200, _RawBody(
                DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8"
            )
        if path == "/v1/telemetry":
            if method != "GET":
                raise _HttpError(405, "use GET")
            snapshot = self.relay.snapshot()
            if self.alert_engine is not None:
                # The aggregator's "alerts" key is the event-derived view
                # (any relay has it); the engine view adds rules + state.
                snapshot["alerts_engine"] = self.alert_engine.snapshot()
            if self.tracer is not None:
                snapshot["tracing"] = self.tracer.snapshot()
            return 200, snapshot
        if path == "/v1/traces" or path.startswith("/v1/traces/"):
            if method != "GET":
                raise _HttpError(405, "use GET")
            if path in ("/v1/traces", "/v1/traces/"):
                return 200, {"traces": self.relay.trace_summaries()}
            trace_id = path[len("/v1/traces/"):]
            spans = self.relay.trace_spans(trace_id)
            if not spans:
                raise _HttpError(404, f"unknown trace {trace_id!r}")
            return 200, {"trace_id": trace_id, "spans": spans}
        if path == "/v1/history":
            if method != "GET":
                raise _HttpError(405, "use GET")
            if self.history is None:
                return 200, {"events": []}
            loop = asyncio.get_running_loop()
            return 200, await loop.run_in_executor(None, self._history_strip)
        if path == "/v1/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET")
            if self.shard_exchange is not None:
                loop = asyncio.get_running_loop()
                return 200, await loop.run_in_executor(
                    None, self._merged_metrics
                )
            return 200, self.metrics.snapshot()
        if path.startswith("/v1/models/") and path.endswith("/operating_point"):
            name = path[len("/v1/models/") : -len("/operating_point")]
            return await self._operating_point(method, name, body)
        if path.startswith("/v1/models/") and path.endswith(":predict"):
            if method != "POST":
                raise _HttpError(405, "use POST")
            name = path[len("/v1/models/") : -len(":predict")]
            return await self._predict(name, body, headers, trace=trace)
        raise _HttpError(404, f"no route for {method} {path}")

    def connection_stats(self) -> dict:
        """Socket-hardening counters (surfaced by ``/healthz``)."""
        return {
            "open": len(self._connections),
            "max": self.max_connections,
            "active_requests": self._active_requests,
            "evicted": self.evicted_connections,
            "refused": self.refused_connections,
            "timed_out_reads": self.timed_out_reads,
            "timed_out_writes": self.timed_out_writes,
            "idempotent_replays": self.idempotent_replays,
        }

    def _history_strip(self) -> dict:
        """Persisted-history replay (the dashboard's timeline strip).

        Served off the event loop (ring replay reads files); bounded to
        the newest window so the response stays dashboard-sized.
        """
        try:
            events = self.history.load(compact=False)
        except (OSError, ValueError):
            events = []
        return {
            "events": [
                {"type": event.type, "at": event.at, "data": event.data}
                for event in events[-400:]
            ]
        }

    def _merged_metrics(self) -> dict:
        """Whole-service metrics: this shard's live state + published peers."""
        self._publish_metrics()  # peers merging *us* see fresh numbers too
        peers, sources = self.shard_exchange.gather_peers()
        merged = merge_registry_payloads([self.metrics.to_payload(), *peers])
        merged["shards"] = {
            "index": self.shard_index,
            "count": self.shard_exchange.shard_count,
            "merged": 1 + len(peers),
            "peers": sources,
        }
        return merged

    async def _operating_point(self, method: str, name: str, body: bytes):
        """Inspect (GET) or override (POST) one endpoint's ladder rung."""
        try:
            self.registry.get(name)
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from None
        governor = self.governors.get(name)
        if governor is None:
            raise _HttpError(503, f"endpoint {name!r} is still warming up")
        if method == "GET":
            pass
        elif method == "POST":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(payload, dict):
                    raise ValueError(f"expected a JSON object, got {payload!r}")
                level = payload.get("level")
                if level is not None:
                    level = int(level)
                hold = payload.get("hold")
                if hold is not None:
                    hold = bool(hold)
            except (ValueError, TypeError) as exc:
                raise _HttpError(400, f"bad request body: {exc!r}") from None
            if level is None and hold is None:
                raise _HttpError(400, 'body must set "level" and/or "hold"')
            loop = asyncio.get_running_loop()
            try:
                if level is None and hold is False:
                    # {"hold": false} alone resumes automatic walking.
                    governor.release()
                else:
                    # {"hold": true} alone pins the *current* rung; a
                    # level-only body moves the rung without touching any
                    # existing hold.
                    if level is None:
                        level = self.pool.current_level(name)
                    await loop.run_in_executor(
                        None, governor.force, level, hold
                    )
            except ValueError as exc:
                raise _HttpError(400, str(exc)) from None
        else:
            raise _HttpError(405, "use GET or POST")
        ladder = self.pool.ladder(name)
        level = self.pool.current_level(name)
        return 200, {
            "endpoint": name,
            "level": level,
            "num_rungs": len(ladder),
            "point": ladder[level].describe(),
            "ladder": ladder.describe(),
            "controller": governor.snapshot(),
            "pacing_unit_s_per_image": self.pool.pacing_unit(name),
        }

    def _apply_exemplar_policy(self, trace, status: int) -> None:
        """Tail-sampling verdict for one finished request trace.

        Sampled traces already published.  For unsampled ones: anything
        interesting -- shed (429), expired (504), any other error -- is
        retroactively kept (the budget-breach keep happens inside
        ``_predict_once``, where the latency budget is known); a clean
        fast response is discarded so the exemplar ring holds recent
        *candidates*, not served history.
        """
        if trace is None or trace.sampled:
            return
        if status == 429:
            self.tracer.keep(trace, "shed")
        elif status == 504:
            self.tracer.keep(trace, "expired")
        elif status >= 400:
            self.tracer.keep(trace, "error")
        else:
            self.tracer.discard(trace)

    def _shed_error(self, name: str, spec, message: str) -> _HttpError:
        """A 429 priced at the rung the retried request should expect.

        ``expected_rung`` is the rung the endpoint currently serves at --
        under the coordinator, the service-wide recommendation every shard
        follows -- so a client library can decide whether a retry is worth
        it (a degraded rung answers faster but noisier).  ``Retry-After``
        advises one batching window.
        """
        retry_after_ms = max(spec.max_wait_ms, 50.0)
        try:
            expected = self.pool.current_level(name)
            point = self.pool.current_point(name).describe()
        except Exception:  # noqa: BLE001 - endpoint still warming up
            expected, point = 0, None
        return _HttpError(
            429,
            message,
            extra={
                "expected_rung": expected,
                "expected_point": point,
                "retry_after_ms": retry_after_ms,
            },
            headers={"Retry-After": retry_after_header(retry_after_ms)},
        )

    async def _predict(self, name: str, body: bytes, headers=None, trace=None):
        """Predict with idempotency-key dedup in front of the data path.

        A request carrying ``X-Idempotency-Key`` never double-resolves: a
        concurrent duplicate awaits the original's in-flight future, and a
        later duplicate replays the recorded response (marked
        ``idempotent_replay``).  Terminal outcomes (200, 504) are cached;
        sheds and errors are not -- a retry after a 429 must re-run.
        """
        key = (headers or {}).get(IDEMPOTENCY_HEADER)
        if not key or not self._idempotency_cache:
            return await self._predict_once(name, body, headers, trace=trace)
        entry = self._idempotency.get(key)
        if entry is not None:
            if isinstance(entry, asyncio.Future):
                # Shield: the duplicate's connection dying must not cancel
                # the original request's bookkeeping.
                status, payload = await asyncio.shield(entry)
            else:
                self._idempotency.move_to_end(key)
                status, payload = entry
            self.idempotent_replays += 1
            payload = dict(payload)
            payload["idempotent_replay"] = True
            return status, payload
        future = asyncio.get_running_loop().create_future()
        self._idempotency[key] = future
        error: _HttpError | None = None
        try:
            status, payload = await self._predict_once(
                name, body, headers, trace=trace
            )
        except _HttpError as exc:
            error = exc
            status, payload = exc.status, exc.body()
        except BaseException:
            # Unexpected failure: nothing to replay; let duplicates re-run.
            self._idempotency.pop(key, None)
            if not future.done():
                future.set_result((500, {"error": "original attempt died"}))
            raise
        if not future.done():
            future.set_result((status, payload))
        if status in (200, 504):
            self._idempotency[key] = (status, payload)
            while len(self._idempotency) > self._idempotency_cache:
                self._idempotency.popitem(last=False)
        else:
            self._idempotency.pop(key, None)
        if error is not None:
            raise error
        return status, payload

    def _deadline_error(self, deadline: Deadline) -> _HttpError:
        late_ms = max(0.0, -deadline.remaining_ms(self.clock))
        return _HttpError(
            504,
            "deadline_exceeded",
            extra={"late_by_ms": late_ms},
        )

    async def _predict_once(self, name: str, body: bytes, headers=None,
                            trace=None):
        if self._stopped or self._draining:
            raise _HttpError(503, "server is draining")
        try:
            spec = self.registry.get(name)
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from None
        try:
            payload = json.loads(body.decode("utf-8"))
            inputs = np.asarray(payload["inputs"], dtype=np.float32)
        except (ValueError, KeyError, TypeError) as exc:
            raise _HttpError(400, f"bad request body: {exc!r}") from None
        try:
            budget_ms = parse_deadline_ms(headers, payload)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        if budget_ms is None and spec.default_deadline_ms > 0:
            budget_ms = spec.default_deadline_ms
        deadline = (
            Deadline.after_ms(budget_ms, clock=self.clock)
            if budget_ms is not None
            else None
        )
        if inputs.ndim == 3:
            inputs = inputs[np.newaxis]
        if inputs.ndim != 4 or inputs.shape[0] == 0:
            raise _HttpError(
                400, f"inputs must be (C,H,W) or (B,C,H,W); got {inputs.shape}"
            )
        # Validate the per-image shape up front: a mismatched request must
        # fail alone with a 400, never poison the batch it would have been
        # coalesced into.
        expected = self.pool.input_shape(name)
        if tuple(inputs.shape[1:]) != expected:
            raise _HttpError(
                400,
                f"endpoint {name!r} expects images of shape {expected}; "
                f"got {tuple(inputs.shape[1:])}",
            )
        images = int(inputs.shape[0])
        endpoint_metrics = self.metrics.endpoint(name)
        admission = self.registry.admission(name)
        if deadline is not None and deadline.expired(self.clock):
            # Dead on arrival: refuse at the door, never reserve an
            # admission slot or queue work the client stopped waiting for.
            admission.note_expired_arrival(images)
            endpoint_metrics.record_expiry(images)
            raise self._deadline_error(deadline)
        admission_span = (
            self.tracer.start_span(
                trace, "admission", endpoint=name, images=images,
                pressure=admission.pressure,
            )
            if trace is not None
            else None
        )
        if not admission.try_admit(images):
            if admission_span is not None:
                admission_span.finish(status="shed")
            endpoint_metrics.record_rejection(images)
            raise self._shed_error(
                name,
                spec,
                f"endpoint {name!r} is saturated "
                f"({admission.in_flight}/{admission.capacity} images in flight)",
            )
        if admission_span is not None:
            admission_span.finish()
        started = self.clock()
        try:
            future = self.batchers[name].submit(
                inputs, size=images, deadline=deadline, trace=trace
            )
            logits, level = await asyncio.wrap_future(future)
        except QueueFull as exc:
            endpoint_metrics.record_rejection(images)
            raise self._shed_error(name, spec, str(exc)) from None
        except DeadlineExceeded:
            # The batcher cancelled this request before compute: a shed,
            # not a failure -- counted as an expiry, answered explicitly.
            endpoint_metrics.record_expiry(images)
            raise self._deadline_error(deadline) from None
        except Exception:
            endpoint_metrics.record_failure()
            raise
        finally:
            admission.release(images)
        latency = self.clock() - started
        endpoint_metrics.record_request(latency, images)
        if (
            trace is not None
            and not trace.sampled
            and (spec.latency_budget_ms or 0) > 0
            and latency * 1000.0 > spec.latency_budget_ms
        ):
            # Always-sample exemplar: a budget-breaching request is kept
            # no matter the head-sampling verdict, so the dashboard's p99
            # meter has concrete slow traces behind it.
            self.tracer.keep(trace, "budget_breach")
        response = {
            "model": spec.zoo_model,
            "endpoint": name,
            "batch": images,
            "argmax": np.argmax(logits, axis=1).tolist(),
            "outputs": np.asarray(logits).tolist(),
            "latency_ms": latency * 1000.0,
            # The rung that actually served this request -- under the QoS
            # controller it may differ from the rung that admitted it.
            "operating_point": level,
        }
        if trace is not None:
            response["trace_id"] = trace.trace_id
        return 200, response


def run_server(**kwargs) -> None:
    """Blocking entry point used by ``repro.cli serve``."""
    server = NBSMTServer(**kwargs)
    asyncio.run(server.serve_forever())
