"""HTTP load generator for the NB-SMT inference server.

``repro.cli client`` drives a running server with synthetic zoo images in
one of two arrival modes:

* **closed loop** (the default): ``concurrency`` worker threads each keep
  one keep-alive connection open and issue requests back to back, so
  offered load scales with concurrency until the server's admission
  controller starts shedding.  A closed loop self-throttles -- slow
  responses slow the clients -- which is great for measuring capacity but
  cannot overload the server.
* **open loop** (``mode="open"``): requests are issued on a fixed arrival
  schedule (``rate`` requests/second) regardless of completions, which is
  how real traffic behaves and the only way to generate sustained
  overload.  Arrivals that find every worker busy are sent late and
  counted (``late_arrivals``); with ``latency_budget_ms`` set, the report
  additionally tracks *goodput* -- responses completed within the budget
  per second -- the figure of merit of the adaptive QoS controller.

Latencies are measured end-to-end per request; the summary reports p50/p99,
throughput, goodput, the rejection rate and (when labels are supplied)
top-1 accuracy of the served predictions.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    requests: int
    images: int
    rejected: int
    errors: int
    elapsed_seconds: float
    latencies_seconds: list[float] = field(default_factory=list)
    correct: int = 0
    labeled: int = 0
    mode: str = "closed"
    offered_rate: float | None = None
    latency_budget_s: float | None = None
    within_budget: int = 0
    late_arrivals: int = 0

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.images / self.elapsed_seconds

    @property
    def goodput_per_s(self) -> float:
        """Responses completed within the latency budget, per second.

        Falls back to plain request throughput when no budget was set.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        if self.latency_budget_s is None:
            return self.requests / self.elapsed_seconds
        return self.within_budget / self.elapsed_seconds

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
        return ordered[index]

    @property
    def accuracy(self) -> float | None:
        return self.correct / self.labeled if self.labeled else None

    def summary(self) -> dict:
        summary = {
            "mode": self.mode,
            "requests": self.requests,
            "images": self.images,
            "rejected": self.rejected,
            "errors": self.errors,
            "elapsed_s": self.elapsed_seconds,
            "throughput_images_per_s": self.throughput_images_per_s,
            "latency_p50_ms": self.latency_quantile(0.50) * 1000.0,
            "latency_p99_ms": self.latency_quantile(0.99) * 1000.0,
            "accuracy": self.accuracy,
        }
        if self.mode == "open":
            summary["offered_rate_per_s"] = self.offered_rate
            summary["late_arrivals"] = self.late_arrivals
        if self.latency_budget_s is not None:
            summary["latency_budget_ms"] = self.latency_budget_s * 1000.0
            summary["within_budget"] = self.within_budget
            summary["goodput_per_s"] = self.goodput_per_s
        return summary


def predict_once(
    connection: http.client.HTTPConnection,
    endpoint: str,
    images: np.ndarray,
) -> tuple[int, dict]:
    """Issue one ``:predict`` call on an open keep-alive connection."""
    body = json.dumps({"inputs": images.tolist()})
    connection.request(
        "POST",
        f"/v1/models/{endpoint}:predict",
        body=body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    payload = json.loads(response.read().decode("utf-8"))
    return response.status, payload


def fetch_json(url: str, path: str) -> dict:
    """GET a JSON document (e.g. ``/v1/metrics``) from the server."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=30
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def run_load(
    url: str,
    endpoint: str,
    images: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    requests: int = 100,
    concurrency: int = 8,
    batch_size: int = 1,
    timeout: float = 120.0,
    mode: str = "closed",
    rate: float | None = None,
    latency_budget_ms: float | None = None,
) -> LoadReport:
    """Drive ``requests`` predictions and report latencies.

    Each request carries ``batch_size`` images drawn round-robin from
    ``images``; workers reuse one connection each.  A 429 response is
    counted as a rejection and consumes its slot of the request budget
    (shed requests are not re-sent), so ``report.requests + rejected +
    errors == requests``.

    ``mode="closed"`` (default) issues back to back; ``mode="open"``
    issues on the fixed arrival schedule ``rate`` requests/second -- a
    worker that picks its arrival up late (all workers were busy: the
    open-loop backlog) sends immediately and the lateness is counted.
    ``latency_budget_ms`` tracks within-budget completions (goodput).
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', not {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs a positive arrival rate")
    parts = urlsplit(url)
    host, port = parts.hostname, parts.port or 80
    counter = {"issued": 0}
    budget_s = latency_budget_ms / 1000.0 if latency_budget_ms else None
    report = LoadReport(requests=0, images=0, rejected=0, errors=0,
                        elapsed_seconds=0.0, mode=mode, offered_rate=rate,
                        latency_budget_s=budget_s)
    lock = threading.Lock()
    start_barrier = threading.Barrier(max(1, concurrency) + 1)
    base_time = {"at": 0.0}

    def next_request_index() -> int | None:
        with lock:
            if counter["issued"] >= requests:
                return None
            counter["issued"] += 1
            return counter["issued"] - 1

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        start_barrier.wait()
        try:
            while True:
                index = next_request_index()
                if index is None:
                    return
                if mode == "open":
                    arrival = base_time["at"] + index / rate
                    delay = arrival - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    elif delay < -0.001:
                        with lock:
                            report.late_arrivals += 1
                start = (index * batch_size) % images.shape[0]
                stop = start + batch_size
                batch = images[start:stop]
                if batch.shape[0] < batch_size:  # wrap around
                    batch = np.concatenate(
                        [batch, images[: batch_size - batch.shape[0]]], axis=0
                    )
                issued = time.monotonic()
                try:
                    status, payload = predict_once(connection, endpoint, batch)
                except (OSError, http.client.HTTPException):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    with lock:
                        report.errors += 1
                    continue
                latency = time.monotonic() - issued
                with lock:
                    if status == 200:
                        report.requests += 1
                        report.images += batch.shape[0]
                        report.latencies_seconds.append(latency)
                        if budget_s is not None and latency <= budget_s:
                            report.within_budget += 1
                        if labels is not None:
                            expected = [
                                int(labels[(start + offset) % images.shape[0]])
                                for offset in range(batch.shape[0])
                            ]
                            report.labeled += len(expected)
                            report.correct += sum(
                                int(a == b)
                                for a, b in zip(payload["argmax"], expected)
                            )
                    elif status == 429:
                        report.rejected += 1
                    else:
                        report.errors += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, name=f"load-{index}", daemon=True)
        for index in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    started = time.monotonic()
    base_time["at"] = started
    start_barrier.wait()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.monotonic() - started
    return report
