"""Closed-loop HTTP load generator for the NB-SMT inference server.

``repro.cli client`` drives a running server with synthetic zoo images:
``concurrency`` worker threads each keep one keep-alive connection open
and issue requests back to back (closed loop), so offered load scales with
concurrency until the server's admission controller starts shedding.
Latencies are measured end-to-end per request; the summary reports p50/p99,
throughput, the rejection rate and (when labels are supplied) top-1
accuracy of the served predictions.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    requests: int
    images: int
    rejected: int
    errors: int
    elapsed_seconds: float
    latencies_seconds: list[float] = field(default_factory=list)
    correct: int = 0
    labeled: int = 0

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.images / self.elapsed_seconds

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
        return ordered[index]

    @property
    def accuracy(self) -> float | None:
        return self.correct / self.labeled if self.labeled else None

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "images": self.images,
            "rejected": self.rejected,
            "errors": self.errors,
            "elapsed_s": self.elapsed_seconds,
            "throughput_images_per_s": self.throughput_images_per_s,
            "latency_p50_ms": self.latency_quantile(0.50) * 1000.0,
            "latency_p99_ms": self.latency_quantile(0.99) * 1000.0,
            "accuracy": self.accuracy,
        }


def predict_once(
    connection: http.client.HTTPConnection,
    endpoint: str,
    images: np.ndarray,
) -> tuple[int, dict]:
    """Issue one ``:predict`` call on an open keep-alive connection."""
    body = json.dumps({"inputs": images.tolist()})
    connection.request(
        "POST",
        f"/v1/models/{endpoint}:predict",
        body=body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    payload = json.loads(response.read().decode("utf-8"))
    return response.status, payload


def fetch_json(url: str, path: str) -> dict:
    """GET a JSON document (e.g. ``/v1/metrics``) from the server."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=30
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def run_load(
    url: str,
    endpoint: str,
    images: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    requests: int = 100,
    concurrency: int = 8,
    batch_size: int = 1,
    timeout: float = 120.0,
) -> LoadReport:
    """Drive ``requests`` closed-loop predictions and report latencies.

    Each request carries ``batch_size`` images drawn round-robin from
    ``images``; workers reuse one connection each.  A 429 response is
    counted as a rejection and consumes its slot of the request budget
    (shed requests are not re-sent), so ``report.requests + rejected +
    errors == requests``.
    """
    parts = urlsplit(url)
    host, port = parts.hostname, parts.port or 80
    counter = {"issued": 0}
    report = LoadReport(requests=0, images=0, rejected=0, errors=0,
                        elapsed_seconds=0.0)
    lock = threading.Lock()

    def next_request_index() -> int | None:
        with lock:
            if counter["issued"] >= requests:
                return None
            counter["issued"] += 1
            return counter["issued"] - 1

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            while True:
                index = next_request_index()
                if index is None:
                    return
                start = (index * batch_size) % images.shape[0]
                stop = start + batch_size
                batch = images[start:stop]
                if batch.shape[0] < batch_size:  # wrap around
                    batch = np.concatenate(
                        [batch, images[: batch_size - batch.shape[0]]], axis=0
                    )
                issued = time.monotonic()
                try:
                    status, payload = predict_once(connection, endpoint, batch)
                except (OSError, http.client.HTTPException):
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    with lock:
                        report.errors += 1
                    continue
                latency = time.monotonic() - issued
                with lock:
                    if status == 200:
                        report.requests += 1
                        report.images += batch.shape[0]
                        report.latencies_seconds.append(latency)
                        if labels is not None:
                            expected = [
                                int(labels[(start + offset) % images.shape[0]])
                                for offset in range(batch.shape[0])
                            ]
                            report.labeled += len(expected)
                            report.correct += sum(
                                int(a == b)
                                for a, b in zip(payload["argmax"], expected)
                            )
                    elif status == 429:
                        report.rejected += 1
                    else:
                        report.errors += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, name=f"load-{index}", daemon=True)
        for index in range(max(1, concurrency))
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.monotonic() - started
    return report
