"""HTTP load generator for the NB-SMT inference server.

``repro.cli client`` drives a running server with synthetic zoo images in
one of two arrival modes:

* **closed loop** (the default): ``concurrency`` worker threads each keep
  one keep-alive connection open and issue requests back to back, so
  offered load scales with concurrency until the server's admission
  controller starts shedding.  A closed loop self-throttles -- slow
  responses slow the clients -- which is great for measuring capacity but
  cannot overload the server.
* **open loop** (``mode="open"``): requests are issued on a fixed arrival
  schedule (``rate`` requests/second) regardless of completions, which is
  how real traffic behaves and the only way to generate sustained
  overload.  Arrivals that find every worker busy are sent late and
  counted (``late_arrivals``); with ``latency_budget_ms`` set, the report
  additionally tracks *goodput* -- responses completed within the budget
  per second -- the figure of merit of the adaptive QoS controller.

Latencies are measured end-to-end per request; the summary reports p50/p99,
throughput, goodput, the rejection rate and (when labels are supplied)
top-1 accuracy of the served predictions.

Request lifelines (PR 7): requests may carry a deadline
(``X-Deadline-Ms``) and retries ride a :class:`RetryPolicy` --
capped-exponential backoff with seeded jitter, honoring the server's
``Retry-After``/``retry_after_ms`` shed advice, budgeted by the deadline
(no retry is ever sent after the deadline would already have passed), and
keyed by a stable idempotency key so a retried request never
double-resolves server-side.  Terminal sheds (429) and expiries (504)
are counted separately from errors in the goodput summary.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import uuid
from dataclasses import dataclass, field
from urllib.parse import urlsplit

import numpy as np

from repro.serve.deadline import DEADLINE_HEADER, IDEMPOTENCY_HEADER


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter, deadline-budgeted.

    ``base_delay_ms(attempt)`` is the *monotone* capped-exponential
    schedule (attempt 0 = first retry); :meth:`delay_ms` layers the
    server's ``Retry-After`` advice (never retry sooner than asked) and
    seeded jitter (de-synchronizing a thundering herd) on top.
    """

    max_retries: int = 0
    base_backoff_ms: float = 25.0
    multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.1

    def base_delay_ms(self, attempt: int) -> float:
        """The un-jittered backoff of retry ``attempt`` (monotone, capped)."""
        exponent = max(0, int(attempt))
        return float(
            min(
                self.max_backoff_ms,
                self.base_backoff_ms * (self.multiplier**exponent),
            )
        )

    def delay_ms(
        self,
        attempt: int,
        rng: random.Random | None = None,
        retry_after_ms: float | None = None,
    ) -> float:
        """The actual sleep before retry ``attempt``.

        The server's advice is a *floor* (it knows its batching window);
        jitter spreads the base backoff by ``±jitter``.
        """
        delay = self.base_delay_ms(attempt)
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        if retry_after_ms is not None:
            delay = max(delay, float(retry_after_ms))
        return max(0.0, delay)

    def should_retry(
        self,
        attempt: int,
        delay_ms: float,
        deadline_remaining_ms: float | None,
    ) -> bool:
        """Whether retry ``attempt`` fits the budget.

        A retry is pointless (and forbidden) once the request's deadline
        would already have passed when the retry lands.
        """
        if attempt >= self.max_retries:
            return False
        if deadline_remaining_ms is not None:
            return delay_ms < deadline_remaining_ms
        return True


def _retry_after_ms(payload: dict, headers) -> float | None:
    """The server's shed advice: ``retry_after_ms`` body field wins over
    the coarser (whole-seconds) ``Retry-After`` header."""
    value = payload.get("retry_after_ms") if isinstance(payload, dict) else None
    if value is not None:
        try:
            return float(value)
        except (TypeError, ValueError):
            pass
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is not None:
        try:
            return float(raw) * 1000.0
        except (TypeError, ValueError):
            pass
    return None


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    requests: int
    images: int
    rejected: int
    errors: int
    elapsed_seconds: float
    latencies_seconds: list[float] = field(default_factory=list)
    correct: int = 0
    labeled: int = 0
    mode: str = "closed"
    offered_rate: float | None = None
    latency_budget_s: float | None = None
    within_budget: int = 0
    late_arrivals: int = 0
    #: Requests the server answered ``deadline_exceeded`` (504) for --
    #: shed work, distinct from transport/server *errors*.
    expired: int = 0
    #: Retry attempts sent on top of the first attempts (backoff-paced).
    retries_sent: int = 0
    #: Requests whose retry budget ran out on sheds (terminal 429s).
    retry_exhausted: int = 0

    @property
    def throughput_images_per_s(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.images / self.elapsed_seconds

    @property
    def goodput_per_s(self) -> float:
        """Responses completed within the latency budget, per second.

        Falls back to plain request throughput when no budget was set.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        if self.latency_budget_s is None:
            return self.requests / self.elapsed_seconds
        return self.within_budget / self.elapsed_seconds

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_seconds:
            return 0.0
        ordered = sorted(self.latencies_seconds)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
        return ordered[index]

    @property
    def accuracy(self) -> float | None:
        return self.correct / self.labeled if self.labeled else None

    def summary(self) -> dict:
        summary = {
            "mode": self.mode,
            "requests": self.requests,
            "images": self.images,
            # Sheds (429 backpressure) and expiries (504 deadline) are the
            # server working as designed under overload; "errors" is
            # reserved for transport failures and 5xx surprises.
            "rejected": self.rejected,
            "sheds": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "retries_sent": self.retries_sent,
            "retry_exhausted": self.retry_exhausted,
            "elapsed_s": self.elapsed_seconds,
            "throughput_images_per_s": self.throughput_images_per_s,
            "latency_p50_ms": self.latency_quantile(0.50) * 1000.0,
            "latency_p99_ms": self.latency_quantile(0.99) * 1000.0,
            "accuracy": self.accuracy,
        }
        if self.mode == "open":
            summary["offered_rate_per_s"] = self.offered_rate
            summary["late_arrivals"] = self.late_arrivals
        if self.latency_budget_s is not None:
            summary["latency_budget_ms"] = self.latency_budget_s * 1000.0
            summary["within_budget"] = self.within_budget
            summary["goodput_per_s"] = self.goodput_per_s
        return summary


def predict_detailed(
    connection: http.client.HTTPConnection,
    endpoint: str,
    images: np.ndarray,
    *,
    deadline_ms: float | None = None,
    idempotency_key: str | None = None,
):
    """One ``:predict`` call; returns ``(status, payload, headers)``."""
    body = json.dumps({"inputs": images.tolist()})
    headers = {"Content-Type": "application/json"}
    if deadline_ms is not None:
        headers[DEADLINE_HEADER] = f"{float(deadline_ms):g}"
    if idempotency_key is not None:
        headers[IDEMPOTENCY_HEADER] = idempotency_key
    connection.request(
        "POST",
        f"/v1/models/{endpoint}:predict",
        body=body,
        headers=headers,
    )
    response = connection.getresponse()
    payload = json.loads(response.read().decode("utf-8"))
    return response.status, payload, response.headers


def predict_once(
    connection: http.client.HTTPConnection,
    endpoint: str,
    images: np.ndarray,
    *,
    deadline_ms: float | None = None,
    idempotency_key: str | None = None,
) -> tuple[int, dict]:
    """Issue one ``:predict`` call on an open keep-alive connection."""
    status, payload, _headers = predict_detailed(
        connection,
        endpoint,
        images,
        deadline_ms=deadline_ms,
        idempotency_key=idempotency_key,
    )
    return status, payload


def fetch_json(url: str, path: str) -> dict:
    """GET a JSON document (e.g. ``/v1/metrics``) from the server."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=30
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def run_load(
    url: str,
    endpoint: str,
    images: np.ndarray,
    labels: np.ndarray | None = None,
    *,
    requests: int = 100,
    concurrency: int = 8,
    batch_size: int = 1,
    timeout: float = 120.0,
    mode: str = "closed",
    rate: float | None = None,
    latency_budget_ms: float | None = None,
    deadline_ms: float | None = None,
    retry: RetryPolicy | None = None,
    seed: int = 0,
) -> LoadReport:
    """Drive ``requests`` predictions and report latencies.

    Each request carries ``batch_size`` images drawn round-robin from
    ``images``; workers reuse one connection each.  Without a ``retry``
    policy a 429 response is terminal: counted as a rejection, consuming
    its slot of the request budget, so ``report.requests + rejected +
    expired + errors == requests``.  With one, sheds and transport errors
    are retried on the policy's backoff schedule (honoring the server's
    ``Retry-After`` advice), each logical request keeps one idempotency
    key across its attempts, and no retry is sent once the request's
    deadline would already have passed.

    ``deadline_ms`` attaches a per-request deadline; each attempt carries
    the *remaining* budget, and a ``504 deadline_exceeded`` answer is
    counted in ``expired`` (shed accounting, separate from errors).

    ``mode="closed"`` (default) issues back to back; ``mode="open"``
    issues on the fixed arrival schedule ``rate`` requests/second -- a
    worker that picks its arrival up late (all workers were busy: the
    open-loop backlog) sends immediately and the lateness is counted.
    ``latency_budget_ms`` tracks within-budget completions (goodput).
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', not {mode!r}")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs a positive arrival rate")
    parts = urlsplit(url)
    host, port = parts.hostname, parts.port or 80
    counter = {"issued": 0}
    budget_s = latency_budget_ms / 1000.0 if latency_budget_ms else None
    report = LoadReport(requests=0, images=0, rejected=0, errors=0,
                        elapsed_seconds=0.0, mode=mode, offered_rate=rate,
                        latency_budget_s=budget_s)
    lock = threading.Lock()
    start_barrier = threading.Barrier(max(1, concurrency) + 1)
    base_time = {"at": 0.0}

    def next_request_index() -> int | None:
        with lock:
            if counter["issued"] >= requests:
                return None
            counter["issued"] += 1
            return counter["issued"] - 1

    def worker(worker_index: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        rng = random.Random((seed * 1_000_003) ^ worker_index)
        start_barrier.wait()
        try:
            while True:
                index = next_request_index()
                if index is None:
                    return
                if mode == "open":
                    arrival = base_time["at"] + index / rate
                    delay = arrival - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    elif delay < -0.001:
                        with lock:
                            report.late_arrivals += 1
                start = (index * batch_size) % images.shape[0]
                stop = start + batch_size
                batch = images[start:stop]
                if batch.shape[0] < batch_size:  # wrap around
                    batch = np.concatenate(
                        [batch, images[: batch_size - batch.shape[0]]], axis=0
                    )
                issued = time.monotonic()
                deadline_at = (
                    issued + deadline_ms / 1000.0 if deadline_ms else None
                )
                # One idempotency key per *logical* request, stable across
                # every retry attempt (the server dedupes on it).
                key = (
                    uuid.uuid4().hex
                    if retry is not None and retry.max_retries > 0
                    else None
                )
                attempt = 0
                while True:
                    remaining_ms = None
                    if deadline_at is not None:
                        remaining_ms = (deadline_at - time.monotonic()) * 1000.0
                        if remaining_ms <= 0:
                            # Dead before sending: the client gives up
                            # without spending server capacity.
                            with lock:
                                report.expired += 1
                            break
                    try:
                        status, payload, response_headers = predict_detailed(
                            connection,
                            endpoint,
                            batch,
                            deadline_ms=remaining_ms,
                            idempotency_key=key,
                        )
                    except (OSError, http.client.HTTPException):
                        connection.close()
                        connection = http.client.HTTPConnection(
                            host, port, timeout=timeout
                        )
                        if retry is not None:
                            delay_ms = retry.delay_ms(attempt, rng)
                            budget_left = (
                                (deadline_at - time.monotonic()) * 1000.0
                                if deadline_at is not None
                                else None
                            )
                            if retry.should_retry(attempt, delay_ms, budget_left):
                                with lock:
                                    report.retries_sent += 1
                                time.sleep(delay_ms / 1000.0)
                                attempt += 1
                                continue
                        with lock:
                            report.errors += 1
                        break
                    latency = time.monotonic() - issued
                    if status == 429 and retry is not None:
                        delay_ms = retry.delay_ms(
                            attempt,
                            rng,
                            _retry_after_ms(payload, response_headers),
                        )
                        budget_left = (
                            (deadline_at - time.monotonic()) * 1000.0
                            if deadline_at is not None
                            else None
                        )
                        if retry.should_retry(attempt, delay_ms, budget_left):
                            with lock:
                                report.retries_sent += 1
                            time.sleep(delay_ms / 1000.0)
                            attempt += 1
                            continue
                        with lock:
                            report.rejected += 1
                            report.retry_exhausted += 1
                        break
                    with lock:
                        if status == 200:
                            report.requests += 1
                            report.images += batch.shape[0]
                            report.latencies_seconds.append(latency)
                            if budget_s is not None and latency <= budget_s:
                                report.within_budget += 1
                            if labels is not None:
                                expected = [
                                    int(
                                        labels[
                                            (start + offset) % images.shape[0]
                                        ]
                                    )
                                    for offset in range(batch.shape[0])
                                ]
                                report.labeled += len(expected)
                                report.correct += sum(
                                    int(a == b)
                                    for a, b in zip(payload["argmax"], expected)
                                )
                        elif status == 429:
                            report.rejected += 1
                        elif status == 504:
                            report.expired += 1
                        else:
                            report.errors += 1
                    break
        finally:
            connection.close()

    threads = [
        threading.Thread(
            target=worker, args=(index,), name=f"load-{index}", daemon=True
        )
        for index in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    started = time.monotonic()
    base_time["at"] = started
    start_barrier.wait()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.monotonic() - started
    return report
