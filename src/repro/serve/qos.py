"""Load-adaptive QoS: walk the throttle ladder under admission pressure.

The paper's quality-vs-throughput trade (Section V-B / Fig. 10) becomes an
online control loop here: each endpoint declares an ordered
:class:`~repro.eval.throttle.OperatingLadder` (rung 0 = most throttled /
most accurate), and a :class:`QoSController` walks it from per-endpoint
load signals -- admission pressure, rejection deltas, batcher backlog and
recent p99 latency versus the endpoint's budget.  Sustained overload
*degrades* one rung towards the faster, noisier points; sustained calm
*recovers* one rung back towards the top.  Three mechanisms prevent
flapping:

* separate degrade/recover pressure thresholds (a dead band in between
  advances neither timer);
* the triggering condition must hold continuously for
  ``degrade_after_s`` / ``recover_after_s`` (recovery is deliberately the
  slower of the two);
* a post-transition ``cooldown_s`` during which no further transition
  fires.

The controller is pure bookkeeping: it never touches engines itself.  The
:class:`EndpointGovernor` glues one endpoint's controller to its admission
controller, batcher, metrics and the engine pool, and applies transitions
through :meth:`repro.serve.pool.EnginePool.set_operating_point` -- which
swaps assignments under the replica execution locks, so a transition is
atomic with respect to in-flight micro-batches (a batch runs entirely at
the point that admitted it, and the response reports that point).

Everything is injectable for tests: the clock (fake clocks drive the
hysteresis deterministically) and the signal source.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry import bus as telemetry_bus


@dataclass(frozen=True)
class QoSConfig:
    """Thresholds and hysteresis windows of one endpoint's controller."""

    #: Admission pressure (in-flight / capacity) at or above which the
    #: endpoint counts as overloaded.
    degrade_pressure: float = 0.75
    #: Admission pressure at or below which the endpoint counts as calm.
    recover_pressure: float = 0.35
    #: Batcher backlog (in units of ``max_batch`` images) that also counts
    #: as overload even before admission saturates.
    degrade_queue_batches: float = 2.0
    #: Seconds the overload condition must hold before degrading one rung.
    degrade_after_s: float = 0.25
    #: Seconds the calm condition must hold before recovering one rung
    #: (deliberately longer than ``degrade_after_s``).
    recover_after_s: float = 1.0
    #: Seconds after any transition during which no further transition fires.
    cooldown_s: float = 0.5
    #: Recovery additionally requires recent p99 below this fraction of the
    #: latency budget (when a budget is configured).
    recover_latency_fraction: float = 0.75


@dataclass
class LoadSignal:
    """One endpoint's load snapshot, as seen by the controller."""

    pressure: float = 0.0
    queue_images: int = 0
    queue_capacity: int = 1
    queue_age_s: float = 0.0
    rejected_delta: int = 0
    p99_latency_s: float = 0.0
    latency_budget_s: float | None = None


@dataclass(frozen=True)
class Transition:
    """One operating-point change, with its trigger."""

    at: float
    from_level: int
    to_level: int
    reason: str
    pressure: float = 0.0

    @property
    def direction(self) -> str:
        return "degrade" if self.to_level > self.from_level else "recover"

    def describe(self) -> dict:
        return {
            "at": self.at,
            "from_level": self.from_level,
            "to_level": self.to_level,
            "direction": self.direction,
            "reason": self.reason,
            "pressure": self.pressure,
        }


class QoSController:
    """Hysteretic ladder walker for one endpoint.

    ``observe`` consumes one :class:`LoadSignal` and returns the
    :class:`Transition` it decided on (or ``None``).  The caller applies
    transitions; the controller only tracks level and streak state.
    """

    def __init__(
        self,
        num_levels: int,
        config: QoSConfig | None = None,
        clock=time.monotonic,
        history: int = 64,
    ):
        if num_levels < 1:
            raise ValueError("a controller needs at least one ladder level")
        self.num_levels = int(num_levels)
        self.config = config or QoSConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._held = False
        self._overload_since: float | None = None
        self._calm_since: float | None = None
        self._last_transition_at = float("-inf")
        self.transitions = 0
        self.recent_transitions: deque[Transition] = deque(maxlen=history)

    # -- state -------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def held(self) -> bool:
        with self._lock:
            return self._held

    # -- predicates --------------------------------------------------------
    def _overloaded(self, signal: LoadSignal) -> str | None:
        """The overload reason, or None when the signal is not overloaded."""
        config = self.config
        if signal.rejected_delta > 0:
            return f"shedding ({signal.rejected_delta} rejected)"
        if signal.pressure >= config.degrade_pressure:
            return f"admission pressure {signal.pressure:.2f}"
        backlog_limit = config.degrade_queue_batches * max(
            1, signal.queue_capacity
        )
        if signal.queue_images >= backlog_limit:
            return f"backlog {signal.queue_images} images"
        if (
            signal.latency_budget_s
            and signal.queue_age_s > signal.latency_budget_s
        ):
            # The queue head has already outlived the budget: whatever is
            # behind it will miss too, regardless of current p99.
            return (
                f"queue head {signal.queue_age_s * 1000:.0f}ms over budget"
            )
        if (
            signal.latency_budget_s
            and signal.p99_latency_s > signal.latency_budget_s
        ):
            return (
                f"p99 {signal.p99_latency_s * 1000:.0f}ms over budget "
                f"{signal.latency_budget_s * 1000:.0f}ms"
            )
        return None

    def _calm(self, signal: LoadSignal) -> bool:
        config = self.config
        if signal.rejected_delta > 0:
            return False
        if signal.pressure > config.recover_pressure:
            return False
        if signal.queue_images >= max(1, signal.queue_capacity):
            return False
        if signal.latency_budget_s and (
            signal.p99_latency_s
            > config.recover_latency_fraction * signal.latency_budget_s
        ):
            return False
        return True

    # -- control -----------------------------------------------------------
    def observe(self, signal: LoadSignal) -> Transition | None:
        """Fold one load snapshot in; returns the transition, if any."""
        now = self.clock()
        with self._lock:
            if self._held:
                return None
            reason = self._overloaded(signal)
            if reason is not None:
                self._calm_since = None
                if self._overload_since is None:
                    self._overload_since = now
            elif self._calm(signal):
                self._overload_since = None
                if self._calm_since is None:
                    self._calm_since = now
            else:
                # Dead band: neither streak may accumulate across it.
                self._overload_since = None
                self._calm_since = None
                return None

            config = self.config
            if now - self._last_transition_at < config.cooldown_s:
                return None
            if (
                reason is not None
                and self._level < self.num_levels - 1
                and now - self._overload_since >= config.degrade_after_s
            ):
                return self._transition(
                    now, self._level + 1, reason, signal.pressure
                )
            if (
                reason is None
                and self._calm_since is not None
                and self._level > 0
                and now - self._calm_since >= config.recover_after_s
            ):
                return self._transition(
                    now,
                    self._level - 1,
                    f"calm (pressure {signal.pressure:.2f})",
                    signal.pressure,
                )
            return None

    def _transition(
        self, now: float, to_level: int, reason: str, pressure: float
    ) -> Transition:
        transition = Transition(
            at=now,
            from_level=self._level,
            to_level=to_level,
            reason=reason,
            pressure=pressure,
        )
        self._level = to_level
        self._last_transition_at = now
        self._overload_since = None
        self._calm_since = None
        self.transitions += 1
        self.recent_transitions.append(transition)
        return transition

    def force(self, level: int, hold: bool | None = False) -> Transition | None:
        """Pin the controller at ``level`` (operator override).

        ``hold=True`` additionally freezes automatic walking until
        :meth:`release`; ``hold=None`` leaves any existing hold untouched
        (moving a pinned rung must not silently un-pin it).  Returns the
        transition when the level changed.  Any force restarts the
        sustain streaks, even at the current level: the operator just
        asserted this rung, so automatic walking must re-earn a full
        ``degrade_after_s``/``recover_after_s`` streak before moving.
        """
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} outside ladder [0, {self.num_levels - 1}]"
            )
        now = self.clock()
        with self._lock:
            if hold is not None:
                self._held = bool(hold)
            if level == self._level:
                self._overload_since = None
                self._calm_since = None
                return None
            return self._transition(now, level, "forced by operator", 0.0)

    def release(self) -> None:
        """Resume automatic walking after a held :meth:`force`."""
        with self._lock:
            self._held = False
            self._overload_since = None
            self._calm_since = None

    def resync(self, level: int) -> None:
        """Reset to the level actually applied (no transition recorded).

        Used when applying a decided transition failed downstream: the
        controller must walk from the rung the replicas really serve at,
        not from the one it wanted.
        """
        with self._lock:
            self._level = max(0, min(self.num_levels - 1, int(level)))
            self._overload_since = None
            self._calm_since = None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self._level,
                "num_levels": self.num_levels,
                "held": self._held,
                "transitions": self.transitions,
                "recent_transitions": [
                    transition.describe()
                    for transition in self.recent_transitions
                ],
            }


@dataclass
class EndpointGovernor:
    """One endpoint's control loop: signals in, ladder transitions out.

    The governor owns no policy -- it reads the load signal from the
    endpoint's admission controller, batcher and metrics, feeds it to the
    controller, and applies any transition through the engine pool (which
    swaps assignments under the replica execution locks).  A ``None``
    controller (single-rung ladder) makes :meth:`tick` a no-op, so static
    endpoints cost nothing.
    """

    endpoint: str
    pool: object
    admission: object
    batcher: object
    metrics: object
    controller: QoSController | None = None
    #: Optional :class:`repro.telemetry.coordinator.QoSCoordinator`: when
    #: set, the local controller only expresses a *desire* and the rung
    #: actually applied is the service-wide recommendation (the max desire
    #: over live, non-held shards) -- unless an operator force/hold pins
    #: this shard.
    coordinator: object | None = None
    _last_rejected: int = field(default=0, repr=False)
    #: Serializes a decision (observe/force) with its application to the
    #: pool: without it, a tick that decided a transition could apply it
    #: *after* a concurrent operator force completed, silently overriding
    #: the pin while the held controller reports the forced level.
    _decide_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def signal(self) -> LoadSignal:
        rejected = self.metrics.rejected_requests
        delta = rejected - self._last_rejected
        self._last_rejected = rejected
        budget_ms = getattr(self.metrics, "latency_budget_ms", None)
        return LoadSignal(
            pressure=self.admission.pressure,
            queue_images=self.batcher.pending_images,
            queue_capacity=self.batcher.max_batch,
            queue_age_s=self.batcher.oldest_pending_age(),
            rejected_delta=delta,
            p99_latency_s=self.metrics.recent_p99(),
            latency_budget_s=(budget_ms / 1000.0) if budget_ms else None,
        )

    def tick(self) -> Transition | None:
        """One control-loop step; applies and records any transition.

        Standalone (no coordinator) the local controller's decision is
        applied directly.  Under a coordinator the local decision only
        updates this shard's published *desire*; what gets applied is the
        coordinator's service-wide recommendation, so every shard serves
        the same rung (no independent flapping).  A held controller
        (operator force/hold) publishes its pin but neither follows nor
        drags the quorum.
        """
        if self.controller is None:
            return None
        signal = self.signal()
        with self._decide_lock:
            local = self.controller.observe(signal)
            if self.coordinator is None:
                if local is not None:
                    self._apply(local)
                return local
            return self._coordinate(signal, local)

    def _coordinate(self, signal: LoadSignal, local) -> Transition | None:
        """Publish local desire, then follow the quorum recommendation."""
        applied = self.pool.current_level(self.endpoint)
        held = self.controller.held
        self.coordinator.update(
            self.endpoint,
            desired=self.controller.level,
            applied=applied,
            pressure=signal.pressure,
            held=held,
        )
        self.coordinator.flush()
        if held:
            return None
        recommended = self.coordinator.recommendation(
            self.endpoint, self.controller.num_levels
        )
        if recommended is None:
            # No quorum (no live peer state yet): act on our own decision.
            if local is not None:
                self._apply(local)
            return local
        if recommended == applied:
            return None
        transition = Transition(
            at=time.monotonic(),
            from_level=applied,
            to_level=recommended,
            reason=(
                f"coordinator quorum (local desire {self.controller.level})"
            ),
            pressure=signal.pressure,
        )
        self._apply(transition)
        return transition

    def force(self, level: int, hold: bool | None = False) -> Transition | None:
        """Operator override (``POST .../operating_point``)."""
        if self.controller is None:
            if level != 0:
                raise ValueError(
                    f"endpoint {self.endpoint!r} has a single operating point"
                )
            return None
        with self._decide_lock:
            transition = self.controller.force(level, hold=hold)
            if transition is not None:
                self._apply(transition)
        return transition

    def release(self) -> None:
        """Resume automatic walking after a held :meth:`force`.

        Under a coordinator the un-pinned shard must not re-join the
        quorum voting its stale forced rung (a pin at a degraded rung
        would drag every peer down); its desire resyncs to the current
        recommendation of the *other* shards -- our own channel document
        still says ``held`` until the next tick, so it has no vote in
        this gather.
        """
        if self.controller is None:
            return
        with self._decide_lock:
            self.controller.release()
            if self.coordinator is not None:
                recommended = self.coordinator.recommendation(
                    self.endpoint, self.controller.num_levels
                )
                if recommended is not None:
                    self.controller.resync(recommended)
            else:
                self.controller.resync(
                    self.pool.current_level(self.endpoint)
                )

    def _apply(self, transition: Transition) -> None:
        try:
            point = self.pool.set_operating_point(
                self.endpoint, transition.to_level
            )
        except Exception:
            # The swap did not land: keep walking from the rung the
            # replicas actually serve at, not the one we wanted.
            self.controller.resync(self.pool.current_level(self.endpoint))
            raise
        self.metrics.set_operating_point(transition.to_level, point.describe())
        self.metrics.record_transition(transition)
        self._reprice(point)
        telemetry_bus.publish(
            "rung_transition",
            endpoint=self.endpoint,
            from_level=transition.from_level,
            to_level=transition.to_level,
            direction=transition.direction,
            reason=transition.reason,
            pressure=transition.pressure,
        )

    def _reprice(self, point) -> None:
        """Rung-aware admission: price in-flight images by the serving rung.

        A degraded (faster) rung serves images sooner, so the same pending
        budget represents less queueing delay; scaling the admission price
        by the rung's expected speedup keeps the budget *time*-constant
        instead of image-constant across the ladder.
        """
        set_price = getattr(self.admission, "set_price", None)
        if set_price is None:
            return
        try:
            ladder = self.pool.ladder(self.endpoint)
        except Exception:  # noqa: BLE001 - pricing is best-effort
            return
        top_speedup = max(1e-9, ladder.top.expected_speedup)
        set_price(top_speedup / max(1e-9, point.expected_speedup))

    def expected_rung(self) -> int:
        """The rung a request admitted now should expect to be served at."""
        return self.pool.current_level(self.endpoint)

    def snapshot(self) -> dict:
        if self.controller is None:
            snapshot = {"level": 0, "num_levels": 1, "held": False,
                        "transitions": 0, "recent_transitions": []}
        else:
            snapshot = self.controller.snapshot()
        if self.coordinator is not None:
            snapshot["coordinator"] = self.coordinator.snapshot()
        return snapshot
