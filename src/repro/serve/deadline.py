"""Request deadlines: the lifeline every layer of the stack honors.

A :class:`Deadline` is an *absolute* point on the monotonic clock by which
a request must have been answered.  Clients attach one as a relative
budget (``deadline_ms``, either an ``X-Deadline-Ms`` header or a
``deadline_ms`` body field); the front-end pins it to the arrival instant
and threads the same object through admission
(:class:`~repro.serve.registry.AdmissionController` refuses already-dead
arrivals), into the batcher
(:class:`~repro.serve.batcher.DynamicBatcher` cancels expired requests
*before* engine compute -- serving the dead wastes exactly the capacity an
overloaded endpoint is short of), and back out as an explicit
``deadline_exceeded`` response -- never a silent drop.

Everything takes an injectable ``clock`` so chaos tests can drive expiry
deterministically (see :class:`repro.chaos.actors.ClockPerturber`).
"""

from __future__ import annotations

import time

#: Header carrying the client's relative deadline budget in milliseconds.
DEADLINE_HEADER = "x-deadline-ms"

#: Header carrying the client's idempotency key (stable across retries).
IDEMPOTENCY_HEADER = "x-idempotency-key"


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before (or while) it was served.

    Raised into a request's future by the batcher when it cancels an
    expired request ahead of engine compute; mapped by the front-end to a
    ``504 deadline_exceeded`` response and by the chaos ledger to the
    ``expired`` outcome.
    """

    def __init__(self, message: str = "deadline exceeded",
                 late_by_s: float = 0.0):
        super().__init__(message)
        self.late_by_s = float(late_by_s)


class Deadline:
    """An absolute monotonic-clock deadline.

    Comparisons are against an injectable ``clock`` (defaulting to
    ``time.monotonic``) so perturbed clocks and fake test clocks thread
    through every expiry decision identically.
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    @classmethod
    def after_ms(cls, budget_ms: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``budget_ms`` from now on ``clock``."""
        return cls(clock() + float(budget_ms) / 1000.0)

    def remaining_s(self, clock=time.monotonic) -> float:
        """Seconds left (negative once expired)."""
        return self.at - clock()

    def remaining_ms(self, clock=time.monotonic) -> float:
        return self.remaining_s(clock) * 1000.0

    def expired(self, clock=time.monotonic) -> bool:
        return clock() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at:.6f})"


def parse_deadline_ms(headers: dict | None, payload: dict | None) -> float | None:
    """The relative deadline budget of one request, if it carries one.

    The ``X-Deadline-Ms`` header wins over a ``deadline_ms`` body field
    (proxies can inject/clamp headers without parsing bodies).  Returns
    the budget in milliseconds, or ``None``; malformed or non-positive
    values raise ``ValueError`` (the front-end answers 400 -- a garbled
    lifeline must fail loudly, not silently serve without one).
    """
    raw = None
    if headers:
        raw = headers.get(DEADLINE_HEADER)
    if raw is None and payload and "deadline_ms" in payload:
        raw = payload["deadline_ms"]
    if raw is None:
        return None
    try:
        budget = float(raw)
    except (TypeError, ValueError):
        raise ValueError(f"malformed deadline_ms: {raw!r}") from None
    if budget <= 0:
        raise ValueError(f"deadline_ms must be positive, got {budget!r}")
    return budget
