"""Warm NB-SMT engine replicas backing the serving endpoints.

Serving latency budgets rule out calibrating (let alone training) a model
on the request path, so each endpoint is backed by *warm replicas*: a
calibrated :class:`~repro.quant.qmodel.QuantizedModel` leased from the
refcounted experiment-harness cache
(:func:`repro.eval.experiments.common.acquire_harness`) plus one
pre-configured :class:`~repro.core.engine.NBSMTEngine` whose executors,
lookup tables and weight-quantization caches are primed by a warm-up
forward pass before the endpoint goes live.

Two replica flavors share one interface:

* :class:`InlineReplica` executes in-process (the default; on a single-CPU
  box nothing beats it).
* :class:`ForkedReplica` mirrors the replica into a persistent forked
  worker process -- the same copy-on-write fork machinery the sweep
  scheduler uses (:mod:`repro.eval.parallel`), so the child inherits the
  parent's already-calibrated harness for free and multicore machines run
  batches of different models (or multiple replicas of a hot model) in
  parallel.  Workers drain their in-flight batch and close their engines
  on SIGTERM/SIGINT.

:class:`EnginePool` owns the replicas and hands each
:class:`~repro.serve.batcher.DynamicBatcher` a runner closure that
concatenates request payloads, executes the batch on a free replica,
splits the logits back per request and folds the batch's
:class:`~repro.core.smt.SMTStatistics` into the endpoint metrics.
Execution is bit-identical to the harness path: the same engine stack,
the same statistics, batched or not.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import threading
import time
import weakref

import numpy as np

from repro.core.engine import NBSMTEngine
from repro.core.smt import SMTStatistics
from repro.eval import parallel
from repro.eval.throttle import (
    OperatingLadder,
    OperatingPoint,
    operating_ladder,
    throttle_assignment,
)
from repro.serve.registry import ModelSpec
from repro.telemetry import bus as telemetry_bus


#: One execution lock per live QuantizedModel: endpoints aliased to the same
#: zoo model (``ModelSpec(model=...)``) share one cached harness, and their
#: batcher threads must not reconfigure/execute the same model concurrently.
_QMODEL_LOCKS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
_QMODEL_LOCKS_GUARD = threading.Lock()


def _execution_lock(qmodel) -> threading.RLock:
    with _QMODEL_LOCKS_GUARD:
        lock = _QMODEL_LOCKS.get(qmodel)
        if lock is None:
            lock = threading.RLock()
            _QMODEL_LOCKS[qmodel] = lock
        return lock


class CachedHarnessProvider:
    """Default lease source: the refcounted experiment-harness LRU."""

    def __init__(self, scale: str = "fast"):
        self.scale = scale

    def acquire(self, spec: ModelSpec):
        from repro.eval.experiments.common import acquire_harness

        return acquire_harness(spec.zoo_model, self.scale)

    def release(self, harness) -> None:
        from repro.eval.experiments.common import release_harness

        release_harness(harness)


class InlineReplica:
    """One warm (harness, engine) pair executing batches in-process."""

    def __init__(self, spec: ModelSpec, provider, warm: bool = True):
        self.spec = spec
        self.provider = provider
        self.harness = provider.acquire(spec)
        self.engine = NBSMTEngine(
            spec.resolved_policy(),
            collect_stats=spec.collect_stats,
            fast4t_impl=spec.fast4t_impl,
            prune_blocks=spec.prune_blocks,
        )
        self._closed = False
        self._point: OperatingPoint | None = None
        self._pace_unit: float | None = None
        self._model_speedup: float | None = None
        self._lock = _execution_lock(self.harness.qmodel)
        with self._lock:
            self._install()
        if warm:
            self.warm()

    def _install(self) -> None:
        qmodel = self.harness.qmodel
        qmodel.ensure_installed()
        if self._point is not None:
            qmodel.set_threads(dict(self._point.threads))
        elif self.spec.slow_layers:
            qmodel.set_threads(
                throttle_assignment(
                    qmodel,
                    self.spec.threads,
                    list(self.spec.slow_layers),
                    self.spec.slow_threads,
                )
            )
        else:
            qmodel.set_threads(self.spec.threads)
        if self.spec.reorder:
            qmodel.set_permutations(
                self.harness.reorder_permutations(self.spec.threads)
            )
        else:
            self.harness.clear_permutations()
        qmodel.set_engine(self.engine)
        qmodel.clear_stats()
        self._assignment = qmodel.thread_assignment()
        self._model_speedup = None
        self._permutations = {
            name: layer.context.permutation
            for name, layer in qmodel.layers.items()
        }

    def thread_assignment(self) -> dict[str, int]:
        return self.harness.qmodel.thread_assignment()

    # -- operating point ---------------------------------------------------
    @property
    def level(self) -> int:
        """The ladder rung this replica currently serves (0 when static)."""
        return self._point.level if self._point is not None else 0

    def set_operating_point(self, point: OperatingPoint) -> None:
        """Swap to another rung's thread assignment.

        Taking the execution lock makes the swap atomic with respect to
        in-flight micro-batches: a batch that already started finishes at
        the point that admitted it, the next batch runs at ``point``.
        """
        with self._lock:
            self._point = point
            self._install()

    def set_pacing(self, unit_seconds_per_image: float | None) -> None:
        """Pace batches to the modeled SySMT service time.

        ``unit`` is the modeled seconds one image takes at speedup 1.0; a
        batch of ``B`` images at a point with modeled speedup ``S`` then
        takes at least ``B * unit / S`` of wall clock (topped up by
        sleeping after the host computation).  ``None`` disables pacing.
        """
        self._pace_unit = unit_seconds_per_image

    def _current_speedup(self) -> float:
        """Modeled speedup of the active assignment (pacing denominator)."""
        if self._point is not None:
            return max(1e-9, self._point.expected_speedup)
        if self._model_speedup is None:
            self._model_speedup = self.harness.speedup_for(self._assignment)
        return max(1e-9, self._model_speedup)

    def warm(self) -> None:
        """Prime engine executors and quantization caches before traffic."""
        sample = self.harness.eval_images[:1]
        if sample.shape[0]:
            with self._lock:
                self._reassert()
                self.harness.qmodel.warm(sample)
                self.engine.reset_stats()

    def _reassert(self) -> None:
        """Re-assert this replica's configuration on the shared model.

        A harness shared with experiment code (or with another endpoint
        aliased to the same zoo model) may have been reconfigured between
        requests -- different engine, thread assignment or permutations.
        """
        qmodel = self.harness.qmodel
        qmodel.ensure_installed()
        if (
            qmodel.default_engine is not self.engine
            or qmodel.thread_assignment() != self._assignment
            or any(
                layer.context.permutation is not self._permutations[name]
                for name, layer in qmodel.layers.items()
            )
        ):
            self._install()

    def infer(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, dict[str, SMTStatistics]]:
        """Run one batch; returns logits and the batch's per-layer stats."""
        logits, layer_stats, _level = self.infer_ex(images)
        return logits, layer_stats

    def infer_ex(
        self, images: np.ndarray, trace: dict | None = None
    ) -> tuple[np.ndarray, dict[str, SMTStatistics], int]:
        """Like :meth:`infer`, also reporting the rung that served the batch.

        Execution holds the shared model's lock, so endpoints aliased to
        the same zoo model serialize instead of corrupting each other, and
        operating-point swaps wait for the in-flight batch.  With pacing
        enabled, the batch is padded (by sleeping, outside the lock) up to
        the modeled SySMT service time of the active operating point.

        ``trace`` is an optional mutable carrier: when given, the batch's
        engine-compute timing (wall start/duration, executing pid, rung,
        per-layer breakdown from the engine) is stored under
        ``trace["engine"]`` for the caller to turn into trace spans.
        """
        if self._closed:
            raise RuntimeError(f"replica for {self.spec.name!r} is closed")
        with self._lock:
            self._reassert()
            pace = self._pace_unit
            speedup = self._current_speedup() if pace is not None else 1.0
            self.engine.reset_stats()
            started = time.monotonic()
            wall_started = time.time()
            logits = self.harness.qmodel.forward(images)
            layer_stats = self.engine.layer_stats
            if trace is not None:
                trace["engine"] = {
                    "start": wall_started,
                    "duration_s": time.time() - wall_started,
                    "pid": os.getpid(),
                    "level": self.level,
                    "layers": list(self.engine.layer_times),
                }
            self.engine.reset_stats()
            level = self.level
        if pace is not None:
            target = float(images.shape[0]) * pace / speedup
            remaining = target - (time.monotonic() - started)
            if remaining > 0:
                time.sleep(remaining)
        return logits, layer_stats, level

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.provider.release(self.harness)


def _forked_replica_main(spec: ModelSpec, provider, conn) -> None:
    """Worker-process loop of a :class:`ForkedReplica`.

    SIGTERM/SIGINT request a drain: the in-flight batch finishes and its
    response is sent before the engine is closed and the process exits.
    """
    parallel.IN_POOL_WORKER = True
    # Inherited telemetry subscribers belong to the parent server process.
    telemetry_bus.get_bus().reset_after_fork(role="serve-replica")
    stop = {"requested": False}

    def _request_stop(signum, frame):
        stop["requested"] = True

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    replica = InlineReplica(spec, provider, warm=False)
    try:
        while not stop["requested"]:
            try:
                # Bounded poll instead of a blocking recv: a signal that
                # lands while the worker is idle is noticed within the
                # poll interval (a blocked recv would simply be retried
                # after the handler returns, PEP 475).
                if not conn.poll(0.2):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            command, payload = message
            try:
                if command == "infer":
                    # The engine-compute timing is always measured and
                    # serialized back with the result: the parent owns the
                    # sampling decision, so the child cannot know whether
                    # this batch's trace will be kept (exemplars are
                    # retroactive).  The payload is a handful of floats.
                    carrier: dict = {}
                    logits, layer_stats, level = replica.infer_ex(
                        payload, trace=carrier
                    )
                    stats_payloads = {
                        name: stats.to_payload()
                        for name, stats in layer_stats.items()
                    }
                    reply = (
                        "ok", logits, stats_payloads, level,
                        carrier.get("engine"),
                    )
                elif command == "point":
                    replica.set_operating_point(payload)
                    reply = ("ok",)
                elif command == "pace":
                    replica.set_pacing(payload)
                    reply = ("ok",)
                else:
                    reply = ("error", f"unknown command {command!r}")
            except Exception as exc:  # noqa: BLE001 - reported to parent
                reply = ("error", repr(exc))
            conn.send(reply)
    finally:
        replica.close()
        conn.close()


class ForkedReplica:
    """A warm replica living in a persistent forked worker process.

    The fork happens *after* the parent has (or can cheaply build) the
    calibrated harness in its cache, so the child inherits it copy-on-write
    -- the same trick the sweep scheduler's per-model workers use.
    """

    def __init__(self, spec: ModelSpec, provider, warm: bool = True):
        if not parallel.fork_available():  # pragma: no cover - platform
            raise RuntimeError("forked replicas require the fork start method")
        import multiprocessing

        self.spec = spec
        self.provider = provider
        self._warm = warm
        context = multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_forked_replica_main,
            args=(spec, provider, child_conn),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()
        self._closed = False
        self._point: OperatingPoint | None = None
        self._pace_unit: float | None = None
        if warm:
            self.warm()

    def warm(self) -> None:
        """One throwaway request primes the child's engine caches."""
        # The child replica is constructed unwarmed; any inference warms it.

    @property
    def level(self) -> int:
        return self._point.level if self._point is not None else 0

    def _command(self, command: str, payload) -> tuple:
        """One request/reply round trip on the worker pipe (under lock)."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"replica for {self.spec.name!r} is closed")
            try:
                self._conn.send((command, payload))
                reply = self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                # The worker process died; poison this replica so the
                # replica set respawns it instead of reusing a dead pipe.
                self._closed = True
                raise RuntimeError(
                    f"forked replica for {self.spec.name!r} died: {exc!r}"
                ) from exc
        if reply[0] == "error":
            raise RuntimeError(
                f"forked replica for {self.spec.name!r} failed: {reply[1]}"
            )
        return reply

    def set_operating_point(self, point: OperatingPoint) -> None:
        """Swap the worker's rung; waits for its in-flight batch (atomic).

        The target is recorded *before* the pipe round trip: if the worker
        turns out to be dead, the respawned replacement still comes up at
        the intended rung (respawn re-applies the stored target).
        """
        self._point = point
        self._command("point", point)

    def set_pacing(self, unit_seconds_per_image: float | None) -> None:
        self._pace_unit = unit_seconds_per_image
        self._command("pace", unit_seconds_per_image)

    def respawn(self) -> "ForkedReplica":
        """A fresh replica replacing this (dead) one; reaps the remains."""
        with self._lock:
            self._closed = True
            self._reap(timeout=1.0)
        fresh = ForkedReplica(self.spec, self.provider, warm=self._warm)
        # The replacement worker must serve at the same rung (and pacing)
        # as the one it replaces, not at the spec's static configuration.
        # If re-applying fails (the new child died too), reap it instead of
        # leaking an orphaned worker process per respawn attempt.
        try:
            if self._point is not None:
                fresh.set_operating_point(self._point)
            if self._pace_unit is not None:
                fresh.set_pacing(self._pace_unit)
        except BaseException:
            fresh.close()
            raise
        return fresh

    def _reap(self, timeout: float) -> None:
        """Join (escalating to kill) the worker and close the pipe."""
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.kill()
            self._process.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def infer(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, dict[str, SMTStatistics]]:
        logits, layer_stats, _level = self.infer_ex(images)
        return logits, layer_stats

    def infer_ex(
        self, images: np.ndarray, trace: dict | None = None
    ) -> tuple[np.ndarray, dict[str, SMTStatistics], int]:
        reply = self._command("infer", images)
        _, logits, payloads, level = reply[:4]
        if trace is not None and len(reply) > 4 and reply[4] is not None:
            trace["engine"] = reply[4]
        layer_stats = {
            name: SMTStatistics.from_payload(payload)
            for name, payload in payloads.items()
        }
        return logits, layer_stats, level

    def close(self, timeout: float = 10.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._reap(timeout=timeout)


#: Respawn-storm bounds: a crashing worker gets this many consecutive
#: respawns (with exponential backoff between attempts) before its slot is
#: declared failed -- hot-looping forks against a model that dies on every
#: batch would otherwise burn the host while the endpoint stays broken.
RESPAWN_BUDGET = 5
RESPAWN_BACKOFF_S = 0.5
RESPAWN_BACKOFF_MAX_S = 30.0
#: A slot quiet for this long earns its budget back (the crash was
#: transient, not a crash loop).
RESPAWN_RESET_S = 60.0


class ReplicaSet:
    """Replicas of one endpoint plus a blocking free-list dispatcher."""

    def __init__(
        self,
        replicas: list,
        respawn_budget: int = RESPAWN_BUDGET,
        respawn_backoff_s: float = RESPAWN_BACKOFF_S,
        respawn_backoff_max_s: float = RESPAWN_BACKOFF_MAX_S,
        respawn_reset_s: float = RESPAWN_RESET_S,
        clock=time.monotonic,
    ):
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.replicas = replicas
        self.respawn_budget = int(respawn_budget)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.respawn_backoff_max_s = float(respawn_backoff_max_s)
        self.respawn_reset_s = float(respawn_reset_s)
        self._clock = clock
        self._replicas_lock = threading.Lock()
        self._respawn_counts = [0] * len(replicas)
        self._respawn_not_before = [float("-inf")] * len(replicas)
        self._last_respawn_at = [float("-inf")] * len(replicas)
        self._failed_slots: set[int] = set()
        self.total_respawns = 0
        self._free: queue_module.Queue = queue_module.Queue()
        for replica in replicas:
            self._free.put(replica)

    def infer(self, images: np.ndarray):
        logits, layer_stats, _level = self.infer_ex(images)
        return logits, layer_stats

    def infer_ex(self, images: np.ndarray, trace: dict | None = None):
        """Run on the next free replica (blocks while all are busy).

        A replica whose worker process died is replaced by a fresh respawn
        before its slot returns to the free list, so one crash costs one
        failed batch, not a permanently broken slot.  A ``trace`` carrier
        (see :meth:`InlineReplica.infer_ex`) additionally records which
        replica died under ``trace["respawn"]`` on the failure path, so a
        retried request's trace can annotate the respawn gap it survived.
        """
        replica = self._free.get()
        try:
            result = replica.infer_ex(images, trace=trace)
        except BaseException:
            if trace is not None:
                process = getattr(replica, "_process", None)
                trace["respawn"] = {
                    "endpoint": replica.spec.name,
                    "pid": getattr(process, "pid", None),
                    "at": time.time(),
                }
            self._free.put(self._replace_if_dead(replica))
            raise
        self._free.put(replica)
        return result

    def set_operating_point(self, point) -> None:
        """Swap every replica to ``point``.

        Each swap takes that replica's execution lock, so in-flight batches
        finish at the rung that admitted them and later batches run at the
        new rung; no batch observes a half-applied assignment.  A dead
        forked worker does not fail the swap: its target point is already
        recorded on the replica, so the respawn (through the infer path)
        brings the replacement up at the new rung.

        The walk holds the replica-list lock, which serializes it with
        respawns: either the respawn finishes first (the fresh replica is
        in the list and receives the swap) or the swap records the new
        target on the dead object first and the respawn re-applies it --
        never a fresh worker left on the old rung.
        """
        with self._replicas_lock:
            for replica in list(self.replicas):
                try:
                    replica.set_operating_point(point)
                except RuntimeError:
                    if not getattr(replica, "_closed", False):
                        raise

    def set_pacing(self, unit_seconds_per_image: float | None) -> None:
        with self._replicas_lock:
            for replica in list(self.replicas):
                try:
                    replica.set_pacing(unit_seconds_per_image)
                except RuntimeError:
                    if not getattr(replica, "_closed", False):
                        raise

    def _replace_if_dead(self, replica):
        if not (
            getattr(replica, "_closed", False) and hasattr(replica, "respawn")
        ):
            return replica
        # Respawn under the replica-list lock too (see set_operating_point):
        # a concurrent endpoint-wide swap either already stamped the dead
        # replica's target (respawn re-applies it) or will find the fresh
        # replica in the list.
        fresh = None
        newly_failed = False
        with self._replicas_lock:
            try:
                slot = self.replicas.index(replica)
            except ValueError:  # pragma: no cover - already replaced
                return replica
            if slot in self._failed_slots:
                return replica
            now = self._clock()
            if now - self._last_respawn_at[slot] > self.respawn_reset_s:
                self._respawn_counts[slot] = 0
            if now < self._respawn_not_before[slot]:
                # Inside the backoff window: hand the dead replica back so
                # its requests fail fast instead of forking in a hot loop.
                return replica
            attempt = self._respawn_counts[slot] + 1
            self._respawn_counts[slot] = attempt
            self._last_respawn_at[slot] = now
            if attempt > self.respawn_budget:
                self._failed_slots.add(slot)
                failed_count = len(self._failed_slots)
                newly_failed = True
            else:
                self._respawn_not_before[slot] = now + min(
                    self.respawn_backoff_max_s,
                    self.respawn_backoff_s * 2 ** (attempt - 1),
                )
                try:
                    fresh = replica.respawn()
                except Exception:
                    # The replacement died during spawn too; the failed
                    # attempt is already counted, retry after backoff.
                    return replica
                self.replicas[slot] = fresh
                self.total_respawns += 1
        if newly_failed:
            telemetry_bus.publish(
                "replica_failed",
                endpoint=replica.spec.name,
                slot=slot,
                respawn_budget=self.respawn_budget,
                replicas=len(self.replicas),
                failed_replicas=failed_count,
            )
            return replica
        telemetry_bus.publish(
            "replica_respawn",
            endpoint=replica.spec.name,
            level=getattr(fresh, "level", 0),
            attempt=attempt,
        )
        return fresh

    def worker_pids(self) -> list[int]:
        """Live forked-worker pids (empty for inline replicas).

        The chaos lane's process reaper draws its victims from here; it is
        also handy for operators attaching debuggers to a wedged worker.
        """
        with self._replicas_lock:
            replicas = list(self.replicas)
        pids = []
        for replica in replicas:
            process = getattr(replica, "_process", None)
            if process is not None and process.is_alive():
                pids.append(process.pid)
        return pids

    def health(self) -> dict:
        """Degradation summary: failed slots, respawn totals, live count."""
        with self._replicas_lock:
            failed = len(self._failed_slots)
            return {
                "replicas": len(self.replicas),
                "failed_replicas": failed,
                "live_replicas": len(self.replicas) - failed,
                "total_respawns": self.total_respawns,
                "degraded": failed > 0,
            }

    @property
    def degraded(self) -> bool:
        with self._replicas_lock:
            return bool(self._failed_slots)

    def close(self) -> None:
        with self._replicas_lock:
            replicas = list(self.replicas)
        for replica in replicas:
            replica.close()


class EnginePool:
    """Warm replica sets for every endpoint of a registry.

    ``fork_workers`` > 0 backs each endpoint with that many forked worker
    replicas *in addition to* building (and keeping) the calibrated harness
    in the parent, which the children then inherit copy-on-write; ``0``
    (the default) serves inline.  ``provider`` overrides where harnesses
    come from (tests inject pre-built ones); by default they are leased
    from the refcounted experiment-harness cache at ``scale``.
    """

    def __init__(
        self,
        registry,
        scale: str = "fast",
        fork_workers: int = 0,
        provider=None,
        warm: bool = True,
    ):
        self.registry = registry
        self.scale = scale
        self.fork_workers = int(fork_workers)
        self.provider = provider or CachedHarnessProvider(scale)
        self.warm = warm
        self._sets: dict[str, ReplicaSet] = {}
        self._input_shapes: dict[str, tuple[int, ...]] = {}
        self._ladders: dict[str, OperatingLadder] = {}
        self._levels: dict[str, int] = {}
        self._pace_units: dict[str, float | None] = {}
        #: Serializes point swaps per endpoint (QoS ticks and operator
        #: overrides may race): the recorded level always matches the last
        #: swap actually applied to the replicas.
        self._point_locks: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()

    def replica_set(self, endpoint: str) -> ReplicaSet:
        """Build (or fetch) the warm replica set of one endpoint."""
        with self._lock:
            replica_set = self._sets.get(endpoint)
            if replica_set is None:
                spec = self.registry.get(endpoint)
                replica_set = ReplicaSet(self._build_replicas(spec))
                # Every replica starts at the top (highest-quality) rung.
                replica_set.set_operating_point(self._ladders[spec.name].top)
                if self._pace_units[spec.name] is not None:
                    replica_set.set_pacing(self._pace_units[spec.name])
                self._sets[endpoint] = replica_set
            return replica_set

    def _build_replicas(self, spec: ModelSpec) -> list:
        # The primary inline replica warms the harness in the parent; with
        # fork workers every forked child then inherits the calibrated
        # model copy-on-write instead of re-calibrating it.
        primary = InlineReplica(spec, self.provider, warm=self.warm)
        self._input_shapes[spec.name] = tuple(
            primary.harness.eval_images.shape[1:]
        )
        ladder = self._build_ladder(spec, primary)
        self._ladders[spec.name] = ladder
        self._levels[spec.name] = 0
        self._point_locks[spec.name] = threading.Lock()
        self._pace_units[spec.name] = (
            self._calibrate_pacing(spec, primary, ladder)
            if spec.pace_sysmt
            else None
        )
        replicas: list = []
        if self.fork_workers > 0 and parallel.fork_available():
            workers = max(self.fork_workers, spec.replicas)
            for _ in range(workers):
                replicas.append(ForkedReplica(spec, self.provider, warm=self.warm))
            primary.close()
        else:
            # Inline replicas of one endpoint would all wrap the same
            # cached QuantizedModel and serialize on its execution lock, so
            # more than one buys nothing: build exactly one.
            replicas.append(primary)
        return replicas

    def _build_ladder(self, spec: ModelSpec, primary: InlineReplica):
        """The endpoint's operating ladder (single-point when static).

        Adaptive specs run one baseline evaluation here (under the
        replica's execution lock) to rank the layers by recorded MSE --
        this is warm-up work, before the endpoint takes traffic.
        """
        harness = primary.harness
        with primary._lock:
            if spec.adaptive:
                ladder = operating_ladder(
                    harness,
                    base_threads=spec.threads,
                    slow_threads=spec.slow_threads,
                    rungs=spec.ladder_rungs,
                    policy=spec.resolved_policy(),
                    reorder=spec.reorder,
                    slow_layers=(
                        list(spec.slow_layers) if spec.slow_layers else None
                    ),
                )
                if len(ladder) < 2:
                    # e.g. threads=2 with the default slow_threads=2: no
                    # layer is slowable, so the endpoint would silently
                    # serve statically while claiming to be adaptive.
                    raise ValueError(
                        f"endpoint {spec.name!r} asked for "
                        f"{spec.ladder_rungs} ladder rungs but no layer is "
                        f"slowable below threads={spec.threads} at "
                        f"slow_threads={spec.slow_threads}; lower "
                        f"slow_threads (e.g. 1) or raise threads"
                    )
                return ladder
            assignment = dict(primary._assignment)
            point = OperatingPoint(
                level=0,
                slowed_layers=tuple(spec.slow_layers),
                threads=assignment,
                expected_speedup=harness.speedup_for(assignment),
                expected_mse=0.0,
            )
            return OperatingLadder((point,))

    def _calibrate_pacing(
        self, spec: ModelSpec, primary: InlineReplica, ladder
    ) -> float:
        """Modeled seconds-per-image at speedup 1.0 (the pacing unit).

        Calibrated so the *fastest* rung's pacing floor equals its host
        cost (pacing there is a no-op) and every slower rung's wall clock
        is topped up to the modeled ratio -- wall-clock throughput across
        rungs then tracks the paper's MAC model instead of the host
        simulator's inverted cost profile.
        """
        fastest = ladder.fastest
        primary.set_operating_point(fastest)
        images = primary.harness.eval_images
        batch = images[: max(1, min(spec.max_batch, images.shape[0]))]
        primary.infer(batch)  # warm BLAS/LUT caches at this batch shape
        best = float("inf")
        for _ in range(2):
            started = time.monotonic()
            primary.infer(batch)
            best = min(best, time.monotonic() - started)
        return (best / batch.shape[0]) * max(1.0, fastest.expected_speedup)

    # -- operating points --------------------------------------------------
    def ladder(self, endpoint: str) -> OperatingLadder:
        """The endpoint's operating ladder (builds the replicas if needed)."""
        self.replica_set(endpoint)
        return self._ladders[endpoint]

    def current_level(self, endpoint: str) -> int:
        self.replica_set(endpoint)
        with self._lock:
            return self._levels[endpoint]

    def current_point(self, endpoint: str) -> OperatingPoint:
        return self.ladder(endpoint)[self.current_level(endpoint)]

    def pacing_unit(self, endpoint: str) -> float | None:
        """Seconds-per-image pacing unit (None when pacing is off)."""
        self.replica_set(endpoint)
        return self._pace_units[endpoint]

    def set_pacing_unit(self, endpoint: str, unit: float | None) -> None:
        """Override the calibrated pacing unit on every replica.

        Benchmarks comparing pools use this to drive both with one
        measured unit, so their paced capacities are identical by
        construction instead of within calibration noise.
        """
        self.replica_set(endpoint).set_pacing(unit)
        with self._lock:
            self._pace_units[endpoint] = unit

    def set_operating_point(self, endpoint: str, level: int) -> OperatingPoint:
        """Move every replica of ``endpoint`` to the given ladder rung.

        Safe under traffic: each replica swaps under its execution lock,
        so in-flight batches finish at the rung that admitted them and the
        response of every request reports the rung that actually served it.
        """
        replica_set = self.replica_set(endpoint)
        ladder = self._ladders[endpoint]
        if not 0 <= level < len(ladder):
            raise ValueError(
                f"endpoint {endpoint!r} has no ladder rung {level} "
                f"(ladder has {len(ladder)} rungs)"
            )
        point = ladder[level]
        with self._point_locks[endpoint]:
            replica_set.set_operating_point(point)
            with self._lock:
                self._levels[endpoint] = level
        return point

    def replica_count(self, endpoint: str) -> int:
        """Replicas backing one endpoint (= useful batcher concurrency)."""
        return len(self.replica_set(endpoint).replicas)

    def replica_health(self) -> dict[str, dict]:
        """Per-endpoint replica degradation (built endpoints only).

        Never builds replicas: an endpoint that has not taken traffic yet
        is simply absent (health checks must not trigger warm-up).
        """
        with self._lock:
            sets = dict(self._sets)
        return {
            name: replica_set.health() for name, replica_set in sets.items()
        }

    def input_shape(self, endpoint: str) -> tuple[int, ...]:
        """Per-image input shape ``(C, H, W)`` the endpoint's model expects."""
        self.replica_set(endpoint)
        return self._input_shapes[endpoint]

    def runner_for(self, endpoint: str, metrics=None, with_point: bool = False):
        """The batch runner closure handed to this endpoint's batcher.

        Payloads are image arrays of shape ``(B_i, C, H, W)``; the runner
        concatenates them, executes once, splits the logits back per
        request and merges the batch's NB-SMT statistics into ``metrics``
        (an :class:`repro.serve.metrics.EndpointMetrics`) when given.
        ``with_point=True`` returns ``(logits, level)`` pairs instead of
        bare logits, so the front-end can report the operating point that
        served each request.
        """
        replica_set = self.replica_set(endpoint)

        def run_batch(payloads: list[np.ndarray], trace: dict | None = None) -> list:
            sizes = [int(payload.shape[0]) for payload in payloads]
            if len(payloads) == 1:
                images = payloads[0]
            else:
                images = np.concatenate(payloads, axis=0)
            logits, layer_stats, level = replica_set.infer_ex(
                images, trace=trace
            )
            if metrics is not None:
                if layer_stats:
                    metrics.merge_layer_stats(layer_stats)
                metrics.record_served_level(level, sum(sizes))
            results = []
            offset = 0
            for size in sizes:
                block = logits[offset : offset + size]
                results.append((block, level) if with_point else block)
                offset += size
            return results

        return run_batch

    def close(self) -> None:
        """Close every replica (releasing the harness leases)."""
        with self._lock:
            sets, self._sets = list(self._sets.values()), {}
        for replica_set in sets:
            replica_set.close()
