"""Warm NB-SMT engine replicas backing the serving endpoints.

Serving latency budgets rule out calibrating (let alone training) a model
on the request path, so each endpoint is backed by *warm replicas*: a
calibrated :class:`~repro.quant.qmodel.QuantizedModel` leased from the
refcounted experiment-harness cache
(:func:`repro.eval.experiments.common.acquire_harness`) plus one
pre-configured :class:`~repro.core.engine.NBSMTEngine` whose executors,
lookup tables and weight-quantization caches are primed by a warm-up
forward pass before the endpoint goes live.

Two replica flavors share one interface:

* :class:`InlineReplica` executes in-process (the default; on a single-CPU
  box nothing beats it).
* :class:`ForkedReplica` mirrors the replica into a persistent forked
  worker process -- the same copy-on-write fork machinery the sweep
  scheduler uses (:mod:`repro.eval.parallel`), so the child inherits the
  parent's already-calibrated harness for free and multicore machines run
  batches of different models (or multiple replicas of a hot model) in
  parallel.  Workers drain their in-flight batch and close their engines
  on SIGTERM/SIGINT.

:class:`EnginePool` owns the replicas and hands each
:class:`~repro.serve.batcher.DynamicBatcher` a runner closure that
concatenates request payloads, executes the batch on a free replica,
splits the logits back per request and folds the batch's
:class:`~repro.core.smt.SMTStatistics` into the endpoint metrics.
Execution is bit-identical to the harness path: the same engine stack,
the same statistics, batched or not.
"""

from __future__ import annotations

import queue as queue_module
import signal
import threading
import weakref

import numpy as np

from repro.core.engine import NBSMTEngine
from repro.core.smt import SMTStatistics
from repro.eval import parallel
from repro.eval.throttle import throttle_assignment
from repro.serve.registry import ModelSpec


#: One execution lock per live QuantizedModel: endpoints aliased to the same
#: zoo model (``ModelSpec(model=...)``) share one cached harness, and their
#: batcher threads must not reconfigure/execute the same model concurrently.
_QMODEL_LOCKS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
_QMODEL_LOCKS_GUARD = threading.Lock()


def _execution_lock(qmodel) -> threading.RLock:
    with _QMODEL_LOCKS_GUARD:
        lock = _QMODEL_LOCKS.get(qmodel)
        if lock is None:
            lock = threading.RLock()
            _QMODEL_LOCKS[qmodel] = lock
        return lock


class CachedHarnessProvider:
    """Default lease source: the refcounted experiment-harness LRU."""

    def __init__(self, scale: str = "fast"):
        self.scale = scale

    def acquire(self, spec: ModelSpec):
        from repro.eval.experiments.common import acquire_harness

        return acquire_harness(spec.zoo_model, self.scale)

    def release(self, harness) -> None:
        from repro.eval.experiments.common import release_harness

        release_harness(harness)


class InlineReplica:
    """One warm (harness, engine) pair executing batches in-process."""

    def __init__(self, spec: ModelSpec, provider, warm: bool = True):
        self.spec = spec
        self.provider = provider
        self.harness = provider.acquire(spec)
        self.engine = NBSMTEngine(
            spec.resolved_policy(),
            collect_stats=spec.collect_stats,
            fast4t_impl=spec.fast4t_impl,
            prune_blocks=spec.prune_blocks,
        )
        self._closed = False
        self._lock = _execution_lock(self.harness.qmodel)
        with self._lock:
            self._install()
        if warm:
            self.warm()

    def _install(self) -> None:
        qmodel = self.harness.qmodel
        qmodel.ensure_installed()
        if self.spec.slow_layers:
            qmodel.set_threads(
                throttle_assignment(
                    qmodel,
                    self.spec.threads,
                    list(self.spec.slow_layers),
                    self.spec.slow_threads,
                )
            )
        else:
            qmodel.set_threads(self.spec.threads)
        if self.spec.reorder:
            qmodel.set_permutations(
                self.harness.reorder_permutations(self.spec.threads)
            )
        else:
            self.harness.clear_permutations()
        qmodel.set_engine(self.engine)
        qmodel.clear_stats()
        self._assignment = qmodel.thread_assignment()
        self._permutations = {
            name: layer.context.permutation
            for name, layer in qmodel.layers.items()
        }

    def thread_assignment(self) -> dict[str, int]:
        return self.harness.qmodel.thread_assignment()

    def warm(self) -> None:
        """Prime engine executors and quantization caches before traffic."""
        sample = self.harness.eval_images[:1]
        if sample.shape[0]:
            with self._lock:
                self._reassert()
                self.harness.qmodel.warm(sample)
                self.engine.reset_stats()

    def _reassert(self) -> None:
        """Re-assert this replica's configuration on the shared model.

        A harness shared with experiment code (or with another endpoint
        aliased to the same zoo model) may have been reconfigured between
        requests -- different engine, thread assignment or permutations.
        """
        qmodel = self.harness.qmodel
        qmodel.ensure_installed()
        if (
            qmodel.default_engine is not self.engine
            or qmodel.thread_assignment() != self._assignment
            or any(
                layer.context.permutation is not self._permutations[name]
                for name, layer in qmodel.layers.items()
            )
        ):
            self._install()

    def infer(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, dict[str, SMTStatistics]]:
        """Run one batch; returns logits and the batch's per-layer stats.

        Execution holds the shared model's lock, so endpoints aliased to
        the same zoo model serialize instead of corrupting each other.
        """
        if self._closed:
            raise RuntimeError(f"replica for {self.spec.name!r} is closed")
        with self._lock:
            self._reassert()
            self.engine.reset_stats()
            logits = self.harness.qmodel.forward(images)
            layer_stats = self.engine.layer_stats
            self.engine.reset_stats()
        return logits, layer_stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.provider.release(self.harness)


def _forked_replica_main(spec: ModelSpec, provider, conn) -> None:
    """Worker-process loop of a :class:`ForkedReplica`.

    SIGTERM/SIGINT request a drain: the in-flight batch finishes and its
    response is sent before the engine is closed and the process exits.
    """
    parallel.IN_POOL_WORKER = True
    stop = {"requested": False}

    def _request_stop(signum, frame):
        stop["requested"] = True

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    replica = InlineReplica(spec, provider, warm=False)
    try:
        while not stop["requested"]:
            try:
                # Bounded poll instead of a blocking recv: a signal that
                # lands while the worker is idle is noticed within the
                # poll interval (a blocked recv would simply be retried
                # after the handler returns, PEP 475).
                if not conn.poll(0.2):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            images = message
            try:
                logits, layer_stats = replica.infer(images)
            except Exception as exc:  # noqa: BLE001 - reported to parent
                conn.send(("error", repr(exc)))
                continue
            payloads = {
                name: stats.to_payload() for name, stats in layer_stats.items()
            }
            conn.send(("ok", logits, payloads))
    finally:
        replica.close()
        conn.close()


class ForkedReplica:
    """A warm replica living in a persistent forked worker process.

    The fork happens *after* the parent has (or can cheaply build) the
    calibrated harness in its cache, so the child inherits it copy-on-write
    -- the same trick the sweep scheduler's per-model workers use.
    """

    def __init__(self, spec: ModelSpec, provider, warm: bool = True):
        if not parallel.fork_available():  # pragma: no cover - platform
            raise RuntimeError("forked replicas require the fork start method")
        import multiprocessing

        self.spec = spec
        self.provider = provider
        self._warm = warm
        context = multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_forked_replica_main,
            args=(spec, provider, child_conn),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()
        self._closed = False
        if warm:
            self.warm()

    def warm(self) -> None:
        """One throwaway request primes the child's engine caches."""
        # The child replica is constructed unwarmed; any inference warms it.

    def respawn(self) -> "ForkedReplica":
        """A fresh replica replacing this (dead) one; reaps the remains."""
        with self._lock:
            self._closed = True
            self._reap(timeout=1.0)
        return ForkedReplica(self.spec, self.provider, warm=self._warm)

    def _reap(self, timeout: float) -> None:
        """Join (escalating to kill) the worker and close the pipe."""
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.kill()
            self._process.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def infer(
        self, images: np.ndarray
    ) -> tuple[np.ndarray, dict[str, SMTStatistics]]:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"replica for {self.spec.name!r} is closed")
            try:
                self._conn.send(images)
                reply = self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                # The worker process died; poison this replica so the
                # replica set respawns it instead of reusing a dead pipe.
                self._closed = True
                raise RuntimeError(
                    f"forked replica for {self.spec.name!r} died: {exc!r}"
                ) from exc
        if reply[0] == "error":
            raise RuntimeError(
                f"forked replica for {self.spec.name!r} failed: {reply[1]}"
            )
        _, logits, payloads = reply
        layer_stats = {
            name: SMTStatistics.from_payload(payload)
            for name, payload in payloads.items()
        }
        return logits, layer_stats

    def close(self, timeout: float = 10.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._reap(timeout=timeout)


class ReplicaSet:
    """Replicas of one endpoint plus a blocking free-list dispatcher."""

    def __init__(self, replicas: list):
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.replicas = replicas
        self._free: queue_module.Queue = queue_module.Queue()
        for replica in replicas:
            self._free.put(replica)

    def infer(self, images: np.ndarray):
        """Run on the next free replica (blocks while all are busy).

        A replica whose worker process died is replaced by a fresh respawn
        before its slot returns to the free list, so one crash costs one
        failed batch, not a permanently broken slot.
        """
        replica = self._free.get()
        try:
            result = replica.infer(images)
        except BaseException:
            self._free.put(self._replace_if_dead(replica))
            raise
        self._free.put(replica)
        return result

    def _replace_if_dead(self, replica):
        if getattr(replica, "_closed", False) and hasattr(replica, "respawn"):
            try:
                fresh = replica.respawn()
            except Exception:  # pragma: no cover - respawn is best-effort
                return replica
            self.replicas[self.replicas.index(replica)] = fresh
            return fresh
        return replica

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()


class EnginePool:
    """Warm replica sets for every endpoint of a registry.

    ``fork_workers`` > 0 backs each endpoint with that many forked worker
    replicas *in addition to* building (and keeping) the calibrated harness
    in the parent, which the children then inherit copy-on-write; ``0``
    (the default) serves inline.  ``provider`` overrides where harnesses
    come from (tests inject pre-built ones); by default they are leased
    from the refcounted experiment-harness cache at ``scale``.
    """

    def __init__(
        self,
        registry,
        scale: str = "fast",
        fork_workers: int = 0,
        provider=None,
        warm: bool = True,
    ):
        self.registry = registry
        self.scale = scale
        self.fork_workers = int(fork_workers)
        self.provider = provider or CachedHarnessProvider(scale)
        self.warm = warm
        self._sets: dict[str, ReplicaSet] = {}
        self._input_shapes: dict[str, tuple[int, ...]] = {}
        self._lock = threading.Lock()

    def replica_set(self, endpoint: str) -> ReplicaSet:
        """Build (or fetch) the warm replica set of one endpoint."""
        with self._lock:
            replica_set = self._sets.get(endpoint)
            if replica_set is None:
                spec = self.registry.get(endpoint)
                replica_set = ReplicaSet(self._build_replicas(spec))
                self._sets[endpoint] = replica_set
            return replica_set

    def _build_replicas(self, spec: ModelSpec) -> list:
        replicas: list = []
        if self.fork_workers > 0 and parallel.fork_available():
            # Warm the harness in the parent first so every forked child
            # inherits the calibrated model copy-on-write instead of
            # re-calibrating it.
            parent = InlineReplica(spec, self.provider, warm=self.warm)
            self._input_shapes[spec.name] = tuple(
                parent.harness.eval_images.shape[1:]
            )
            workers = max(self.fork_workers, spec.replicas)
            for _ in range(workers):
                replicas.append(ForkedReplica(spec, self.provider, warm=self.warm))
            parent.close()
        else:
            # Inline replicas of one endpoint would all wrap the same
            # cached QuantizedModel and serialize on its execution lock, so
            # more than one buys nothing: build exactly one.
            replica = InlineReplica(spec, self.provider, warm=self.warm)
            self._input_shapes[spec.name] = tuple(
                replica.harness.eval_images.shape[1:]
            )
            replicas.append(replica)
        return replicas

    def replica_count(self, endpoint: str) -> int:
        """Replicas backing one endpoint (= useful batcher concurrency)."""
        return len(self.replica_set(endpoint).replicas)

    def input_shape(self, endpoint: str) -> tuple[int, ...]:
        """Per-image input shape ``(C, H, W)`` the endpoint's model expects."""
        self.replica_set(endpoint)
        return self._input_shapes[endpoint]

    def runner_for(self, endpoint: str, metrics=None):
        """The batch runner closure handed to this endpoint's batcher.

        Payloads are image arrays of shape ``(B_i, C, H, W)``; the runner
        concatenates them, executes once, splits the logits back per
        request and merges the batch's NB-SMT statistics into ``metrics``
        (an :class:`repro.serve.metrics.EndpointMetrics`) when given.
        """
        replica_set = self.replica_set(endpoint)

        def run_batch(payloads: list[np.ndarray]) -> list[np.ndarray]:
            sizes = [int(payload.shape[0]) for payload in payloads]
            if len(payloads) == 1:
                images = payloads[0]
            else:
                images = np.concatenate(payloads, axis=0)
            logits, layer_stats = replica_set.infer(images)
            if metrics is not None and layer_stats:
                metrics.merge_layer_stats(layer_stats)
            results = []
            offset = 0
            for size in sizes:
                results.append(logits[offset : offset + size])
                offset += size
            return results

        return run_batch

    def close(self) -> None:
        """Close every replica (releasing the harness leases)."""
        with self._lock:
            sets, self._sets = list(self._sets.values()), {}
        for replica_set in sets:
            replica_set.close()
