"""Golden-trace serving conformance: pin the engines at every ladder rung.

The serving subsystem promises that *what* is computed never depends on
*how* it is served: at any fixed operating point, batched serving is
bit-identical to ``SysmtHarness.evaluate_nbsmt`` under that point's thread
assignment.  This module makes the promise checkable against history, not
just against the current code: it builds a deterministic reference stack
(a tiny CNN trained from fixed seeds on a fixed synthetic dataset, the
same recipe the test suite's ``tiny_harness`` uses) and records, for every
rung of its throttle ladder, the logits digest, the accuracy and the exact
per-layer :class:`~repro.core.smt.SMTStatistics` counters.

The committed fixture (``tests/serve/golden/tinynet_ladder.json``) turns
quantization/engine regressions into loud tier-1 failures instead of
silently shifted accuracy: any change to calibration, packing, the
factorized fast paths or the statistics contraction that alters a single
logit bit or counter shows up as a digest/counter diff at the offending
rung.

Regenerate after an *intentional* numerical change::

    PYTHONPATH=src python -m repro.serve.conformance \
        --write tests/serve/golden/tinynet_ladder.json

The digests hash raw float32 logits bytes, so they are pinned to this
container's numpy/BLAS; the statistics counters are integers (plus two
repr-round-tripped float sums) and are stable anywhere.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.engine import NBSMTEngine
from repro.eval.throttle import OperatingLadder, operating_ladder

SCHEMA_VERSION = 1

#: Engine configuration of the conformance stack (the paper's 4T operating
#: regime with the S+A policy; the ladder slows the top-MSE layers to 2T).
BASE_THREADS = 4
SLOW_THREADS = 2
LADDER_RUNGS = 3
POLICY = "S+A"


def default_fixture_path() -> Path:
    """``tests/serve/golden/tinynet_ladder.json`` at the repo root."""
    return (
        Path(__file__).resolve().parents[3]
        / "tests"
        / "serve"
        / "golden"
        / "tinynet_ladder.json"
    )


# ---------------------------------------------------------------------------
# Deterministic reference stack (the test suite's tiny harness, importable)
# ---------------------------------------------------------------------------


def reference_dataset():
    """The tiny synthetic dataset the conformance model trains on."""
    from repro.nn import SyntheticImageDataset
    from repro.nn.data import DatasetConfig

    return SyntheticImageDataset(
        DatasetConfig(
            train_size=256, val_size=96, image_size=16, num_classes=6, seed=7
        )
    )


def reference_model(dataset):
    """The tiny CNN, trained for three epochs from fixed seeds."""
    from repro.nn import (
        GlobalAvgPool2d,
        Linear,
        MaxPool2d,
        Sequential,
        TrainConfig,
        Trainer,
    )
    from repro.nn.layers.combine import conv_bn_relu

    model = Sequential(
        conv_bn_relu(3, 8, 3, seed=11),
        MaxPool2d(2),
        conv_bn_relu(8, 16, 3, seed=12),
        conv_bn_relu(16, 16, 3, seed=13),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Linear(16, dataset.num_classes, seed=14),
    )
    trainer = Trainer(model, TrainConfig(epochs=3, batch_size=64, lr=0.1, seed=3))
    trainer.fit(
        dataset.train_images,
        dataset.train_labels,
        dataset.val_images,
        dataset.val_labels,
    )
    return model


def reference_trained():
    """The reference model wrapped as a zoo ``TrainedModel`` entry."""
    from repro.models.zoo import TrainedModel
    from repro.nn.train import evaluate_accuracy

    dataset = reference_dataset()
    model = reference_model(dataset)
    accuracy = evaluate_accuracy(model, dataset.val_images, dataset.val_labels)
    return TrainedModel(
        name="tinynet",
        model=model,
        dataset=dataset,
        fp32_accuracy=accuracy,
        train_config={},
    )


def reference_harness():
    """The calibrated harness the traces (and the test suite) run on."""
    from repro.eval.harness import SysmtHarness

    return SysmtHarness(
        reference_trained(),
        max_eval_images=96,
        calibration_images=96,
        batch_size=48,
    )


def reference_ladder(harness) -> OperatingLadder:
    """The conformance throttle ladder (measured accuracy per rung)."""
    return operating_ladder(
        harness,
        base_threads=BASE_THREADS,
        slow_threads=SLOW_THREADS,
        rungs=LADDER_RUNGS,
        policy=POLICY,
        measure_accuracy=True,
    )


# ---------------------------------------------------------------------------
# Trace computation
# ---------------------------------------------------------------------------


def trace_run(harness, threads, policy: str = POLICY):
    """Logits, per-layer stats and accuracy of one fixed-point run.

    Exactly the configuration sequence ``evaluate_nbsmt`` applies, but
    keeping the logits: the evaluation set is forwarded in the harness's
    batch partition, so serving the same images through a ``max_batch ==
    batch_size`` batcher coalesces into the identical engine calls.
    """
    engine = NBSMTEngine(policy, collect_stats=True)
    qmodel = harness.qmodel
    qmodel.ensure_installed()
    qmodel.set_threads(dict(threads) if not isinstance(threads, int) else threads)
    harness.clear_permutations()
    qmodel.set_engine(engine)
    qmodel.clear_stats()
    blocks = []
    images = harness.eval_images
    for start in range(0, images.shape[0], harness.batch_size):
        blocks.append(qmodel.forward(images[start : start + harness.batch_size]))
    logits = np.vstack(blocks)
    accuracy = float((logits.argmax(axis=1) == harness.eval_labels).mean())
    return logits, dict(engine.layer_stats), accuracy


def logits_digest(logits: np.ndarray) -> str:
    """SHA-256 over the raw float32 logits bytes (C-contiguous)."""
    data = np.ascontiguousarray(logits.astype(np.float32, copy=False))
    return hashlib.sha256(data.tobytes()).hexdigest()


def _dataset_digest(harness) -> str:
    data = np.ascontiguousarray(harness.eval_images.astype(np.float32))
    return hashlib.sha256(data.tobytes()).hexdigest()


def compute_traces(harness=None) -> dict:
    """The full golden-trace fixture document for the reference stack."""
    if harness is None:
        harness = reference_harness()
    ladder = reference_ladder(harness)
    rungs = []
    for point in ladder.points:
        logits, layer_stats, accuracy = trace_run(harness, point.threads)
        rungs.append(
            {
                "level": point.level,
                "slowed_layers": list(point.slowed_layers),
                "threads": dict(point.threads),
                "expected_speedup": point.expected_speedup,
                "expected_mse": point.expected_mse,
                "accuracy": accuracy,
                "logits_shape": list(logits.shape),
                "logits_sha256": logits_digest(logits),
                "layer_stats": {
                    name: stats.to_payload()
                    for name, stats in layer_stats.items()
                },
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "model": "tinynet",
        "policy": POLICY,
        "base_threads": BASE_THREADS,
        "slow_threads": SLOW_THREADS,
        "eval_images": int(harness.eval_images.shape[0]),
        "batch_size": int(harness.batch_size),
        "numpy_version": np.__version__,
        "eval_images_sha256": _dataset_digest(harness),
        "rungs": rungs,
    }


def verify_traces(fixture: dict, harness=None) -> list[str]:
    """Diff live engine output against a fixture; returns mismatches.

    An empty list means every rung reproduced its committed logits digest,
    accuracy and per-layer statistics counters bit-for-bit.
    """
    if harness is None:
        harness = reference_harness()
    mismatches: list[str] = []
    if fixture.get("schema_version") != SCHEMA_VERSION:
        mismatches.append(
            f"schema version {fixture.get('schema_version')} != {SCHEMA_VERSION}"
        )
        return mismatches
    if _dataset_digest(harness) != fixture["eval_images_sha256"]:
        mismatches.append(
            "evaluation images differ from the fixture's dataset "
            "(the synthetic data pipeline changed)"
        )
        return mismatches
    for rung in fixture["rungs"]:
        label = f"rung {rung['level']} (slowed={rung['slowed_layers']})"
        logits, layer_stats, accuracy = trace_run(harness, rung["threads"])
        digest = logits_digest(logits)
        if digest != rung["logits_sha256"]:
            mismatches.append(
                f"{label}: logits digest {digest[:12]}... != "
                f"{rung['logits_sha256'][:12]}..."
            )
        if accuracy != rung["accuracy"]:
            mismatches.append(
                f"{label}: accuracy {accuracy} != {rung['accuracy']}"
            )
        live = {name: stats.to_payload() for name, stats in layer_stats.items()}
        expected = rung["layer_stats"]
        if set(live) != set(expected):
            mismatches.append(
                f"{label}: layer set {sorted(live)} != {sorted(expected)}"
            )
            continue
        for name in sorted(live):
            for counter, value in expected[name].items():
                if live[name].get(counter) != value:
                    mismatches.append(
                        f"{label}: {name}.{counter} "
                        f"{live[name].get(counter)} != {value}"
                    )
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="regenerate the fixture at PATH (use after intentional "
        "numerical changes)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="verify the live engines against the fixture at PATH "
        "(default when no --write is given)",
    )
    args = parser.parse_args(argv)
    if args.write:
        path = Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        fixture = compute_traces()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(fixture, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} ({len(fixture['rungs'])} rungs)")
        return 0
    path = Path(args.check) if args.check else default_fixture_path()
    with open(path, encoding="utf-8") as handle:
        fixture = json.load(handle)
    mismatches = verify_traces(fixture)
    if mismatches:
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}")
        return 1
    print(f"{path}: all {len(fixture['rungs'])} rungs bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
