"""Online NB-SMT inference serving.

The batch-evaluation harness answers "what accuracy does this engine
configuration reach over a fixed evaluation set"; this package answers
"serve single-image (or micro-batch) prediction requests against the same
engines, at high throughput, without giving up the harness semantics".

The subsystem is assembled from five pieces:

* :mod:`repro.serve.registry` -- which models are served and with which
  NB-SMT engine configuration (threads, policy, reordering, throttled
  layers), plus per-endpoint admission control (backpressure).
* :mod:`repro.serve.pool` -- warm engine replicas: one calibrated
  :class:`~repro.quant.qmodel.QuantizedModel` plus one configured
  :class:`~repro.core.engine.NBSMTEngine` per model, leased from the
  refcounted experiment harness cache, optionally mirrored into persistent
  forked worker processes.
* :mod:`repro.serve.batcher` -- the dynamic batching scheduler: queued
  requests are coalesced into engine-sized batches under a latency budget.
* :mod:`repro.serve.metrics` -- per-endpoint latency quantiles, throughput,
  batch fill and aggregated :class:`~repro.core.smt.SMTStatistics`.
* :mod:`repro.serve.qos` -- the load-adaptive QoS layer: endpoints declare
  an ordered :class:`~repro.eval.throttle.OperatingLadder` of throttled
  operating points and a hysteretic controller walks it under load
  (degrade to faster rungs under sustained admission pressure, recover to
  the top rung when load subsides).
* :mod:`repro.serve.sharding` -- ``SO_REUSEPORT`` multi-process front-end
  sharding with whole-service metrics merging.
* :mod:`repro.serve.conformance` -- the golden-trace conformance suite:
  deterministic reference stack + committed per-rung logits digests and
  SMT statistics, diffed by a tier-1 test.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` -- a stdlib
  ``asyncio`` HTTP front-end and a closed/open-loop load generator
  (``repro.cli serve`` / ``repro.cli client``).

Batched execution is bit-identical to running the same inputs through the
harness directly (same engines, same statistics); the test suite pins this
-- per throttle-ladder rung -- via the golden-trace conformance suite.
"""

from repro.serve.batcher import BatcherClosed, BatchReport, DynamicBatcher, QueueFull
from repro.serve.metrics import EndpointMetrics, LatencyHistogram, MetricsRegistry
from repro.serve.pool import EnginePool, ForkedReplica, InlineReplica
from repro.serve.qos import (
    EndpointGovernor,
    LoadSignal,
    QoSConfig,
    QoSController,
    Transition,
)
from repro.serve.registry import AdmissionController, ModelSpec, ServeRegistry
from repro.serve.server import NBSMTServer

__all__ = [
    "AdmissionController",
    "BatchReport",
    "BatcherClosed",
    "DynamicBatcher",
    "EndpointGovernor",
    "EndpointMetrics",
    "EnginePool",
    "ForkedReplica",
    "InlineReplica",
    "LatencyHistogram",
    "LoadSignal",
    "MetricsRegistry",
    "ModelSpec",
    "NBSMTServer",
    "QoSConfig",
    "QoSController",
    "QueueFull",
    "ServeRegistry",
    "Transition",
]
