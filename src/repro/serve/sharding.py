"""Multi-process front-end sharding over ``SO_REUSEPORT``.

One asyncio process parses HTTP and batches requests well past what the
NB-SMT engines can serve, but on multicore machines a single front-end
process still serializes JSON encode/decode and numpy conversion on one
GIL.  ``repro.cli serve --shards N`` forks ``N`` full server processes
that all listen on the *same* address via ``SO_REUSEPORT``; the kernel
load-balances incoming connections across them.  Each shard owns its own
engine pool, batchers, admission budget and QoS controller (so
``max_pending`` is a per-shard budget and operating points may transiently
diverge between shards under skewed load).

The sockets are created in the parent *before* forking -- every child
inherits its already-bound socket, so there is no bind race and ``--port
0`` works (the parent binds the first socket, learns the port, and binds
the remaining shards to it).

Metrics stay whole-service: every shard periodically publishes its exact
mergeable metrics payload (bucket counts, not quantile estimates) into a
shared spool directory, and any shard answering ``GET /v1/metrics`` merges
the freshest payload of every peer with its own live state
(:func:`repro.serve.metrics.merge_registry_payloads`), so the merged
histograms and SMT statistics are exactly what one process serving all the
traffic would have recorded.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import tempfile
import time

from repro.cluster.documents import (
    METRICS_STALE_AFTER_S,
    DocumentStore,
    local_host,
    publisher_process_alive,
)
from repro.eval import parallel

#: Compatibility alias: the staleness horizon moved to the cluster
#: substrate (:mod:`repro.cluster.documents`).  A peer payload older than
#: this is reported but flagged stale (a shard that crashed stops
#: publishing; its last counters remain valid history).
STALE_AFTER_S = METRICS_STALE_AFTER_S


def reuseport_supported() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _bind_reuseport(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(128)
    sock.setblocking(False)
    return sock


def create_shard_sockets(
    host: str, port: int, count: int
) -> list[socket.socket]:
    """``count`` listening sockets sharing one address (``SO_REUSEPORT``).

    With ``port == 0`` the first bind picks the port and the rest join it.
    """
    if not reuseport_supported():  # pragma: no cover - platform
        raise RuntimeError("SO_REUSEPORT is not available on this platform")
    sockets = [_bind_reuseport(host, port)]
    actual_port = sockets[0].getsockname()[1]
    try:
        for _ in range(count - 1):
            sockets.append(_bind_reuseport(host, actual_port))
    except BaseException:
        for sock in sockets:
            sock.close()
        raise
    return sockets


class ShardMetricsExchange:
    """Crash-tolerant metrics spool shared by the shards of one service.

    Each shard atomically publishes ``shard-<i>.json`` (write to a
    temporary name, then ``rename``) and merges whatever peers have
    published.  Readers never block on writers and a torn file is
    impossible; a peer that stopped publishing is surfaced with its age.
    """

    def __init__(
        self, directory: str | None, shard_index: int, shard_count: int,
        budget=None, store: DocumentStore | None = None,
    ):
        if store is None:
            if directory is None:
                raise ValueError(
                    "ShardMetricsExchange needs a directory or store"
                )
            os.makedirs(directory, exist_ok=True)
            #: Optional :class:`repro.utils.diskbudget.DiskBudget` over
            #: the exchange directory.  A publish that would bust the
            #: quota (or hits real ENOSPC) is skipped and counted: peers
            #: keep merging this shard's *previous* document until it
            #: goes stale -- exactly the degradation already defined for
            #: a crashed publisher.  Only the net growth over the
            #: previous document charges against the quota.
            store = DocumentStore.for_directory(directory, budget=budget)
        self.store = store
        self.directory = str(directory) if directory is not None else None
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.budget = store.budget

    @property
    def corrupt_documents(self) -> int:
        """Peer documents that failed to parse or were structurally
        invalid (torn or corrupted outside the atomic-rename path, e.g.
        by a crashed writer with a different spool implementation or a
        disk fault)."""
        return self.store.corrupt_documents

    @property
    def dropped_publishes(self) -> int:
        return self.store.dropped_puts

    def _name(self, index: int) -> str:
        return f"shard-{index}.json"

    def publish(self, payload: dict) -> None:
        """Atomically replace this shard's payload document (budgeted)."""
        self.store.put(
            self._name(self.shard_index),
            {
                "shard": self.shard_index,
                "pid": os.getpid(),
                "host": local_host(),
                "published_at": time.time(),
                "payload": payload,
            },
        )

    def gather_peers(self) -> tuple[list[dict], list[dict]]:
        """Peer payloads plus per-source metadata (index, age, staleness).

        A *stale* payload (older than :data:`STALE_AFTER_S`) whose
        publishing process is gone is **reaped**: the document is
        deleted and the payload excluded from the merge.  Without this, a
        crashed shard's last counters would be folded into every
        whole-service ``/v1/metrics`` answer forever -- and once the
        service restarts into the same exchange directory (or respawns the
        shard index), those dead counters double-count against the live
        shard's.  A stale document whose local pid is still alive is kept
        (the shard may just be wedged mid-GC) but flagged; a *remote*
        publisher's pid is unprobeable, so staleness alone reaps it --
        which is exactly how a federated peer machine drops out.
        """
        payloads: list[dict] = []
        sources: list[dict] = []
        now = time.time()
        for index in range(self.shard_count):
            if index == self.shard_index:
                continue
            document = self.store.get(self._name(index))
            if document is None:
                continue
            if not isinstance(document.get("payload"), dict):
                # Parsed but not a shard document: never merge garbage.
                self.store.note_corrupt()
                continue
            try:
                age = now - float(document.get("published_at", 0.0))
                int(document.get("pid", 0) or 0)
            except (TypeError, ValueError):
                self.store.note_corrupt()
                continue
            stale = age > STALE_AFTER_S
            # Local documents published before pids were recorded (and
            # remote ones, whose pids mean nothing here) reap on
            # staleness alone.
            if stale and publisher_process_alive(document) is not True:
                self.store.delete(self._name(index))
                sources.append(
                    {"shard": index, "age_s": age, "stale": True,
                     "reaped": True}
                )
                continue
            payloads.append(document["payload"])
            sources.append(
                {
                    "shard": index,
                    "age_s": age,
                    "stale": stale,
                    "reaped": False,
                }
            )
        return payloads, sources


def _shard_main(
    index: int,
    sockets: list[socket.socket],
    registry,
    shard_count: int,
    exchange_dir: str,
    server_kwargs: dict,
    coordinate: bool,
    exchange_budget_bytes: int = 0,
) -> None:
    """One shard process: a full server on an inherited bound socket.

    Every shard is forked *after* all the listeners are bound, so each
    child inherits the whole socket list.  It must close its peers'
    copies immediately: a listening socket stays in the kernel's
    ``SO_REUSEPORT`` group as long as *any* process holds its fd, so a
    leaked peer fd would keep a SIGKILLed shard's listener in the group
    -- connections hashed to it would sit in an accept queue nobody
    drains instead of failing over to the survivors.  The same applies
    to this shard's own listener leaking into processes *it* forks
    (engine pool workers): the at-fork hook closes it in every child.
    """
    import asyncio

    from repro.serve.server import NBSMTServer
    from repro.telemetry import bus as telemetry_bus
    from repro.telemetry.coordinator import QoSCoordinator, ShardStateChannel

    sock = sockets[index]
    for peer_index, peer_sock in enumerate(sockets):
        if peer_index != index:
            peer_sock.close()
    os.register_at_fork(after_in_child=sock.close)

    parallel.IN_POOL_WORKER = False
    telemetry_bus.get_bus().reset_after_fork(role="serve", shard=index)
    exchange_budget = None
    if exchange_budget_bytes > 0:
        from repro.utils.diskbudget import DiskBudget

        exchange_budget = DiskBudget(
            exchange_dir, exchange_budget_bytes,
            name=f"shard-exchange-{index}",
        )
    exchange = ShardMetricsExchange(
        exchange_dir, index, shard_count, budget=exchange_budget
    )
    coordinator = None
    if coordinate:
        # Throttle channel I/O: unchanged desires republish at 1s (well
        # inside the 5s staleness horizon) and the endpoints of one QoS
        # tick share a single gathered snapshot.
        coordinator = QoSCoordinator(
            ShardStateChannel(exchange_dir, index, shard_count),
            min_publish_s=1.0,
            gather_cache_s=0.1,
        )
    server = NBSMTServer(
        registry,
        sock=sock,
        shard_exchange=exchange,
        shard_index=index,
        coordinator=coordinator,
        telemetry_dir=os.path.join(exchange_dir, "telemetry"),
        **server_kwargs,
    )
    asyncio.run(server.serve_forever())


def run_sharded(
    registry,
    shards: int,
    host: str = "127.0.0.1",
    port: int = 8421,
    exchange_dir: str | None = None,
    coordinate: bool = True,
    exchange_budget_bytes: int = 0,
    **server_kwargs,
) -> None:
    """Fork ``shards`` server processes sharing one listening address.

    Blocks until every shard exits; SIGINT/SIGTERM are forwarded so each
    shard drains gracefully.  The metrics spool directory is created (and
    cleaned up) here unless an explicit ``exchange_dir`` is supplied; the
    shards' telemetry event spool lives under ``<exchange_dir>/telemetry``
    so any shard's ``/v1/events`` (and ``/dashboard``) streams the whole
    service.  ``coordinate=True`` (the default) runs the cross-shard QoS
    coordinator: adaptive endpoints converge to one service-wide rung
    instead of every shard walking its ladder blind to the others.
    """
    if shards < 2:
        raise ValueError("sharding needs at least 2 shards")
    if not parallel.fork_available():  # pragma: no cover - platform
        raise RuntimeError("front-end sharding requires the fork start method")
    import multiprocessing

    context = multiprocessing.get_context("fork")
    sockets = create_shard_sockets(host, port, shards)
    actual_port = sockets[0].getsockname()[1]
    owns_dir = exchange_dir is None
    if owns_dir:
        exchange_dir = tempfile.mkdtemp(prefix="repro-serve-shards-")
    print(
        f"repro.serve: sharding {shards} front-end processes on "
        f"http://{host}:{actual_port} (SO_REUSEPORT)",
        flush=True,
    )
    processes = []
    try:
        for index in range(len(sockets)):
            process = context.Process(
                target=_shard_main,
                args=(index, sockets, registry, shards, exchange_dir,
                      dict(server_kwargs), coordinate, exchange_budget_bytes),
                name=f"serve-shard-{index}",
            )
            process.start()
            processes.append(process)
        for sock in sockets:
            sock.close()  # the children own the inherited copies now

        forwarded = {"signum": None}

        def forward(signum, frame):
            forwarded["signum"] = signum
            for process in processes:
                if process.is_alive():
                    try:
                        os.kill(process.pid, signum)
                    except OSError:  # pragma: no cover - already gone
                        pass

        previous = {
            signum: signal.signal(signum, forward)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            for process in processes:
                while process.is_alive():
                    process.join(timeout=0.5)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
        if owns_dir:
            shutil.rmtree(exchange_dir, ignore_errors=True)
