"""Area model calibrated to the paper's Table II (45nm, 16x16 array, 500MHz)."""

from __future__ import annotations

from dataclasses import dataclass

#: Published Table II area numbers for the 16x16 arrays.
#: ``total`` is in mm^2; ``pe`` and ``mac`` are per-PE/per-MAC in um^2.
TABLE_II_AREA: dict[str, dict[str, float]] = {
    "sa": {"total_mm2": 0.220, "pe_um2": 853.0, "mac_um2": 591.0},
    "sysmt_2t": {"total_mm2": 0.317, "pe_um2": 1233.0, "mac_um2": 786.0},
    "sysmt_4t": {"total_mm2": 0.545, "pe_um2": 2122.0, "mac_um2": 1102.0},
}

#: Reference array size the Table II numbers were synthesized for.
REFERENCE_ARRAY = 16 * 16


def _config_key(threads: int) -> str:
    if threads <= 1:
        return "sa"
    if threads == 2:
        return "sysmt_2t"
    if threads == 4:
        return "sysmt_4t"
    raise ValueError("area model supports 1, 2 or 4 threads")


@dataclass(frozen=True)
class AreaModel:
    """Area of an R x C array with the given thread count.

    The per-PE area is taken from Table II; the array-level overhead (I/O
    skew registers, control) is the published total minus ``R*C`` PEs and is
    scaled with the array perimeter.
    """

    rows: int = 16
    cols: int = 16
    threads: int = 1

    @property
    def pe_area_um2(self) -> float:
        return TABLE_II_AREA[_config_key(self.threads)]["pe_um2"]

    @property
    def mac_area_um2(self) -> float:
        return TABLE_II_AREA[_config_key(self.threads)]["mac_um2"]

    @property
    def total_area_mm2(self) -> float:
        reference = TABLE_II_AREA[_config_key(self.threads)]
        pe_total_reference = REFERENCE_ARRAY * reference["pe_um2"] * 1e-6
        overhead_reference = max(reference["total_mm2"] - pe_total_reference, 0.0)
        perimeter_scale = (self.rows + self.cols) / 32.0
        pe_total = self.rows * self.cols * reference["pe_um2"] * 1e-6
        return pe_total + overhead_reference * perimeter_scale

    def area_ratio_to_baseline(self) -> float:
        """Area of this configuration relative to the conventional SA."""
        baseline = AreaModel(self.rows, self.cols, threads=1)
        return self.total_area_mm2 / baseline.total_area_mm2
