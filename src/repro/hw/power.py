"""Power model calibrated to the paper's published operating points.

The paper estimates power with synthetic testbenches at several array
utilizations (Section V-A): the conventional SA consumes 277mW at 40%
utilization and 320mW at 80%; the 2-threaded SySMT consumes 429mW at 80% and
the 4-threaded SySMT 723mW at 80%.  We model power as an affine function of
utilization (static + dynamic component); the SySMT static/dynamic split is
assumed proportional to the baseline's, scaled to hit the published 80%
point.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Published (utilization, power in mW) calibration points for 16x16 arrays.
TABLE_II_POWER_POINTS: dict[str, list[tuple[float, float]]] = {
    "sa": [(0.4, 277.0), (0.8, 320.0)],
    "sysmt_2t": [(0.8, 429.0)],
    "sysmt_4t": [(0.8, 723.0)],
}

#: Reference frequency and array size of the calibration points.
REFERENCE_FREQUENCY_MHZ = 500.0
REFERENCE_ARRAY = 16 * 16

#: Table II lists 256 GMACS for 256 PEs at 500MHz, i.e. two MAC-equivalents
#: per PE and cycle; the same convention is kept here so the reproduced
#: Table II matches the published one.  Energy *savings* are unaffected by
#: this constant (it cancels between the baseline and SySMT).
MACS_PER_PE_CYCLE = 2.0


def _config_key(threads: int) -> str:
    if threads <= 1:
        return "sa"
    if threads == 2:
        return "sysmt_2t"
    if threads == 4:
        return "sysmt_4t"
    raise ValueError("power model supports 1, 2 or 4 threads")


def _baseline_affine() -> tuple[float, float]:
    """Static (intercept) and dynamic slope of the conventional SA in mW."""
    (u1, p1), (u2, p2) = TABLE_II_POWER_POINTS["sa"]
    slope = (p2 - p1) / (u2 - u1)
    intercept = p1 - slope * u1
    return intercept, slope


@dataclass(frozen=True)
class PowerModel:
    """Power (mW) as a function of utilization for one array configuration."""

    rows: int = 16
    cols: int = 16
    threads: int = 1
    frequency_mhz: float = REFERENCE_FREQUENCY_MHZ

    def _scale(self) -> float:
        """Scale factor from the baseline affine curve to this configuration."""
        key = _config_key(self.threads)
        intercept, slope = _baseline_affine()
        if key == "sa":
            ratio = 1.0
        else:
            utilization, published = TABLE_II_POWER_POINTS[key][0]
            ratio = published / (intercept + slope * utilization)
        size_ratio = (self.rows * self.cols) / REFERENCE_ARRAY
        freq_ratio = self.frequency_mhz / REFERENCE_FREQUENCY_MHZ
        return ratio * size_ratio * freq_ratio

    def power_mw(self, utilization: float) -> float:
        """Power at the given PE-array utilization (fraction in [0, 1])."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must lie in [0, 1]")
        intercept, slope = _baseline_affine()
        return (intercept + slope * utilization) * self._scale()

    @property
    def throughput_gmacs(self) -> float:
        """Peak throughput in GMAC/s (Table II): PEs x threads x frequency."""
        macs_per_cycle = self.rows * self.cols * max(self.threads, 1) * MACS_PER_PE_CYCLE
        return macs_per_cycle * self.frequency_mhz * 1e6 / 1e9
