"""Energy model: Eq. (6) of the paper.

The energy of layer ``l`` is ``E_l = MAC_l / Throughput * P_l`` where
``MAC_l`` is the layer's MAC count, ``Throughput`` the array's peak MAC rate
and ``P_l`` the average power at the layer's measured utilization; the model
energy is the sum over layers.  SySMT spends 1/T of the baseline's time per
layer (constant speedup) at a higher but sub-proportional power, which is
where the paper's ~33-39% energy savings come from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.power import PowerModel


@dataclass(frozen=True)
class LayerEnergyInput:
    """Per-layer quantities feeding Eq. (6)."""

    name: str
    macs: int
    utilization: float
    threads: int = 1


@dataclass
class EnergyModel:
    """Energy of executing a model on a given array configuration."""

    rows: int = 16
    cols: int = 16

    def layer_energy_mj(self, layer: LayerEnergyInput) -> float:
        """Energy (millijoules) of one layer, Eq. (6)."""
        power_model = PowerModel(self.rows, self.cols, threads=layer.threads)
        seconds = layer.macs / (power_model.throughput_gmacs * 1e9)
        power_w = power_model.power_mw(layer.utilization) * 1e-3
        return power_w * seconds * 1e3

    def model_energy_mj(self, layers: list[LayerEnergyInput]) -> float:
        """Total energy of a model (sum of Eq. (6) over layers)."""
        return float(sum(self.layer_energy_mj(layer) for layer in layers))

    def energy_saving(
        self,
        baseline_layers: list[LayerEnergyInput],
        smt_layers: list[LayerEnergyInput],
    ) -> float:
        """Fractional energy saving of the SySMT execution over the baseline."""
        baseline = self.model_energy_mj(baseline_layers)
        smt = self.model_energy_mj(smt_layers)
        if baseline == 0:
            return 0.0
        return 1.0 - smt / baseline
