"""Hardware cost models: area, power and energy of the 16x16 arrays.

The paper implements the conventional OS-SA and the 2-/4-threaded SySMT in
SystemVerilog and synthesizes them with a 45nm library at 500MHz; Table II
reports the resulting area, power and throughput, and Section V-A derives
energy from per-layer utilization via Eq. (6).  Synthesis tools are not
available here, so the models in this subpackage are calibrated to the
published Table II numbers and reproduce the same derivation pipeline.
"""

from repro.hw.area import AreaModel, TABLE_II_AREA
from repro.hw.power import PowerModel, TABLE_II_POWER_POINTS
from repro.hw.energy import EnergyModel, LayerEnergyInput

__all__ = [
    "AreaModel",
    "TABLE_II_AREA",
    "PowerModel",
    "TABLE_II_POWER_POINTS",
    "EnergyModel",
    "LayerEnergyInput",
]
