"""A small, from-scratch NumPy deep-learning substrate.

This subpackage stands in for the PyTorch stack the paper uses: it provides
tensors-as-arrays, layers with forward *and* backward passes, graph-ish
composite blocks (residual, inception, dense), losses, an SGD optimizer, a
training loop and a deterministic synthetic image-classification dataset.

Everything downstream (quantization, NB-SMT error injection, the systolic
array simulators) operates on models built from these pieces.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    DenseBlock,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    InceptionBlock,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.data import SyntheticImageDataset, DataLoader
from repro.nn.train import Trainer, TrainConfig, evaluate_accuracy

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "Flatten",
    "Identity",
    "Concat",
    "ResidualBlock",
    "InceptionBlock",
    "DenseBlock",
    "CrossEntropyLoss",
    "SGD",
    "SyntheticImageDataset",
    "DataLoader",
    "Trainer",
    "TrainConfig",
    "evaluate_accuracy",
]
