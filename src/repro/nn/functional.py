"""Low-level tensor operations shared by the layers.

The central primitive is the im2col / col2im lowering that turns a 2D
convolution into a matrix multiplication.  The same lowering is what the
paper's systolic-array mapping uses (conv as matmul, Section IV-A), so the
quantized executor and the SySMT simulators consume exactly these matrices.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Lower an NCHW tensor into the (rows, patch) matrix of a convolution.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Square-kernel convolution geometry.

    Returns
    -------
    cols:
        Matrix of shape ``(N * OH * OW, C * kernel * kernel)``.  Row ``r``
        holds the flattened receptive field of output position ``r``.
    (OH, OW):
        The spatial output size.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    x_padded = pad_nchw(x, padding)

    strides = x_padded.strides
    windows = np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> (N*OH*OW, C*KH*KW).  Reshaping the
    # transposed window view usually materializes a fresh C-contiguous
    # matrix, but singleton axes can merge lazily (e.g. batch=1 with a 1x1
    # kernel yields a strided view), so the contiguous layout the
    # BLAS-backed engines want is enforced explicitly; ascontiguousarray is
    # a no-op in the common already-copied case.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradients (overlaps are accumulated)."""
    batch, channels, height, width = x_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=cols.dtype,
    )
    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    for kh in range(kernel):
        for kw in range(kernel):
            padded[
                :,
                :,
                kh : kh + stride * out_h : stride,
                kw : kw + stride * out_w : stride,
            ] += cols6[:, :, :, :, kh, kw].transpose(0, 3, 1, 2)
    if padding == 0:
        return padded
    return padded[:, :, padding : padding + height, padding : padding + width]


def cols_to_feature_map(
    out_cols: np.ndarray, batch: int, out_h: int, out_w: int
) -> np.ndarray:
    """Reshape a ``(N*OH*OW, C_out)`` matmul result back into NCHW."""
    out_channels = out_cols.shape[1]
    return out_cols.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)


def feature_map_to_cols(grad_out: np.ndarray) -> np.ndarray:
    """Reshape an NCHW gradient into the ``(N*OH*OW, C_out)`` layout."""
    batch, out_channels, out_h, out_w = grad_out.shape
    return grad_out.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, out_channels)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
