"""Training loop and accuracy evaluation for the model zoo."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import DataLoader
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD


@dataclass
class TrainConfig:
    """Hyperparameters for zoo training."""

    epochs: int = 6
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay_epochs: tuple[int, ...] = (4,)
    lr_decay_factor: float = 0.1
    label_smoothing: float = 0.0
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Per-epoch history returned by :meth:`Trainer.fit`."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


def evaluate_accuracy(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 128,
) -> float:
    """Top-1 accuracy of ``model`` on the given images (model left in eval mode)."""
    model.eval()
    correct = 0
    for start in range(0, images.shape[0], batch_size):
        batch = images[start : start + batch_size]
        batch_labels = labels[start : start + batch_size]
        logits = model(batch)
        correct += int((logits.argmax(axis=1) == batch_labels).sum())
    return correct / images.shape[0]


class Trainer:
    """SGD trainer for the NumPy substrate."""

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.loss_fn = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.optimizer = SGD(
            list(model.parameters()),
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        val_images: np.ndarray | None = None,
        val_labels: np.ndarray | None = None,
    ) -> TrainResult:
        """Train for ``config.epochs`` epochs and return the history."""
        config = self.config
        result = TrainResult()
        loader = DataLoader(
            train_images,
            train_labels,
            batch_size=config.batch_size,
            shuffle=True,
            seed=config.seed,
        )
        lr = config.lr
        for epoch in range(config.epochs):
            if epoch in config.lr_decay_epochs:
                lr *= config.lr_decay_factor
                self.optimizer.set_lr(lr)
            self.model.train()
            epoch_loss = 0.0
            epoch_correct = 0
            epoch_count = 0
            for batch_images, batch_labels in loader:
                self.optimizer.zero_grad()
                logits = self.model(batch_images)
                loss = self.loss_fn(logits, batch_labels)
                grad = self.loss_fn.backward()
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss * batch_images.shape[0]
                epoch_correct += int((logits.argmax(axis=1) == batch_labels).sum())
                epoch_count += batch_images.shape[0]
            result.losses.append(epoch_loss / epoch_count)
            result.train_accuracies.append(epoch_correct / epoch_count)
            if val_images is not None and val_labels is not None:
                accuracy = evaluate_accuracy(self.model, val_images, val_labels)
                result.val_accuracies.append(accuracy)
                self.model.train()
            if config.verbose:  # pragma: no cover - logging only
                val_text = (
                    f" val={result.val_accuracies[-1]:.3f}"
                    if result.val_accuracies
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{config.epochs} "
                    f"loss={result.losses[-1]:.3f} "
                    f"train={result.train_accuracies[-1]:.3f}{val_text}"
                )
        self.model.eval()
        return result
