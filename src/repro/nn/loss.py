"""Loss functions for training the model zoo."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._cache: dict[str, np.ndarray] = {}

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = F.softmax(logits)
        num_classes = logits.shape[1]
        targets = F.one_hot(labels, num_classes)
        if self.label_smoothing:
            targets = (
                targets * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        log_probs = np.log(np.clip(probs, 1e-12, None))
        loss = -(targets * log_probs).sum(axis=1).mean()
        self._cache = {"probs": probs, "targets": targets}
        return float(loss)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

    def backward(self) -> np.ndarray:
        probs = self._cache["probs"]
        targets = self._cache["targets"]
        batch = probs.shape[0]
        self._cache = {}
        return ((probs - targets) / batch).astype(np.float32)
