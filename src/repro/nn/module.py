"""Module/parameter system with explicit forward and backward passes.

The design intentionally mirrors a minimal subset of ``torch.nn``: modules
auto-register child modules and parameters assigned as attributes, expose
``named_modules`` / ``parameters`` for traversal, and carry a ``training``
flag.  Backward passes are hand-written per layer; each module caches what it
needs during ``forward`` and releases it after ``backward``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


class Parameter:
    """A trainable array together with its gradient accumulator."""

    def __init__(self, value: np.ndarray, requires_grad: bool = True):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class of all layers and composite blocks."""

    def __init__(self):
        self.training = True
        self._modules: dict[str, "Module"] = {}
        self._params: dict[str, Parameter] = {}

    # -- attribute-based registration --------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        elif isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[name] = value
        object.__setattr__(self, name, value)

    # -- computation --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- traversal -----------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs, depth-first, self first."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(param.size for param in self.parameters())

    # -- mode / gradient management -------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- (de)serialization -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of qualified parameter names to value copies."""
        state = {name: param.value.copy() for name, param in self.named_parameters()}
        for name, module in self.named_modules():
            for buffer_name, buffer in getattr(module, "_buffers", {}).items():
                key = f"{name}.{buffer_name}" if name else buffer_name
                state[key] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        buffers: dict[str, tuple[Module, str]] = {}
        for name, module in self.named_modules():
            for buffer_name in getattr(module, "_buffers", {}):
                key = f"{name}.{buffer_name}" if name else buffer_name
                buffers[key] = (module, buffer_name)
        for key, value in state.items():
            if key in params:
                if params[key].value.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for parameter {key!r}: "
                        f"{params[key].value.shape} vs {value.shape}"
                    )
                params[key].value[...] = value
            elif key in buffers:
                module, buffer_name = buffers[key]
                module._buffers[buffer_name] = np.array(value, copy=True)
                object.__setattr__(module, buffer_name, module._buffers[buffer_name])
            else:
                raise KeyError(f"unexpected key in state dict: {key!r}")


class Sequential(Module):
    """Run child modules in order; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer

    def append(self, layer: Module) -> "Sequential":
        self._modules[str(len(self.layers))] = layer
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out
