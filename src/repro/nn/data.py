"""Synthetic image-classification dataset.

The paper evaluates on ImageNet (ILSVRC-2012), which is not available in this
environment.  The substitute is a deterministic, procedurally generated
dataset with the properties that matter for reproducing the paper's
behaviour:

* a non-trivial classification task (class-conditional low-frequency
  textures plus per-sample geometric structure and noise) so that top-1
  accuracy is a meaningful, degradable metric;
* natural-image-like statistics after training -- ReLU activations are
  roughly half zero (unstructured sparsity) and weights/activations follow a
  bell-shaped distribution, so many 8-bit values fit in 4 bits ("partial
  sparsity");
* reproducible generation from a seed, playing the role of both the training
  set (for the zoo and the calibration pass) and the validation set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_seed, new_rng


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of the synthetic dataset."""

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    train_size: int = 2048
    val_size: int = 512
    noise_std: float = 0.35
    seed: int = 2020


def _class_templates(config: DatasetConfig, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency class templates, one per class, shaped (classes, C, H, W)."""
    base = rng.normal(
        0.0,
        1.0,
        size=(config.num_classes, config.channels, 8, 8),
    )
    # Upsample 8x8 -> image_size with bilinear-ish repetition + smoothing.
    repeat = config.image_size // 8
    upsampled = np.repeat(np.repeat(base, repeat, axis=2), repeat, axis=3)
    kernel = np.ones((3, 3)) / 9.0
    smoothed = np.empty_like(upsampled)
    padded = np.pad(upsampled, ((0, 0), (0, 0), (1, 1), (1, 1)), mode="edge")
    for i in range(3):
        for j in range(3):
            if i == 0 and j == 0:
                smoothed = kernel[i, j] * padded[:, :, i : i + config.image_size,
                                                 j : j + config.image_size]
            else:
                smoothed = smoothed + kernel[i, j] * padded[
                    :, :, i : i + config.image_size, j : j + config.image_size
                ]
    return smoothed.astype(np.float32)


def _geometric_marker(
    config: DatasetConfig, label: int, rng: np.random.Generator
) -> np.ndarray:
    """A class-dependent bright geometric marker at a jittered position."""
    size = config.image_size
    marker = np.zeros((config.channels, size, size), dtype=np.float32)
    side = 4 + (label % 4)
    row = int(rng.integers(0, size - side))
    col = int(rng.integers(0, size - side))
    channel = label % config.channels
    marker[channel, row : row + side, col : col + side] = 1.5
    if label % 2 == 0:
        marker[(channel + 1) % config.channels, row : row + side, col] = 1.5
    return marker


class SyntheticImageDataset:
    """Deterministic synthetic stand-in for an image-classification dataset."""

    def __init__(self, config: DatasetConfig | None = None):
        self.config = config or DatasetConfig()
        rng = new_rng(derive_seed(self.config.seed, "templates"))
        self._templates = _class_templates(self.config, rng)
        self.train_images, self.train_labels = self._generate(
            self.config.train_size, derive_seed(self.config.seed, "train")
        )
        self.val_images, self.val_labels = self._generate(
            self.config.val_size, derive_seed(self.config.seed, "val")
        )

    def _generate(self, count: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        rng = new_rng(seed)
        config = self.config
        labels = rng.integers(0, config.num_classes, size=count)
        images = np.empty(
            (count, config.channels, config.image_size, config.image_size),
            dtype=np.float32,
        )
        for index, label in enumerate(labels):
            template = self._templates[label]
            shift_h = int(rng.integers(-2, 3))
            shift_w = int(rng.integers(-2, 3))
            shifted = np.roll(template, (shift_h, shift_w), axis=(1, 2))
            noise = rng.normal(0.0, config.noise_std, size=template.shape)
            marker = _geometric_marker(config, int(label), rng)
            images[index] = shifted + marker + noise
        return images.astype(np.float32), labels.astype(np.int64)

    # -- convenience accessors -------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    def calibration_batch(self, size: int = 256) -> np.ndarray:
        """A slice of the training set used for quantization calibration."""
        size = min(size, self.train_images.shape[0])
        return self.train_images[:size]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticImageDataset(classes={self.config.num_classes}, "
            f"train={self.config.train_size}, val={self.config.val_size})"
        )


class DataLoader:
    """Mini-batch iterator with optional shuffling."""

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
        shuffle: bool = True,
        seed: int = 0,
    ):
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have matching first dimension")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        return (self.images.shape[0] + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = np.arange(self.images.shape[0])
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, order.shape[0], self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.images[index], self.labels[index]
