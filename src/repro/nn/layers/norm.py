"""Batch normalization.

The paper's calibration pass "corrects the batch-norm layers' running mean
and running variance" before quantized inference (Section V-A); the running
buffers here are what that recalibration updates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self._buffers = {
            "running_mean": np.zeros(num_features, dtype=np.float32),
            "running_var": np.ones(num_features, dtype=np.float32),
        }
        self.running_mean = self._buffers["running_mean"]
        self.running_var = self._buffers["running_var"]
        self._cache: dict[str, np.ndarray] = {}

    def reset_running_stats(self) -> None:
        """Zero the running statistics (used before BN recalibration)."""
        self._buffers["running_mean"] = np.zeros(self.num_features, dtype=np.float32)
        self._buffers["running_var"] = np.ones(self.num_features, dtype=np.float32)
        object.__setattr__(self, "running_mean", self._buffers["running_mean"])
        object.__setattr__(self, "running_var", self._buffers["running_var"])

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            new_var = (1 - self.momentum) * self.running_var + self.momentum * var
            self._buffers["running_mean"] = new_mean.astype(np.float32)
            self._buffers["running_var"] = new_var.astype(np.float32)
            object.__setattr__(self, "running_mean", self._buffers["running_mean"])
            object.__setattr__(self, "running_var", self._buffers["running_var"])
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.value[None, :, None, None] * x_hat
        out = out + self.beta.value[None, :, None, None]
        if self.training:
            self._cache = {"x_hat": x_hat, "inv_std": inv_std}
        return out.astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        batch, _, height, width = grad_out.shape
        count = batch * height * width

        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))

        grad_x_hat = grad_out * self.gamma.value[None, :, None, None]
        sum_grad = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_x_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_in = (
            grad_x_hat - sum_grad / count - x_hat * sum_grad_xhat / count
        ) * inv_std[None, :, None, None]
        self._cache = {}
        return grad_in.astype(np.float32)

    def fold_into_affine(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the equivalent per-channel scale and shift at inference time."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.value * inv_std
        shift = self.beta.value - self.running_mean * scale
        return scale, shift
