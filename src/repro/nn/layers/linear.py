"""Fully-connected layer.

The paper leaves fully-connected layers intact (not executed under NB-SMT),
but the layer still participates in training and quantized inference, and
exposes the same ``matmul_fn`` hook as :class:`~repro.nn.layers.conv.Conv2d`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng

MatmulFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


class Linear(Module):
    """Affine layer ``y = x @ W^T + b`` over the last dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: int | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(out_features, in_features)).astype(np.float32)
        )
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self.matmul_fn: MatmulFn = lambda x, w: x @ w
        self._cache: dict[str, np.ndarray] = {}

    def weight_matrix(self) -> np.ndarray:
        """Weights as the ``(K, N)`` matmul operand."""
        return self.weight.value.T

    def macs_per_image(self) -> int:
        return self.in_features * self.out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError("Linear expects a flattened (batch, features) input")
        out = self.matmul_fn(x, self.weight_matrix())
        if self.bias is not None:
            out = out + self.bias.value
        self._cache = {"x": x}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache["x"]
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        self._cache = {}
        return grad_out @ self.weight.value
