"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten everything but the batch dimension."""

    def __init__(self):
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        shape = self._x_shape
        self._x_shape = None
        return grad_out.reshape(shape)


class Identity(Module):
    """Pass-through layer (used as a residual shortcut)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
