"""Composite blocks: residual, inception and dense connectivity.

These blocks give the scaled-down model zoo the same structural motifs as
the paper's evaluated CNNs (ResNet skip connections, GoogLeNet inception
branches, DenseNet feature reuse) without a general autograd graph: each
block implements its own branch-aware backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activation import ReLU
from repro.nn.module import Module, Sequential


class Concat(Module):
    """Concatenate the outputs of several branches along the channel axis.

    All branches receive the same input and must produce outputs with equal
    batch and spatial dimensions.
    """

    def __init__(self, *branches: Module):
        super().__init__()
        self.branches = list(branches)
        for index, branch in enumerate(branches):
            self._modules[f"branch{index}"] = branch
        self._split_sizes: list[int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        outputs = [branch(x) for branch in self.branches]
        self._split_sizes = [out.shape[1] for out in outputs]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._split_sizes is None:
            raise RuntimeError("backward called before forward")
        grads = np.split(grad_out, np.cumsum(self._split_sizes)[:-1], axis=1)
        grad_in = None
        for branch, grad in zip(self.branches, grads):
            branch_grad = branch.backward(np.ascontiguousarray(grad))
            grad_in = branch_grad if grad_in is None else grad_in + branch_grad
        self._split_sizes = None
        return grad_in


class ResidualBlock(Module):
    """``out = relu(body(x) + shortcut(x))`` -- the ResNet basic motif.

    The ``shortcut`` defaults to identity; pass a projection (1x1 conv +
    batch norm) when the body changes the channel count or stride.
    """

    def __init__(self, body: Module, shortcut: Module | None = None):
        super().__init__()
        self.body = body
        self.shortcut = shortcut
        self.relu = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body(x)
        skip = self.shortcut(x) if self.shortcut is not None else x
        if main.shape != skip.shape:
            raise ValueError(
                f"residual shapes differ: body {main.shape} vs shortcut {skip.shape}"
            )
        return self.relu(main + skip)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu.backward(grad_out)
        grad_main = self.body.backward(grad_sum)
        if self.shortcut is not None:
            grad_skip = self.shortcut.backward(grad_sum)
        else:
            grad_skip = grad_sum
        return grad_main + grad_skip


class InceptionBlock(Concat):
    """A GoogLeNet-style block: parallel branches concatenated channel-wise.

    This is :class:`Concat` under a name that mirrors the model it is used in;
    the branches are typically 1x1, 3x3 and 5x5 convolution towers.
    """


class DenseBlock(Module):
    """DenseNet-style block: each layer sees the concatenation of all
    previous feature maps, and the block output is the concatenation of the
    input with every layer's output.
    """

    def __init__(self, layers: list[Module]):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(self.layers):
            self._modules[f"layer{index}"] = layer
        self._channel_history: list[int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        features = x
        self._channel_history = [x.shape[1]]
        for layer in self.layers:
            new = layer(features)
            self._channel_history.append(new.shape[1])
            features = np.concatenate([features, new], axis=1)
        return features

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._channel_history is None:
            raise RuntimeError("backward called before forward")
        history = self._channel_history
        grad_features = grad_out
        for index in range(len(self.layers) - 1, -1, -1):
            prefix_channels = sum(history[: index + 1])
            grad_prefix = grad_features[:, :prefix_channels]
            grad_new = grad_features[:, prefix_channels:]
            grad_from_layer = self.layers[index].backward(
                np.ascontiguousarray(grad_new)
            )
            grad_features = np.ascontiguousarray(grad_prefix) + grad_from_layer
        self._channel_history = None
        return grad_features


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int | None = None,
    groups: int = 1,
    seed: int | None = None,
) -> Sequential:
    """Convenience builder for the ubiquitous conv -> batch norm -> ReLU stack."""
    from repro.nn.layers.conv import Conv2d
    from repro.nn.layers.norm import BatchNorm2d

    if padding is None:
        padding = kernel_size // 2
    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            bias=False,
            groups=groups,
            seed=seed,
        ),
        BatchNorm2d(out_channels),
        ReLU(),
    )
