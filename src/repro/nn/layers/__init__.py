"""Layer implementations (forward + backward) for the NumPy substrate."""

from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.activation import ReLU
from repro.nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.layers.reshape import Flatten, Identity
from repro.nn.layers.combine import Concat, DenseBlock, InceptionBlock, ResidualBlock

__all__ = [
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "Flatten",
    "Identity",
    "Concat",
    "ResidualBlock",
    "InceptionBlock",
    "DenseBlock",
]
