"""2D convolution lowered to matrix multiplication (im2col).

The convolution is the layer the paper's accelerator executes: activations
and weights are lowered to ``(M, K)`` and ``(K, N)`` matrices and multiplied.
The ``matmul_fn`` hook is the injection point used by :mod:`repro.quant` to
replace the exact floating-point product with a quantized NB-SMT execution.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng

MatmulFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _default_matmul(cols: np.ndarray, weight_2d: np.ndarray) -> np.ndarray:
    return cols @ weight_2d


class Conv2d(Module):
    """Square-kernel 2D convolution with optional grouping (for depthwise).

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  ``out_channels`` must be divisible by ``groups``.
    kernel_size, stride, padding:
        Convolution geometry (square kernels only).
    bias:
        Whether to add a per-output-channel bias.
    groups:
        Number of channel groups; ``groups == in_channels`` gives a depthwise
        convolution (used by the MobileNet-v1 analogue).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        seed: int | None = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channel counts must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups

        rng = new_rng(seed)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(
                0.0,
                scale,
                size=(out_channels, in_channels // groups, kernel_size, kernel_size),
            ).astype(np.float32)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

        #: hook replaced by the quantized executor; receives the im2col matrix
        #: (M, K) and the reshaped weights (K, N) and returns (M, N).
        self.matmul_fn: MatmulFn = _default_matmul

        self._cache: dict[str, object] = {}

    # -- helpers -------------------------------------------------------------
    def weight_matrix(self) -> np.ndarray:
        """Weights reshaped to the ``(K, N)`` matmul operand (single group)."""
        out_channels = self.out_channels
        return self.weight.value.reshape(out_channels, -1).T

    def output_spatial(self, height: int, width: int) -> tuple[int, int]:
        return (
            F.conv_output_size(height, self.kernel_size, self.stride, self.padding),
            F.conv_output_size(width, self.kernel_size, self.stride, self.padding),
        )

    def macs_per_image(self, height: int, width: int) -> int:
        """Number of multiply-accumulate operations for one input image."""
        out_h, out_w = self.output_spatial(height, width)
        k = (self.in_channels // self.groups) * self.kernel_size**2
        return out_h * out_w * k * self.out_channels

    # -- forward / backward ----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        if channels != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {channels}"
            )
        if self.groups == 1:
            cols, (out_h, out_w) = F.im2col(
                x, self.kernel_size, self.stride, self.padding
            )
            out_cols = self.matmul_fn(cols, self.weight_matrix())
            self._cache = {"x_shape": x.shape, "cols": cols, "out_hw": (out_h, out_w)}
        else:
            out_cols, out_h, out_w, group_cols = self._grouped_forward(x)
            self._cache = {
                "x_shape": x.shape,
                "group_cols": group_cols,
                "out_hw": (out_h, out_w),
            }
        if self.bias is not None:
            out_cols = out_cols + self.bias.value
        return F.cols_to_feature_map(out_cols, batch, out_h, out_w)

    def _grouped_forward(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, int, int, list[np.ndarray]]:
        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        outputs = []
        group_cols = []
        out_h = out_w = 0
        for group in range(self.groups):
            x_group = x[:, group * group_in : (group + 1) * group_in]
            cols, (out_h, out_w) = F.im2col(
                x_group, self.kernel_size, self.stride, self.padding
            )
            weight_group = (
                self.weight.value[group * group_out : (group + 1) * group_out]
                .reshape(group_out, -1)
                .T
            )
            outputs.append(self.matmul_fn(cols, weight_group))
            group_cols.append(cols)
        return np.concatenate(outputs, axis=1), out_h, out_w, group_cols

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_cols_out = F.feature_map_to_cols(grad_out)
        if self.bias is not None:
            self.bias.grad += grad_cols_out.sum(axis=0)
        if self.groups == 1:
            grad_in = self._ungrouped_backward(grad_cols_out)
        else:
            grad_in = self._grouped_backward(grad_cols_out)
        self._cache = {}
        return grad_in

    def _ungrouped_backward(self, grad_cols_out: np.ndarray) -> np.ndarray:
        cols = self._cache["cols"]
        x_shape = self._cache["x_shape"]
        grad_weight_2d = cols.T @ grad_cols_out  # (K, N)
        self.weight.grad += grad_weight_2d.T.reshape(self.weight.value.shape)
        grad_cols_in = grad_cols_out @ self.weight_matrix().T
        return F.col2im(
            grad_cols_in, x_shape, self.kernel_size, self.stride, self.padding
        )

    def _grouped_backward(self, grad_cols_out: np.ndarray) -> np.ndarray:
        x_shape = self._cache["x_shape"]
        group_cols = self._cache["group_cols"]
        group_in = self.in_channels // self.groups
        group_out = self.out_channels // self.groups
        batch, _, height, width = x_shape
        grad_in = np.zeros(x_shape, dtype=np.float32)
        for group in range(self.groups):
            grad_group = grad_cols_out[:, group * group_out : (group + 1) * group_out]
            cols = group_cols[group]
            weight_slice = slice(group * group_out, (group + 1) * group_out)
            grad_weight_2d = cols.T @ grad_group
            self.weight.grad[weight_slice] += grad_weight_2d.T.reshape(
                group_out, group_in, self.kernel_size, self.kernel_size
            )
            weight_group = self.weight.value[weight_slice].reshape(group_out, -1).T
            grad_cols_in = grad_group @ weight_group.T
            grad_in[:, group * group_in : (group + 1) * group_in] += F.col2im(
                grad_cols_in,
                (batch, group_in, height, width),
                self.kernel_size,
                self.stride,
                self.padding,
            )
        return grad_in
