"""Activation functions.

ReLU is the source of the dynamic, unstructured activation sparsity the paper
exploits (Section II, "Sparsity"), so it is the only activation used by the
model zoo.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
