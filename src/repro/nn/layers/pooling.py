"""Spatial pooling layers (max, average, global average)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class MaxPool2d(Module):
    """Square max pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: dict[str, object] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        merged = x.reshape(batch * channels, 1, height, width)
        cols, (out_h, out_w) = F.im2col(
            merged, self.kernel_size, self.stride, self.padding
        )
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        self._cache = {
            "x_shape": x.shape,
            "cols_shape": cols.shape,
            "argmax": argmax,
            "out_hw": (out_h, out_w),
        }
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._cache["x_shape"]
        cols_shape = self._cache["cols_shape"]
        argmax = self._cache["argmax"]
        grad_cols = np.zeros(cols_shape, dtype=np.float32)
        grad_cols[np.arange(cols_shape[0]), argmax] = grad_out.reshape(-1)
        grad_merged = F.col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self._cache = {}
        return grad_merged.reshape(batch, channels, height, width)


class AvgPool2d(Module):
    """Square average pooling."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: dict[str, object] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        merged = x.reshape(batch * channels, 1, height, width)
        cols, (out_h, out_w) = F.im2col(
            merged, self.kernel_size, self.stride, self.padding
        )
        out = cols.mean(axis=1)
        self._cache = {"x_shape": x.shape, "cols_shape": cols.shape, "out_hw": (out_h, out_w)}
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._cache["x_shape"]
        cols_shape = self._cache["cols_shape"]
        grad_cols = np.repeat(
            grad_out.reshape(-1, 1) / (self.kernel_size**2), cols_shape[1], axis=1
        )
        grad_merged = F.col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self._cache = {}
        return grad_merged.reshape(batch, channels, height, width)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing ``(N, C)``."""

    def __init__(self):
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._x_shape
        grad_in = np.broadcast_to(
            grad_out[:, :, None, None] / (height * width),
            (batch, channels, height, width),
        ).astype(np.float32)
        self._x_shape = None
        return np.array(grad_in)
