"""Optimizers.  SGD with momentum and weight decay is all the zoo needs."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with classical momentum and L2 decay."""

    def __init__(
        self,
        parameters: list[Parameter] | tuple[Parameter, ...],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(param.value) for param in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            velocity *= self.momentum
            velocity += grad
            param.value -= self.lr * velocity

    def set_lr(self, lr: float) -> None:
        self.lr = lr
