"""Reproduction of "Non-Blocking Simultaneous Multithreading: Embracing the
Resiliency of Deep Neural Networks" (Shomron & Weiser, MICRO 2020).

The package is organized around the paper's structure:

* :mod:`repro.nn` -- a from-scratch NumPy deep-learning substrate (layers,
  models, training, synthetic data) standing in for PyTorch + ImageNet.
* :mod:`repro.quant` -- 8-bit post-training quantization, calibration and
  the static 4-bit PTQ baselines (ACIQ / LBQ style) used for comparison.
* :mod:`repro.core` -- the paper's primary contribution: non-blocking
  simultaneous multithreading (NB-SMT): the flexible multiplier, on-the-fly
  precision reduction, PE control logic and packing policies.
* :mod:`repro.systolic` -- the output-stationary systolic array baseline and
  SySMT, the NB-SMT-enabled systolic array, plus data reordering and
  utilization models.
* :mod:`repro.hw` -- area / power / energy models calibrated to the paper's
  Table II.
* :mod:`repro.pruning` -- magnitude pruning used in the 4-thread study.
* :mod:`repro.models` -- the scaled-down CNN zoo (AlexNet, ResNet-18/50,
  GoogLeNet, DenseNet-121, MobileNet-v1 analogues).
* :mod:`repro.eval` -- experiment drivers reproducing every table and figure
  of the paper's evaluation section.
"""

from repro._version import __version__

__all__ = ["__version__"]
