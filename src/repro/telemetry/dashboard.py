"""SSE event streaming and the zero-dependency HTML dashboard.

Two surfaces share the machinery here:

* The serving front-end (:mod:`repro.serve.server`) mounts ``/v1/events``
  (``text/event-stream``) and ``/dashboard`` on its existing asyncio HTTP
  server, relaying the process-local telemetry bus plus -- when sharded --
  every peer shard's event spool.
* ``repro.cli dash`` runs the standalone :class:`DashboardServer` against
  a spool *directory* (a live sweep's or a sharded service's), so sweeps
  get a dashboard without any serving stack at all.

An :class:`EventRelay` is the common core: it merges the local bus with a
:class:`~repro.telemetry.bus.SpoolFollower` (skipping the process's own
spool file to avoid double-delivery), feeds every event through a
:class:`~repro.telemetry.timeseries.TelemetryAggregator`, and fans out to
per-connection SSE subscriptions.  An SSE stream opens with one
``snapshot`` frame (the aggregator's full current state) followed by live
events, so a dashboard reconnecting mid-run renders instantly instead of
replaying history.

The dashboard page itself is a single self-contained HTML document --
inline CSS and JS, no external assets -- rendering sweep progress (points
done/total, reuse hits, ETA, per-model table), per-endpoint serving
health (recent p99 against the latency budget, goodput, shed counts) and
the per-shard operating-point timelines.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.cluster.documents import DocumentStore
from repro.telemetry.bus import SpoolFollower, TelemetryBus, get_bus
from repro.telemetry.timeseries import TelemetryAggregator


def format_sse(event_type: str, payload: dict) -> bytes:
    """One Server-Sent-Events frame (``event:`` + ``data:`` lines)."""
    data = json.dumps(payload, separators=(",", ":"))
    return f"event: {event_type}\ndata: {data}\n\n".encode("utf-8")


def _normalize_spool_basename(basename: str) -> str:
    """Fold a rotated generation (``*.jsonl.old``) onto its spool name."""
    return basename.removesuffix(".old")


class EventRelay:
    """Local bus + peer spools, merged, aggregated, and fanned out."""

    def __init__(
        self,
        local_bus: TelemetryBus | None = None,
        spool_dir: str | None = None,
        aggregator: TelemetryAggregator | None = None,
        stats_name: str | None = None,
    ):
        self.aggregator = aggregator or TelemetryAggregator()
        self._fanout = TelemetryBus(role="relay")
        self._local_bus = local_bus
        self._callback = None
        self._consumers: list = []
        # Cumulative corruption accounting (survives follower restarts).
        # A fresh follower re-reads every file from byte 0, so its live
        # counters restart at whatever corruption still *exists* on disk;
        # per-file max() against the persisted baseline neither loses the
        # pre-restart count nor double-counts re-read corrupt lines.
        # Rotated generations fold onto their spool name first, so a
        # post-rotation file's new corruption adds to (rather than hides
        # behind) the old generation's count.
        self._stats_documents: DocumentStore | None = None
        self._stats_doc: str | None = None
        self._corrupt_baseline: dict[str, int] = {}
        self._last_persisted: dict | None = None
        if spool_dir is not None and stats_name is not None:
            self._stats_documents = DocumentStore.for_directory(str(spool_dir))
            self._stats_doc = f"relay-stats-{stats_name}.json"
            document = self._stats_documents.get(self._stats_doc)
            baseline = (document or {}).get("corrupt_by_file")
            if isinstance(baseline, dict):
                self._corrupt_baseline = {
                    str(name): int(count)
                    for name, count in baseline.items()
                    if isinstance(count, (int, float))
                }
        skip: set[str] = set()
        if (
            local_bus is not None
            and spool_dir is not None
            and local_bus.spool_path is not None
            and os.path.abspath(os.path.dirname(local_bus.spool_path))
            == os.path.abspath(str(spool_dir))
        ):
            # Our own events arrive via the bus callback; following our own
            # spool file too would deliver every one of them twice.
            skip.add(os.path.basename(local_bus.spool_path))
        self.follower = (
            SpoolFollower(spool_dir, skip_basenames=skip)
            if spool_dir is not None
            else None
        )
        if local_bus is not None:
            self._callback = local_bus.subscribe(callback=self.ingest)

    def add_consumer(self, consumer) -> None:
        """Attach an extra per-event consumer (e.g. the alert engine).

        Consumers see every ingested event -- local bus and followed
        spools alike -- and may publish back onto the local bus (the
        alert lifecycle); a consumer raising never breaks the relay.
        """
        self._consumers.append(consumer)

    def ingest(self, event) -> None:
        self.aggregator.consume(event)
        for consumer in list(self._consumers):
            try:
                consumer(event)
            except Exception:  # noqa: BLE001 - consumers never break relaying
                pass
        self._fanout.forward(event)

    def poll(self) -> int:
        """Pull new spool events in; returns how many were ingested."""
        if self.follower is None:
            return 0
        events = self.follower.poll()
        for event in events:
            self.ingest(event)
        return len(events)

    def subscribe(self, **kwargs):
        return self._fanout.subscribe(**kwargs)

    def corruption_stats(self) -> dict:
        """Cumulative corruption counters (survive follower restarts).

        Per normalized file: rotated generations summed within this
        follower's lifetime, then max()-merged against the persisted
        baseline from previous runs (see ``__init__``).  Persists the
        merged counters whenever they change, so the next restart's
        relay starts from here.
        """
        merged = dict(self._corrupt_baseline)
        if self.follower is not None:
            live: dict[str, int] = {}
            by_file = self.follower.stats().get("corrupt_by_file", {})
            for name, count in by_file.items():
                key = _normalize_spool_basename(name)
                live[key] = live.get(key, 0) + int(count)
            for key, count in live.items():
                merged[key] = max(merged.get(key, 0), count)
        cumulative = {
            "corrupt_lines": sum(merged.values()),
            "corrupt_by_file": merged,
        }
        if (
            self._stats_documents is not None
            and cumulative != self._last_persisted
        ):
            try:
                self._stats_documents.put(self._stats_doc, cumulative)
                self._last_persisted = {
                    "corrupt_lines": cumulative["corrupt_lines"],
                    "corrupt_by_file": dict(merged),
                }
            except OSError:  # pragma: no cover - spool dir torn down
                pass
        return cumulative

    def trace_summaries(self, limit: int = 32) -> list[dict]:
        """Newest-first summaries of the traces folded so far."""
        return self.aggregator.trace_summaries(limit=limit)

    def trace_spans(self, trace_id: str) -> list[dict]:
        """One trace's spans (deduped, start-ordered); [] when unknown."""
        return self.aggregator.trace_spans(trace_id)

    def snapshot(self) -> dict:
        snapshot = self.aggregator.snapshot()
        if self.follower is not None:
            stats = dict(self.follower.stats())
            # Keep `corrupt_lines` cumulative across restarts (the alert
            # rules threshold on it); the follower's own session counter
            # stays visible under its own key.
            stats["session_corrupt_lines"] = stats.get("corrupt_lines", 0)
            stats.update(self.corruption_stats())
            snapshot["spool"] = stats
        return snapshot

    def close(self) -> None:
        if self._callback is not None and self._local_bus is not None:
            self._local_bus.unsubscribe(self._callback)
            self._callback = None


_SSE_HEAD = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n"
    b"\r\n"
)


async def stream_sse(
    writer: asyncio.StreamWriter,
    relay: EventRelay,
    *,
    stopped=lambda: False,
    keepalive_s: float = 10.0,
    max_events: int | None = None,
) -> None:
    """Serve one ``/v1/events`` connection until the client goes away.

    Opens with a ``snapshot`` frame, then streams every relayed event as
    an SSE frame named by its type; quiet periods emit comment keepalives
    so proxies and clients can tell a silent stream from a dead one.
    ``max_events`` bounds the stream (tests); ``stopped`` lets the owning
    server end streams on shutdown.
    """
    subscription = relay.subscribe(maxlen=1024)
    loop = asyncio.get_running_loop()
    sent = 0
    try:
        writer.write(_SSE_HEAD)
        writer.write(format_sse("snapshot", relay.snapshot()))
        await writer.drain()
        last_write = time.monotonic()
        while not stopped():
            # Wake at most every 0.5s so `stopped()` is honored promptly,
            # but only emit the keepalive comment after `keepalive_s` of
            # actual silence.
            event = await loop.run_in_executor(
                None, subscription.get, min(keepalive_s, 0.5)
            )
            if event is None:
                if time.monotonic() - last_write >= keepalive_s:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    last_write = time.monotonic()
                continue
            writer.write(format_sse(event.type, event.describe()))
            await writer.drain()
            last_write = time.monotonic()
            sent += 1
            if max_events is not None and sent >= max_events:
                break
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    finally:
        subscription.close()


# The palette below is the validated default data-viz palette (ordinal
# blue ramp for ladder rungs, reserved status colors for budget state);
# rung segments additionally carry their number as text, so rung identity
# is never color-alone.
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro telemetry</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b;
  --rung-0: #86b6ef; --rung-1: #5598e7; --rung-2: #2a78d6;
  --rung-3: #1c5cab; --rung-4: #104281;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --rung-0: #86b6ef; --rung-1: #5598e7; --rung-2: #3987e5;
    --rung-3: #256abf; --rung-4: #184f95;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 16px; background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 16px; margin: 0 0 4px; }
h2 { font-size: 13px; margin: 0 0 8px; color: var(--text-secondary);
  font-weight: 600; text-transform: uppercase; letter-spacing: .04em; }
.sub { color: var(--muted); font-size: 12px; margin-bottom: 16px; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 16px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; min-width: 220px; flex: 1; }
.tiles { display: flex; gap: 18px; flex-wrap: wrap; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .l { font-size: 11px; color: var(--muted); }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--muted); font-weight: 500;
  border-bottom: 1px solid var(--grid); padding: 2px 8px 2px 0; }
td { padding: 3px 8px 3px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
.meter { position: relative; height: 10px; background: var(--grid);
  border-radius: 4px; overflow: hidden; margin-top: 4px; }
.meter .fill { position: absolute; inset: 0 auto 0 0; border-radius: 4px; }
.status { font-size: 12px; font-weight: 600; }
.timeline { position: relative; height: 18px; background: var(--grid);
  border-radius: 4px; overflow: hidden; margin: 3px 0; }
.timeline .seg { position: absolute; top: 0; bottom: 0; color: #fff;
  font-size: 10px; text-align: center; overflow: hidden;
  border-right: 2px solid var(--surface-1); }
.tl-label { font-size: 11px; color: var(--muted); }
#log, #history-strip { background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px; padding: 8px 12px; max-height: 260px; overflow: auto;
  font: 11px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
  color: var(--text-secondary); }
#log .t, #history-strip .t { color: var(--muted); }
.wf-row { display: flex; align-items: center; gap: 8px; font-size: 11px; }
.wf-name { width: 160px; overflow: hidden; text-overflow: ellipsis;
  white-space: nowrap; font-family: ui-monospace, Menlo, monospace; }
.wf-track { position: relative; flex: 1; height: 12px;
  background: var(--grid); border-radius: 3px; overflow: hidden; }
.wf-bar { position: absolute; top: 1px; bottom: 1px; border-radius: 2px;
  background: var(--rung-2); min-width: 2px; }
.wf-bar.err { background: var(--critical); }
.wf-ms { width: 72px; text-align: right; font-size: 11px;
  color: var(--muted); font-variant-numeric: tabular-nums; }
.trace-link { cursor: pointer; text-decoration: underline dotted; }
.dot { display: inline-block; width: 8px; height: 8px; border-radius: 2px;
  margin-right: 6px; vertical-align: baseline; }
</style>
</head>
<body>
<h1>repro telemetry</h1>
<div class="sub" id="status">connecting&hellip;</div>

<div class="cards">
  <div class="card" id="sweep-card">
    <h2>Sweep</h2>
    <div class="tiles">
      <div class="tile"><div class="v" id="sw-done">&ndash;</div>
        <div class="l">points done / total</div></div>
      <div class="tile"><div class="v" id="sw-reuse">&ndash;</div>
        <div class="l">reuse hits</div></div>
      <div class="tile"><div class="v" id="sw-rate">&ndash;</div>
        <div class="l">points / s (30s)</div></div>
      <div class="tile"><div class="v" id="sw-eta">&ndash;</div>
        <div class="l">ETA</div></div>
    </div>
    <div id="sw-models" style="margin-top:10px"></div>
  </div>
  <div class="card" id="alerts-card">
    <h2>Alerts</h2>
    <div class="tiles">
      <div class="tile"><div class="v" id="al-active">&ndash;</div>
        <div class="l">active</div></div>
      <div class="tile"><div class="v" id="al-fired">&ndash;</div>
        <div class="l">fired</div></div>
      <div class="tile"><div class="v" id="al-resolved">&ndash;</div>
        <div class="l">resolved</div></div>
    </div>
    <div id="al-list" style="margin-top:10px"></div>
  </div>
  <div class="card" id="traces-card">
    <h2>Traces</h2>
    <div class="tiles">
      <div class="tile"><div class="v" id="tr-count">&ndash;</div>
        <div class="l">recent traces</div></div>
      <div class="tile"><div class="v" id="tr-spans">&ndash;</div>
        <div class="l">spans seen</div></div>
    </div>
    <div id="tr-list" style="margin-top:10px"></div>
    <div id="tr-waterfall" style="margin-top:10px"></div>
  </div>
</div>

<div class="cards" id="endpoints"></div>

<div class="card" style="margin-bottom:16px" id="history-card" hidden>
  <h2>History</h2>
  <div id="history-strip"></div>
</div>

<div class="card" style="margin-bottom:16px">
  <h2>Event log</h2>
  <div id="log"></div>
</div>

<script>
"use strict";
const RUNGS = ["--rung-0","--rung-1","--rung-2","--rung-3","--rung-4"];
const css = (name) =>
  getComputedStyle(document.documentElement).getPropertyValue(name).trim();
const rungColor = (level) => css(RUNGS[Math.min(level, RUNGS.length - 1)]);
// Event data (endpoint/model names, transition reasons) is untrusted
// input to this page: escape everything interpolated into markup.
const esc = (value) => String(value).replace(/[&<>"']/g, (c) => ({
  "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "'": "&#39;",
}[c]));
let state = null;

function fmt(x, digits) {
  if (x === null || x === undefined) return "\\u2013";
  return Number(x).toFixed(digits === undefined ? 1 : digits);
}
function fmtEta(s) {
  if (s === null || s === undefined) return "\\u2013";
  if (s < 90) return Math.round(s) + "s";
  return Math.round(s / 60) + "m";
}

function renderSweep(sw) {
  document.getElementById("sw-done").textContent =
    sw.total ? sw.done + " / " + sw.total : String(sw.done);
  document.getElementById("sw-reuse").textContent = sw.reused;
  document.getElementById("sw-rate").textContent = fmt(sw.points_per_s, 2);
  document.getElementById("sw-eta").textContent =
    sw.finished ? "done" : fmtEta(sw.eta_s);
  const models = Object.keys(sw.per_model || {}).sort();
  if (!models.length) {
    document.getElementById("sw-models").innerHTML = "";
    return;
  }
  let html = "<table><tr><th>model</th><th>done</th><th>reused</th>" +
    "<th>in flight</th></tr>";
  for (const m of models) {
    const e = sw.per_model[m];
    html += "<tr><td>" + esc(m) + "</td><td>" + e.done + "</td><td>" +
      e.reused + "</td><td>" + (e.in_flight || 0) + "</td></tr>";
  }
  document.getElementById("sw-models").innerHTML = html + "</table>";
}

// Seconds of timeline history shown; ?window=N overrides the default.
const WINDOW_S = Math.max(
  10, Number(new URLSearchParams(location.search).get("window")) || 120);

function timelineHtml(segments, now) {
  const t0 = now - WINDOW_S;
  let html = '<div class="timeline">';
  for (const seg of segments) {
    const until = seg.until === null ? now : seg.until;
    if (until < t0) continue;
    // Clamp a segment that predates the window to its left edge *before*
    // deriving geometry, so width and position stay consistent instead of
    // relying on pixel clamping alone.
    const since = Math.max(seg.since, t0);
    const left = (since - t0) / WINDOW_S * 100;
    const width = Math.max(0.5, (until - since) / WINDOW_S * 100);
    const title = "rung " + seg.level +
      (seg.reason ? " \\u2014 " + esc(seg.reason) : "");
    html += '<div class="seg" style="left:' + left + "%;width:" + width +
      "%;background:" + rungColor(seg.level) + '" title="' + title + '">' +
      seg.level + "</div>";
  }
  return html + "</div>";
}

function renderEndpoints(endpoints, coordinator, now) {
  const container = document.getElementById("endpoints");
  const names = Object.keys(endpoints || {}).sort();
  if (!names.length) { container.innerHTML = ""; return; }
  let html = "";
  for (const name of names) {
    const ep = endpoints[name];
    const budget = ep.latency_budget_ms || 0;
    const p99 = ep.recent_p99_ms || 0;
    const over = budget > 0 && p99 > budget;
    const frac = budget > 0 ? Math.min(1, p99 / budget) : 0;
    const statusColor = over ? css("--critical") : css("--good");
    const statusText = budget > 0
      ? (over ? "\\u2715 over budget" : "\\u2713 within budget")
      : "no budget set";
    const rec = (coordinator || {})[name];
    html += '<div class="card"><h2>' + esc(name) + "</h2>" +
      '<div class="tiles">' +
      '<div class="tile"><div class="v">' + fmt(ep.throughput_images_per_s) +
      '</div><div class="l">images / s</div></div>' +
      '<div class="tile"><div class="v">' + fmt(ep.goodput_images_per_s) +
      '</div><div class="l">goodput / s</div></div>' +
      '<div class="tile"><div class="v">' + (ep.rejected_images || 0) +
      '</div><div class="l">shed images</div></div>' +
      '<div class="tile"><div class="v">' + (ep.respawns || 0) +
      '</div><div class="l">respawns</div></div>' +
      "</div>" +
      '<div style="margin-top:8px"><span class="tl-label">p99 ' +
      fmt(p99) + " ms" + (budget ? " / budget " + fmt(budget) + " ms" : "") +
      '</span> <span class="status" style="color:' + statusColor + '">' +
      statusText + "</span>" +
      '<div class="meter"><div class="fill" style="width:' +
      (frac * 100) + "%;background:" + statusColor + '"></div></div></div>';
    const timelines = ep.timelines || {};
    const shards = Object.keys(timelines).sort();
    if (shards.length) {
      html += '<div style="margin-top:8px" class="tl-label">rung timeline ' +
        "(last " + WINDOW_S + "s)" +
        (rec ? " \\u2014 coordinator recommends rung " + rec.level : "") +
        "</div>";
      for (const shard of shards) {
        html += '<div class="tl-label">shard ' + esc(shard) + "</div>" +
          timelineHtml(timelines[shard], now);
      }
    }
    html += "</div>";
  }
  container.innerHTML = html;
}

function renderAlerts(al) {
  al = al || {};
  const active = al.active || [];
  document.getElementById("al-active").textContent = active.length;
  document.getElementById("al-fired").textContent = al.fired || 0;
  document.getElementById("al-resolved").textContent = al.resolved || 0;
  if (!active.length) {
    document.getElementById("al-list").innerHTML =
      '<span class="tl-label">no active alerts</span>';
    return;
  }
  let html = "<table><tr><th>rule</th><th>key</th><th>severity</th>" +
    "<th>value</th></tr>";
  for (const a of active) {
    html += '<tr><td style="color:' + css("--critical") + '">' +
      esc(a.rule) + "</td><td>" + esc(a.key) + "</td><td>" +
      esc(a.severity) + "</td><td>" + fmt(a.value, 3) + "</td></tr>";
  }
  document.getElementById("al-list").innerHTML = html + "</table>";
}

function waterfallHtml(spans) {
  const byId = {};
  for (const s of spans) byId[s.span_id] = s;
  const depthOf = (span) => {
    let depth = 0, parent = span.parent_id;
    const seen = new Set();
    while (parent && byId[parent] && !seen.has(parent)) {
      seen.add(parent);
      depth += 1;
      parent = byId[parent].parent_id;
    }
    return depth;
  };
  const t0 = Math.min(...spans.map((s) => s.start));
  const t1 = Math.max(...spans.map((s) => s.start + s.duration_ms / 1000));
  const total = Math.max(1e-6, t1 - t0);
  let html = "";
  for (const s of spans) {
    const left = (s.start - t0) / total * 100;
    const width = Math.max(0.4, (s.duration_ms / 1000) / total * 100);
    const bad = s.status && s.status !== "ok";
    const mark = (s.exemplar ? " [" + esc(s.exemplar) + "]" : "") +
      (s.orphan ? " [orphan]" : "");
    html += '<div class="wf-row">' +
      '<div class="wf-name" style="padding-left:' + depthOf(s) * 10 +
      'px" title="' + esc(s.name) + '">' + esc(s.name) + mark + "</div>" +
      '<div class="wf-track"><div class="wf-bar' + (bad ? " err" : "") +
      '" style="left:' + left + "%;width:" + width + '%" title="' +
      esc(s.name) + " " + fmt(s.duration_ms, 2) + ' ms"></div></div>' +
      '<div class="wf-ms">' + fmt(s.duration_ms, 2) + " ms</div></div>";
  }
  return html;
}

async function showWaterfall(traceId) {
  try {
    const response = await fetch("/v1/traces/" + encodeURIComponent(traceId));
    if (!response.ok) return;
    const payload = await response.json();
    const spans = payload.spans || [];
    if (!spans.length) return;
    document.getElementById("tr-waterfall").innerHTML =
      '<div class="tl-label">trace ' + esc(traceId) + "</div>" +
      waterfallHtml(spans);
  } catch (error) { /* trace aged out of the fold */ }
}

function renderTraces(traces) {
  document.getElementById("tr-count").textContent = traces.length;
  if (!traces.length) {
    document.getElementById("tr-list").innerHTML =
      '<span class="tl-label">no traces yet</span>';
    return;
  }
  let html = "<table><tr><th>trace</th><th>root</th><th>ms</th>" +
    "<th>spans</th><th>status</th></tr>";
  for (const t of traces.slice(0, 8)) {
    const mark = t.exemplar ? " [" + esc(t.exemplar) + "]" : "";
    html += '<tr><td class="trace-link" data-trace="' + esc(t.trace_id) +
      '">' + esc(t.trace_id) + "</td><td>" + esc(t.root || "?") +
      "</td><td>" + fmt(t.duration_ms, 2) + "</td><td>" + t.spans +
      "</td><td>" + esc(t.status || "") + mark + "</td></tr>";
  }
  document.getElementById("tr-list").innerHTML = html + "</table>";
  for (const cell of document.querySelectorAll("#tr-list .trace-link")) {
    cell.onclick = () => showWaterfall(cell.dataset.trace);
  }
}

async function refreshTraces() {
  try {
    const response = await fetch("/v1/traces");
    if (!response.ok) return;
    const payload = await response.json();
    renderTraces(payload.traces || []);
  } catch (error) { /* front-end without tracing; card stays empty */ }
}

async function refreshHistory() {
  try {
    const response = await fetch("/v1/history");
    if (!response.ok) return;
    const payload = await response.json();
    const events = payload.events || [];
    if (!events.length) return;
    document.getElementById("history-card").hidden = false;
    let html = "";
    for (const ev of events.slice(-80).reverse()) {
      const when = new Date(ev.at * 1000).toLocaleTimeString();
      html += '<div><span class="t">' + esc(when) + "</span> " +
        esc(ev.type) + " " + esc(JSON.stringify(ev.data)) + "</div>";
    }
    document.getElementById("history-strip").innerHTML = html;
  } catch (error) { /* no persisted history behind this server */ }
}

function render() {
  if (!state) return;
  renderSweep(state.sweep || {});
  renderAlerts(state.alerts);
  renderEndpoints(state.endpoints, state.coordinator, state.at);
  const traces = state.traces || (state.tracing ? state.tracing : null);
  if (traces && traces.spans_seen !== undefined) {
    document.getElementById("tr-spans").textContent = traces.spans_seen;
  }
  document.getElementById("status").textContent =
    "live \\u2014 " + state.events_seen + " events seen";
}

function logEvent(ev) {
  const log = document.getElementById("log");
  const line = document.createElement("div");
  const when = new Date(ev.at * 1000).toLocaleTimeString();
  line.innerHTML = '<span class="t">' + esc(when) + "</span> " +
    '<span class="dot" style="background:' + rungColor(0) + '"></span>' +
    esc(ev.type) + " " + esc(JSON.stringify(ev.data));
  log.prepend(line);
  while (log.childNodes.length > 50) log.removeChild(log.lastChild);
}

const source = new EventSource("/v1/events");
source.addEventListener("snapshot", (message) => {
  state = JSON.parse(message.data);
  render();
});
source.onmessage = () => {};
for (const type of ["sweep_started", "sweep_finished", "point_started",
                    "point_finished", "point_failed", "worker_started",
                    "worker_exited", "endpoint_health", "rung_transition",
                    "shed", "replica_respawn", "span",
                    "coordinator_recommendation", "alert_fired",
                    "alert_resolved", "probe_result", "spool_health"]) {
  source.addEventListener(type, (message) => {
    logEvent(JSON.parse(message.data));
  });
}
source.onerror = () => {
  document.getElementById("status").textContent =
    "disconnected \\u2014 retrying\\u2026";
};
async function refresh() {
  try {
    const response = await fetch("/v1/telemetry");
    if (response.ok) { state = await response.json(); render(); }
  } catch (error) { /* server away; EventSource drives the status line */ }
}
refresh();
refreshTraces();
refreshHistory();
setInterval(refresh, 2000);
setInterval(refreshTraces, 3000);
setInterval(refreshHistory, 5000);
</script>
</body>
</html>
"""


class DashboardServer:
    """Standalone dashboard over a telemetry spool directory.

    ``repro.cli dash --dir <spool>`` serves ``/dashboard`` (the HTML page),
    ``/v1/events`` (SSE) and ``/v1/telemetry`` (the aggregator snapshot)
    from whatever events appear in the directory -- a running sweep's
    spool, a sharded service's, or both if they share one directory.
    """

    def __init__(
        self,
        spool_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 8471,
        poll_s: float = 0.25,
        local_bus: TelemetryBus | None = None,
    ):
        self.relay = EventRelay(local_bus=local_bus, spool_dir=spool_dir)
        self.host = host
        self.port = port
        self.poll_s = float(poll_s)
        self._server: asyncio.AbstractServer | None = None
        self._stopped = False
        self._tasks: list[asyncio.Task] = []

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.relay.follower is not None:
            self._tasks.append(asyncio.create_task(self._poll_loop()))

    async def _poll_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopped:
            await loop.run_in_executor(None, self.relay.poll)
            await asyncio.sleep(self.poll_s)

    async def stop(self) -> None:
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.relay.close()

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, path, _ = request_line.decode("ascii").split(None, 2)
            except ValueError:
                return
            while True:  # drain headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            path = path.split("?", 1)[0]
            if method.upper() != "GET":
                await self._respond(writer, 405, b"use GET", "text/plain")
            elif path == "/v1/events":
                await stream_sse(
                    writer, self.relay, stopped=lambda: self._stopped
                )
            elif path in ("/", "/dashboard"):
                await self._respond(
                    writer, 200, DASHBOARD_HTML.encode("utf-8"),
                    "text/html; charset=utf-8",
                )
            elif path == "/v1/telemetry":
                body = json.dumps(self.relay.snapshot()).encode("utf-8")
                await self._respond(writer, 200, body, "application/json")
            elif path == "/v1/traces":
                body = json.dumps(
                    {"traces": self.relay.trace_summaries()}
                ).encode("utf-8")
                await self._respond(writer, 200, body, "application/json")
            elif path.startswith("/v1/traces/"):
                trace_id = path.rsplit("/", 1)[1]
                spans = self.relay.trace_spans(trace_id)
                if not spans:
                    await self._respond(
                        writer, 404, b'{"error":"unknown trace"}',
                        "application/json",
                    )
                else:
                    body = json.dumps(
                        {"trace_id": trace_id, "spans": spans}
                    ).encode("utf-8")
                    await self._respond(writer, 200, body, "application/json")
            elif path == "/healthz":
                await self._respond(
                    writer, 200, b'{"status":"ok"}', "application/json"
                )
            else:
                await self._respond(writer, 404, b"not found", "text/plain")
        except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, writer, status: int, body: bytes, content_type: str
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "OK"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        writer.write(body)
        await writer.drain()

    async def serve_forever(self) -> None:
        await self.start()
        print(
            f"repro.telemetry: dashboard on http://{self.host}:{self.port}"
            f"/dashboard"
            + (
                f" (following {self.relay.follower.directory})"
                if self.relay.follower is not None
                else ""
            ),
            flush=True,
        )
        try:
            while not self._stopped:
                await asyncio.sleep(0.5)
        finally:
            await self.stop()


def run_dashboard(
    spool_dir: str | None = None,
    host: str = "127.0.0.1",
    port: int = 8471,
) -> None:
    """Blocking entry point used by ``repro.cli dash``."""
    server = DashboardServer(
        spool_dir=spool_dir or get_bus().spool_dir, host=host, port=port
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
