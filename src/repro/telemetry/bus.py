"""Process-local pub/sub event bus with a cross-process JSONL spool.

The bus is the single publication point for everything observable in the
repo: sweep points starting/finishing, worker lifecycle, served batches,
QoS rung transitions, shed requests, replica respawns.  Publishers call
:func:`publish` (or ``get_bus().publish``) with a type string and JSON-able
fields; the hot path is a single attribute check when nothing listens, so
instrumented code costs nothing in the common un-observed case.

In-process consumers subscribe either a callback or a bounded
:class:`Subscription` queue (oldest events are evicted when a slow consumer
falls behind -- telemetry must never apply backpressure to the serving or
sweep hot paths).

Cross-process transport reuses the sharding metrics-spool pattern: each
process appends events to its own ``<role>-<pid>.jsonl`` file in a shared
spool directory (append-only, one JSON document per line, atomic size-based
rotation to a single ``.old`` generation), and a :class:`SpoolFollower`
tails every file in the directory -- so forked sweep workers and
``SO_REUSEPORT`` shards publish into one merged stream without locks or
pipes.  Writers are fork-safe: the spool sink lazily reopens a fresh
per-pid file when it notices it crossed a ``fork()``, and
:meth:`TelemetryBus.reset_after_fork` drops subscribers inherited from the
parent (a worker must not run the parent's dashboard callbacks).
"""

from __future__ import annotations

import collections
import io
import json
import os
import threading
import time

#: Rotate a spool file once it grows past this many bytes (one rotated
#: ``.old`` generation is kept so followers can finish reading it).
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024


class Event:
    """One typed telemetry event.

    ``type`` names the event (``point_finished``, ``rung_transition``,
    ...); ``at`` is a ``time.time()`` wall-clock stamp (events cross
    processes, so monotonic clocks would not compare); ``source``
    identifies the publishing process (pid, role, optional shard index);
    ``seq`` orders events of one publisher; ``data`` carries the JSON-able
    payload.
    """

    __slots__ = ("type", "at", "source", "seq", "data")

    def __init__(self, type: str, at: float, source: dict, seq: int, data: dict):
        self.type = type
        self.at = at
        self.source = source
        self.seq = seq
        self.data = data

    def to_json(self) -> str:
        return json.dumps(
            {
                "type": self.type,
                "at": self.at,
                "source": self.source,
                "seq": self.seq,
                "data": self.data,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        doc = json.loads(line)
        if not isinstance(doc, dict):
            raise ValueError(f"event line is not a JSON object: {line!r}")
        return cls(
            type=doc["type"],
            at=float(doc["at"]),
            source=doc.get("source", {}),
            seq=int(doc.get("seq", 0)),
            data=doc.get("data", {}),
        )

    def describe(self) -> dict:
        return {
            "type": self.type,
            "at": self.at,
            "source": self.source,
            "seq": self.seq,
            "data": self.data,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.type!r}, seq={self.seq}, data={self.data!r})"


class Subscription:
    """Bounded, thread-safe event queue handed to one in-process consumer.

    When the buffer is full the *oldest* event is evicted: a stalled
    dashboard connection loses history, never slows a publisher.
    """

    def __init__(self, bus: "TelemetryBus", types=None, maxlen: int = 256):
        self._bus = bus
        self.types = frozenset(types) if types else None
        self._buffer: collections.deque[Event] = collections.deque(
            maxlen=max(1, int(maxlen))
        )
        self._condition = threading.Condition()
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        if self.types is not None and event.type not in self.types:
            return
        with self._condition:
            if len(self._buffer) == self._buffer.maxlen:
                self.dropped += 1
            self._buffer.append(event)
            self._condition.notify()

    def get(self, timeout: float | None = None) -> Event | None:
        """Next event, or ``None`` on timeout / after :meth:`close`."""
        with self._condition:
            if not self._buffer and not self.closed:
                self._condition.wait(timeout)
            if self._buffer:
                return self._buffer.popleft()
            return None

    def drain(self) -> list[Event]:
        """Every buffered event, without blocking."""
        with self._condition:
            events = list(self._buffer)
            self._buffer.clear()
            return events

    def close(self) -> None:
        self._bus.unsubscribe(self)
        with self._condition:
            self.closed = True
            self._condition.notify_all()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventSpool:
    """Append-only JSONL writer for one process's share of a spool dir.

    The file is named ``<role>-<pid>.jsonl`` so concurrent writers never
    contend; a write is one line + flush (readers only parse complete
    lines).  Once the file passes ``rotate_bytes`` it is atomically
    renamed to ``.old`` (replacing the previous generation) and a fresh
    file is started.  The writer is fork-safe: a pid change is detected on
    the next append and a new per-pid file is opened.
    """

    #: Inherited parent file objects abandoned after a fork.  Kept alive
    #: forever (one small object per fork) so their destructors never run:
    #: close()/GC-flush in the child would write the child's copy of any
    #: partially-buffered parent line into the parent's shared fd, tearing
    #: the parent's next event line.
    _ABANDONED_HANDLES: list = []

    def __init__(
        self, directory: str, role: str = "events",
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        budget=None,
    ):
        self.directory = str(directory)
        self.role = role
        self.rotate_bytes = int(rotate_bytes)
        #: Optional :class:`repro.utils.diskbudget.DiskBudget` over the
        #: spool directory.  Telemetry is auxiliary: an event that would
        #: bust the quota (or hits real ENOSPC) is *dropped and counted*,
        #: never raised into the publishing hot path.
        self.budget = budget
        self.dropped_events = 0
        self.enospc_drops = 0
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._pid: int | None = None
        self._handle: io.TextIOWrapper | None = None
        self._written = 0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, f"{self.role}-{os.getpid()}.jsonl")

    def _ensure_open(self) -> None:
        pid = os.getpid()
        if self._handle is not None and self._pid == pid:
            if self._handle.closed:  # pragma: no cover - failed rotation
                self._handle = None
            else:
                return
        if self._handle is not None:
            # Crossed a fork: the handle belongs to the parent's file.
            # Never close it here (see _ABANDONED_HANDLES).
            EventSpool._ABANDONED_HANDLES.append(self._handle)
        self._pid = pid
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = self._handle.tell()

    def rearm_after_fork(self) -> None:
        """Make this (inherited) spool usable in a freshly forked child.

        The inherited lock may be held by a parent thread that was inside
        :meth:`append` at fork time -- that thread does not exist in the
        child, so the lock would never be released.  The child is
        single-threaded at this point, so replacing the lock (and
        abandoning the inherited handle) is race-free.
        """
        self._lock = threading.Lock()
        if self._handle is not None:
            EventSpool._ABANDONED_HANDLES.append(self._handle)
            self._handle = None
        self._pid = None

    def append(self, event: Event) -> None:
        line = event.to_json() + "\n"
        if self.budget is not None and not self.budget.admit(len(line)):
            self.dropped_events += 1
            return
        with self._lock:
            self._ensure_open()
            try:
                self._handle.write(line)
                self._handle.flush()
            except OSError as exc:
                from repro.utils.diskbudget import is_enospc

                if is_enospc(exc):
                    # The disk itself is full (quota or not): drop with a
                    # counter -- the degrade contract for spools.
                    self.dropped_events += 1
                    self.enospc_drops += 1
                    if self.budget is not None:
                        self.budget.note_enospc()
                    return
                raise
            self._written += len(line)
            if self._written >= self.rotate_bytes:
                self._rotate()

    def stats(self) -> dict:
        """Degrade counters (and the budget's view, when one is attached)."""
        stats = {
            "dropped_events": self.dropped_events,
            "enospc_drops": self.enospc_drops,
        }
        if self.budget is not None:
            stats["budget"] = self.budget.snapshot()
        return stats

    def _rotate(self) -> None:
        # Drop the handle reference first: if the rename or reopen fails
        # (spool directory torn down mid-shutdown), the next append must
        # find no handle and retry the open -- never write to the closed
        # object, which would raise ValueError past publish()'s OSError
        # guard and crash the publishing thread.
        handle, self._handle = self._handle, None
        handle.close()
        try:
            os.replace(self.path, self.path + ".old")
        except OSError:  # pragma: no cover - spool dir torn down
            pass
        self._handle = open(self.path, "a", encoding="utf-8")
        self._written = 0
        if self.budget is not None:
            # Rotation just deleted the previous ``.old`` generation;
            # re-ground the quota so writes resume as soon as space does.
            self.budget.usage_bytes(refresh=True)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                try:
                    self._handle.close()
                except OSError:  # pragma: no cover
                    pass
            self._handle = None
            self._pid = None


class SpoolFollower:
    """Tails every spool file of a directory, yielding new events.

    Per-file read offsets persist across :meth:`poll` calls; only complete
    lines are parsed (a writer mid-line is picked up next poll).  Rotation
    is handled by watching the ``.old`` generation too and by detecting
    truncation (offset past the new, smaller file).  Events of one poll are
    merged across files in wall-clock order.

    The follower is torn-write tolerant: a corrupt *complete* line (a
    crashed writer's garbage, a torn mid-file write, a non-event JSON
    document) is skipped and counted in :attr:`corrupt_lines` -- reading
    resumes at the next newline, so one bad line never kills a follower
    thread or hides the valid events behind it.  :meth:`stats` reports the
    damage per file.
    """

    def __init__(self, directory: str, skip_basenames: set[str] | None = None):
        self.directory = str(directory)
        self.skip_basenames = set(skip_basenames or ())
        self._offsets: dict[str, int] = {}
        self._inodes: dict[str, int] = {}
        #: Complete-but-unparseable lines skipped so far (all files).
        self.corrupt_lines = 0
        self._corrupt_by_file: dict[str, int] = {}

    def _spool_names(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            name
            for name in names
            if name.endswith((".jsonl", ".jsonl.old"))
            and name not in self.skip_basenames
            and name.removesuffix(".old") not in self.skip_basenames
        ]

    def _read_new(self, path: str, events: list[Event]) -> None:
        """Append the complete new lines of ``path`` since the last poll."""
        offset = self._offsets.get(path, 0)
        try:
            if os.path.getsize(path) == offset:
                return
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return
        # Only complete lines: a torn tail is re-read next poll.
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        self._offsets[path] = offset + end + 1
        for line in chunk[: end + 1].splitlines():
            if not line.strip():
                continue
            try:
                events.append(Event.from_json(line.decode("utf-8")))
            except (ValueError, KeyError, TypeError):
                # Torn/garbage line: count it, keep tailing from the next
                # newline.  UnicodeDecodeError is a ValueError.
                self.corrupt_lines += 1
                name = os.path.basename(path)
                self._corrupt_by_file[name] = self._corrupt_by_file.get(name, 0) + 1
                continue

    def stats(self) -> dict:
        """Corruption tally: total skipped lines and a per-file breakdown."""
        return {
            "corrupt_lines": self.corrupt_lines,
            "corrupt_by_file": dict(self._corrupt_by_file),
        }

    def poll(self) -> list[Event]:
        events: list[Event] = []
        names = self._spool_names()
        mains = [name for name in names if name.endswith(".jsonl")]
        olds = {name for name in names if name.endswith(".jsonl.old")}
        for name in mains:
            main = os.path.join(self.directory, name)
            old = main + ".old"
            try:
                stat = os.stat(main)
                main_size, main_inode = stat.st_size, stat.st_ino
            except OSError:
                main_size, main_inode = 0, None
            known_inode = self._inodes.get(main)
            rotated = (
                # The inode changed: the file we were reading is now the
                # ``.old`` generation, even if the fresh main has already
                # grown past our stored offset (a size-only check misses
                # that and would resume mid-line in the wrong file).
                (known_inode is not None and main_inode != known_inode)
                or main_size < self._offsets.get(main, 0)
            )
            if main_inode is not None:
                self._inodes[main] = main_inode
            if rotated and main in self._offsets:
                # Everything we had consumed of the old main is now the
                # head of the fresh ``.old`` generation (an unread tail of
                # the *previous* ``.old`` is gone -- rotation keeps
                # exactly one generation).
                self._offsets[old] = self._offsets.pop(main)
            if os.path.basename(old) in olds:
                self._read_new(old, events)
                olds.discard(os.path.basename(old))
            self._read_new(main, events)
        for name in olds:  # orphaned .old (writer gone mid-rotation)
            self._read_new(os.path.join(self.directory, name), events)
        events.sort(key=lambda event: (event.at, event.source.get("pid", 0),
                                       event.seq))
        return events


def atomic_write_json(directory: str, filename: str, document: dict) -> None:
    """Atomically replace ``directory/filename`` with one JSON document.

    Write-to-temp + ``os.replace``: readers never see a torn file.  The
    shared primitive behind the sharding metrics exchange and the QoS
    coordination channel.
    """
    import tempfile

    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=directory,
        prefix=f".{filename}.",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        json.dump(document, handle)
        handle.close()
        os.replace(handle.name, os.path.join(directory, filename))
    except BaseException:  # pragma: no cover - directory torn down
        handle.close()
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this machine."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's pid
        return True
    except OSError:  # pragma: no cover - non-POSIX
        return False
    return True


class TelemetryBus:
    """The process-local event bus: subscribers + an optional spool sink.

    ``publish`` is the single hot-path entry: with no subscriber and no
    spool attached it returns after one boolean check, so permanently
    instrumented code (the serving batch path, sweep point evaluation) is
    free unless something actually listens.
    """

    def __init__(self, role: str = "proc"):
        self._lock = threading.Lock()
        self._subscribers: list = []  # Subscriptions and bare callables
        self._spool: EventSpool | None = None
        self._source = {"pid": os.getpid(), "role": role}
        self._seq = 0
        self._active = False

    # -- identity ----------------------------------------------------------
    def configure_source(self, role: str | None = None, **fields) -> None:
        """Set the identity stamped on every published event."""
        with self._lock:
            source = dict(self._source)
            if role is not None:
                source["role"] = role
            source.update(
                {key: value for key, value in fields.items() if value is not None}
            )
            source["pid"] = os.getpid()
            self._source = source

    @property
    def source(self) -> dict:
        return dict(self._source)

    # -- wiring ------------------------------------------------------------
    def subscribe(self, callback=None, *, types=None, maxlen: int = 256):
        """Register a consumer.

        With ``callback`` the callable runs inline on the publisher's
        thread (keep it cheap and never raise); without one, a bounded
        :class:`Subscription` queue is returned.
        """
        with self._lock:
            if callback is not None:
                self._subscribers.append(callback)
                self._active = True
                return callback
            subscription = Subscription(self, types=types, maxlen=maxlen)
            self._subscribers.append(subscription)
            self._active = True
            return subscription

    def unsubscribe(self, consumer) -> None:
        with self._lock:
            try:
                self._subscribers.remove(consumer)
            except ValueError:
                pass
            self._active = bool(self._subscribers or self._spool)

    def attach_spool(
        self, directory: str, role: str | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        budget=None,
    ) -> EventSpool:
        """Mirror every published event into ``directory`` (cross-process).

        ``budget`` (a :class:`repro.utils.diskbudget.DiskBudget`) bounds
        the spool directory: over-quota events drop with a counter.
        """
        with self._lock:
            if self._spool is not None:
                self._spool.close()
            self._spool = EventSpool(
                directory,
                role=role or self._source.get("role", "events"),
                rotate_bytes=rotate_bytes,
                budget=budget,
            )
            self._active = True
            return self._spool

    def detach_spool(self) -> None:
        with self._lock:
            if self._spool is not None:
                self._spool.close()
                self._spool = None
            self._active = bool(self._subscribers)

    @property
    def spool_dir(self) -> str | None:
        spool = self._spool
        return spool.directory if spool is not None else None

    @property
    def spool_path(self) -> str | None:
        """This process's own spool file (relays skip it when following)."""
        spool = self._spool
        return spool.path if spool is not None else None

    def spool_stats(self) -> dict | None:
        """The attached spool's degrade counters (``None`` without one)."""
        spool = self._spool
        return spool.stats() if spool is not None else None

    def reset_after_fork(self, role: str | None = None, **fields) -> None:
        """Drop inherited subscribers; keep (and re-home) the spool sink.

        A forked worker inherits the parent's subscriber list -- callbacks
        that belong to the parent's dashboard/ticker threads and must not
        run in the child.  The spool sink stays attached: its per-pid file
        is lazily reopened on the first append after the fork.

        The inherited bus/spool locks may be held by parent threads that
        were mid-publish at fork time and do not exist in the child; the
        child is single-threaded here, so both locks are replaced rather
        than acquired.
        """
        self._lock = threading.Lock()
        with self._lock:
            self._subscribers = []
            self._seq = 0
            if self._spool is not None:
                self._spool.rearm_after_fork()
            self._active = self._spool is not None
        self.configure_source(role=role, **fields)

    # -- publishing --------------------------------------------------------
    def publish(self, type: str, **data) -> Event | None:
        """Publish one event; returns it (or ``None`` when nobody listens)."""
        if not self._active:
            return None
        with self._lock:
            self._seq += 1
            event = Event(
                type=type,
                at=time.time(),
                source=self._source,
                seq=self._seq,
                data=data,
            )
            subscribers = list(self._subscribers)
            spool = self._spool
        for subscriber in subscribers:
            try:
                if isinstance(subscriber, Subscription):
                    subscriber._offer(event)
                else:
                    subscriber(event)
            except Exception:  # noqa: BLE001 - consumers never break publishers
                pass
        if spool is not None:
            try:
                spool.append(event)
            except (OSError, ValueError):
                # Spool dir torn down (or its handle invalidated mid-
                # shutdown); telemetry is best-effort, never fatal.
                pass
        return event

    def forward(self, event: Event) -> None:
        """Deliver an *existing* event to subscribers (no restamp, no spool).

        Relays (the dashboard servers) use this to fan followed spool
        events out to their SSE subscriptions without re-publishing them
        as their own.
        """
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                if isinstance(subscriber, Subscription):
                    subscriber._offer(event)
                else:
                    subscriber(event)
            except Exception:  # noqa: BLE001
                pass

    @property
    def active(self) -> bool:
        return self._active


#: The default process bus (like the root logger: deep layers publish here
#: without threading a handle through every constructor).
_DEFAULT_BUS = TelemetryBus()


def get_bus() -> TelemetryBus:
    return _DEFAULT_BUS


def publish(type: str, **data) -> Event | None:
    """Publish on the default bus (the usual instrumentation entry point)."""
    return _DEFAULT_BUS.publish(type, **data)
