"""Process-local pub/sub event bus with a cross-process JSONL spool.

The bus is the single publication point for everything observable in the
repo: sweep points starting/finishing, worker lifecycle, served batches,
QoS rung transitions, shed requests, replica respawns.  Publishers call
:func:`publish` (or ``get_bus().publish``) with a type string and JSON-able
fields; the hot path is a single attribute check when nothing listens, so
instrumented code costs nothing in the common un-observed case.

In-process consumers subscribe either a callback or a bounded
:class:`Subscription` queue (oldest events are evicted when a slow consumer
falls behind -- telemetry must never apply backpressure to the serving or
sweep hot paths).

Cross-process transport lives in the cluster substrate
(:mod:`repro.cluster.spool`): each process appends events to its own
``<role>-<pid>.jsonl`` file in a shared spool directory via a
:class:`~repro.cluster.spool.SpoolWriter` (append-only, one JSON document
per line, atomic size-based rotation, per-writer monotonic sequence
numbers), and a :class:`~repro.cluster.spool.SpoolFollower` tails every
file in the directory -- so forked sweep workers, ``SO_REUSEPORT``
shards, and processes on *other machines* (appending through a
:class:`~repro.cluster.transport.RemoteSpoolWriter`) publish into one
merged stream without locks or pipes.  Writers are fork-safe: the spool
sink lazily reopens a fresh per-pid file when it notices it crossed a
``fork()``, and :meth:`TelemetryBus.reset_after_fork` drops subscribers
inherited from the parent (a worker must not run the parent's dashboard
callbacks).

``Event``, ``EventSpool`` (now :class:`~repro.cluster.spool.SpoolWriter`),
``SpoolFollower``, ``atomic_write_json`` and ``pid_alive`` are re-exported
here for compatibility: this module is where every pre-cluster caller
imported them from.
"""

from __future__ import annotations

import collections
import os
import threading
import time

from repro.cluster.documents import atomic_write_json, pid_alive  # noqa: F401
from repro.cluster.spool import (  # noqa: F401
    DEFAULT_ROTATE_BYTES,
    Event,
    SpoolFollower,
    SpoolWriter,
)

#: Compatibility alias: the writer moved under the cluster substrate.
EventSpool = SpoolWriter


class Subscription:
    """Bounded, thread-safe event queue handed to one in-process consumer.

    When the buffer is full the *oldest* event is evicted: a stalled
    dashboard connection loses history, never slows a publisher.
    """

    def __init__(self, bus: "TelemetryBus", types=None, maxlen: int = 256):
        self._bus = bus
        self.types = frozenset(types) if types else None
        self._buffer: collections.deque[Event] = collections.deque(
            maxlen=max(1, int(maxlen))
        )
        self._condition = threading.Condition()
        self.dropped = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        if self.types is not None and event.type not in self.types:
            return
        with self._condition:
            if len(self._buffer) == self._buffer.maxlen:
                self.dropped += 1
            self._buffer.append(event)
            self._condition.notify()

    def get(self, timeout: float | None = None) -> Event | None:
        """Next event, or ``None`` on timeout / after :meth:`close`."""
        with self._condition:
            if not self._buffer and not self.closed:
                self._condition.wait(timeout)
            if self._buffer:
                return self._buffer.popleft()
            return None

    def drain(self) -> list[Event]:
        """Every buffered event, without blocking."""
        with self._condition:
            events = list(self._buffer)
            self._buffer.clear()
            return events

    def close(self) -> None:
        self._bus.unsubscribe(self)
        with self._condition:
            self.closed = True
            self._condition.notify_all()

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TelemetryBus:
    """The process-local event bus: subscribers + an optional spool sink.

    ``publish`` is the single hot-path entry: with no subscriber and no
    spool attached it returns after one boolean check, so permanently
    instrumented code (the serving batch path, sweep point evaluation) is
    free unless something actually listens.
    """

    def __init__(self, role: str = "proc"):
        self._lock = threading.Lock()
        self._subscribers: list = []  # Subscriptions and bare callables
        self._spool: SpoolWriter | None = None
        self._source = {"pid": os.getpid(), "role": role}
        self._seq = 0
        self._active = False

    # -- identity ----------------------------------------------------------
    def configure_source(self, role: str | None = None, **fields) -> None:
        """Set the identity stamped on every published event."""
        with self._lock:
            source = dict(self._source)
            if role is not None:
                source["role"] = role
            source.update(
                {key: value for key, value in fields.items() if value is not None}
            )
            source["pid"] = os.getpid()
            self._source = source

    @property
    def source(self) -> dict:
        return dict(self._source)

    # -- wiring ------------------------------------------------------------
    def subscribe(self, callback=None, *, types=None, maxlen: int = 256):
        """Register a consumer.

        With ``callback`` the callable runs inline on the publisher's
        thread (keep it cheap and never raise); without one, a bounded
        :class:`Subscription` queue is returned.
        """
        with self._lock:
            if callback is not None:
                self._subscribers.append(callback)
                self._active = True
                return callback
            subscription = Subscription(self, types=types, maxlen=maxlen)
            self._subscribers.append(subscription)
            self._active = True
            return subscription

    def unsubscribe(self, consumer) -> None:
        with self._lock:
            try:
                self._subscribers.remove(consumer)
            except ValueError:
                pass
            self._active = bool(self._subscribers or self._spool)

    def attach_spool(
        self, directory: str, role: str | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        budget=None,
    ) -> SpoolWriter:
        """Mirror every published event into ``directory`` (cross-process).

        ``budget`` (a :class:`repro.utils.diskbudget.DiskBudget`) bounds
        the spool directory: over-quota events drop with a counter.
        """
        return self.attach_spool_sink(
            SpoolWriter(
                directory,
                role=role or self._source.get("role", "events"),
                rotate_bytes=rotate_bytes,
                budget=budget,
            )
        )

    def attach_spool_sink(self, sink):
        """Attach an already-built spool sink (cross-*machine* included).

        Anything satisfying the :class:`~repro.cluster.spool.SpoolWriter`
        sink interface works -- notably a
        :class:`~repro.cluster.transport.RemoteSpoolWriter`, which is how
        a remote sweep executor or federated shard streams its events
        into the hub's spool directory.
        """
        with self._lock:
            if self._spool is not None:
                self._spool.close()
            self._spool = sink
            self._active = True
            return self._spool

    def detach_spool(self) -> None:
        with self._lock:
            if self._spool is not None:
                self._spool.close()
                self._spool = None
            self._active = bool(self._subscribers)

    @property
    def spool_dir(self) -> str | None:
        spool = self._spool
        return spool.directory if spool is not None else None

    @property
    def spool_path(self) -> str | None:
        """This process's own spool file (relays skip it when following)."""
        spool = self._spool
        return spool.path if spool is not None else None

    def spool_stats(self) -> dict | None:
        """The attached spool's degrade counters (``None`` without one)."""
        spool = self._spool
        return spool.stats() if spool is not None else None

    def reset_after_fork(self, role: str | None = None, **fields) -> None:
        """Drop inherited subscribers; keep (and re-home) the spool sink.

        A forked worker inherits the parent's subscriber list -- callbacks
        that belong to the parent's dashboard/ticker threads and must not
        run in the child.  The spool sink stays attached: its per-pid file
        is lazily reopened on the first append after the fork.

        The inherited bus/spool locks may be held by parent threads that
        were mid-publish at fork time and do not exist in the child; the
        child is single-threaded here, so both locks are replaced rather
        than acquired.
        """
        self._lock = threading.Lock()
        with self._lock:
            self._subscribers = []
            self._seq = 0
            if self._spool is not None:
                self._spool.rearm_after_fork()
            self._active = self._spool is not None
        self.configure_source(role=role, **fields)

    # -- publishing --------------------------------------------------------
    def publish(self, type: str, **data) -> Event | None:
        """Publish one event; returns it (or ``None`` when nobody listens)."""
        if not self._active:
            return None
        with self._lock:
            self._seq += 1
            event = Event(
                type=type,
                at=time.time(),
                source=self._source,
                seq=self._seq,
                data=data,
            )
            subscribers = list(self._subscribers)
            spool = self._spool
        for subscriber in subscribers:
            try:
                if isinstance(subscriber, Subscription):
                    subscriber._offer(event)
                else:
                    subscriber(event)
            except Exception:  # noqa: BLE001 - consumers never break publishers
                pass
        if spool is not None:
            try:
                spool.append(event)
            except (OSError, ValueError):
                # Spool dir torn down (or its handle invalidated mid-
                # shutdown); telemetry is best-effort, never fatal.
                pass
        return event

    def forward(self, event: Event) -> None:
        """Deliver an *existing* event to subscribers (no restamp, no spool).

        Relays (the dashboard servers) use this to fan followed spool
        events out to their SSE subscriptions without re-publishing them
        as their own.
        """
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                if isinstance(subscriber, Subscription):
                    subscriber._offer(event)
                else:
                    subscriber(event)
            except Exception:  # noqa: BLE001
                pass

    @property
    def active(self) -> bool:
        return self._active


#: The default process bus (like the root logger: deep layers publish here
#: without threading a handle through every constructor).
_DEFAULT_BUS = TelemetryBus()


def get_bus() -> TelemetryBus:
    return _DEFAULT_BUS


def publish(type: str, **data) -> Event | None:
    """Publish on the default bus (the usual instrumentation entry point)."""
    return _DEFAULT_BUS.publish(type, **data)
