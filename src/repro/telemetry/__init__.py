"""Live observability for the reproduction's sweep and serving stacks.

The subsystem has four layers:

* :mod:`repro.telemetry.bus` -- a process-local pub/sub event bus with
  typed events and an append-only JSONL *spool* transport, so forked
  sweep workers and ``SO_REUSEPORT`` front-end shards publish into one
  merged stream.
* :mod:`repro.telemetry.timeseries` -- bounded ring-buffer series with
  windowed aggregation plus per-endpoint operating-point *timelines*
  (rung versus wall clock, annotated with the pressure that drove each
  transition), and the :class:`~repro.telemetry.timeseries.TelemetryAggregator`
  folding a raw event stream into a dashboard-ready snapshot.
* :mod:`repro.telemetry.dashboard` -- an SSE ``/v1/events`` stream and a
  zero-dependency single-file HTML dashboard (``/dashboard``), plus the
  standalone ``repro.cli dash`` server that follows a spool directory.
* :mod:`repro.telemetry.coordinator` -- cross-shard QoS coordination:
  every shard publishes its locally-desired ladder rung and all shards
  follow one deterministic service-wide recommendation.
"""

from repro.telemetry.bus import Event, TelemetryBus, get_bus, publish

__all__ = ["Event", "TelemetryBus", "get_bus", "publish"]
