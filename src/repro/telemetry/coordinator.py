"""Cross-shard QoS coordination: one coherent service-wide ladder rung.

Without coordination each ``SO_REUSEPORT`` front-end shard walks its own
operating-point ladder from its own load signal; under skewed or bursty
load the shards flap independently and clients see a mix of rungs (and so
a mix of accuracies) for the same endpoint at the same instant.

The coordinator is deliberately *leaderless*, reusing the crash-tolerant
atomic-rename spool pattern of the metrics exchange: every shard
periodically publishes its **locally desired** rung (what its hysteretic
:class:`~repro.serve.qos.QoSController` would do on its own) plus its
pressure into ``qos-shard-<i>.json``, and every shard deterministically
computes the same service-wide recommendation from the same gathered
state -- no election, no extra process, and a crashed shard (dead pid or
stale file) simply drops out of the quorum.

The recommendation is the **maximum** desired rung over the live,
non-held shards: one overloaded shard degrades the whole service together
(coherent quality, and the kernel's connection balancing means its load is
everyone's load within a round-trip), while recovery happens only when
*every* shard's local controller wants it -- which is exactly the no-flap
property: a single calm shard can never drag the service up while a busy
peer still sheds.

Shards follow the recommendation unless an operator ``force``/``hold`` is
set (:meth:`repro.serve.qos.EndpointGovernor.force`): a held shard keeps
its pinned rung, publishes ``held`` so peers exclude it from the quorum,
and resumes following on release.
"""

from __future__ import annotations

import os
import threading
import time

from repro.cluster.documents import (
    QOS_STALE_AFTER_S,
    DocumentStore,
    local_host,
    publisher_alive,
)
from repro.telemetry import bus as telemetry_bus

#: Compatibility alias: the staleness horizon moved to the cluster
#: substrate (:mod:`repro.cluster.documents`).
STALE_AFTER_S = QOS_STALE_AFTER_S


class ShardStateChannel:
    """Atomic-rename publish/gather of per-shard QoS state documents.

    The channel is a thin client of the cluster substrate: documents live
    in a :class:`~repro.cluster.documents.DocumentStore`, which defaults
    to the shared local directory (bit-compatible with the pre-cluster
    layout) but may be a socket-backed store -- shards on *different
    machines* then join one QoS quorum through a hub agent.  Liveness is
    the generalized rule: a fresh heartbeat, plus a live pid when the
    publisher runs on this host (a remote publisher's pid is unprobeable;
    staleness alone evicts it).
    """

    def __init__(
        self,
        directory: str | None,
        shard_index: int,
        shard_count: int,
        store: DocumentStore | None = None,
    ):
        if store is None:
            if directory is None:
                raise ValueError("ShardStateChannel needs a directory or store")
            os.makedirs(str(directory), exist_ok=True)
            store = DocumentStore.for_directory(str(directory))
        self.store = store
        self.directory = str(directory) if directory is not None else None
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)

    @property
    def corrupt_documents(self) -> int:
        """Documents that failed to parse or were structurally invalid --
        a corrupt peer file must drop out of the quorum, never crash the
        QoS tick."""
        return self.store.corrupt_documents

    def _name(self, index: int) -> str:
        return f"qos-shard-{index}.json"

    def publish(self, endpoints: dict) -> None:
        """Atomically replace this shard's state document."""
        self.store.put(
            self._name(self.shard_index),
            {
                "shard": self.shard_index,
                "pid": os.getpid(),
                "host": local_host(),
                "published_at": time.time(),
                "endpoints": endpoints,
            },
        )

    def gather(self, stale_after_s: float = STALE_AFTER_S) -> dict[int, dict]:
        """Fresh, live shard documents by shard index (including our own)."""
        states: dict[int, dict] = {}
        now = time.time()
        for index in range(self.shard_count):
            document = self.store.get(self._name(index))
            if document is None:
                continue
            if not isinstance(document.get("endpoints"), dict):
                self.store.note_corrupt()
                continue
            try:
                float(document.get("published_at", 0.0))
                int(document.get("pid", 0) or 0)
            except (TypeError, ValueError):
                self.store.note_corrupt()
                continue
            if index == self.shard_index:
                # Our own document never fails its own pid probe; only
                # freshness applies (a wedged tick must not self-evict).
                if now - float(document.get("published_at", 0.0)) > stale_after_s:
                    continue
            elif not publisher_alive(document, stale_after_s, now=now):
                continue
            states[index] = document
        return states


def recommend_level(
    shard_states: dict[int, dict], endpoint: str, num_levels: int
) -> tuple[int | None, dict[int, int]]:
    """The service-wide rung for ``endpoint`` given gathered shard states.

    Returns ``(level, desired_by_shard)``; ``level`` is ``None`` when no
    live shard reports the endpoint (nothing to coordinate).  Held shards
    contribute their pin to ``desired_by_shard`` (visibility) but not to
    the recommendation.
    """
    desired_by_shard: dict[int, int] = {}
    quorum: list[int] = []
    for index, document in sorted(shard_states.items()):
        entry = document.get("endpoints", {}).get(endpoint)
        if not isinstance(entry, dict):
            continue
        try:
            desired = int(entry.get("desired", 0))
        except (TypeError, ValueError):
            continue
        desired_by_shard[index] = desired
        if not entry.get("held", False):
            quorum.append(desired)
    if not quorum:
        return None, desired_by_shard
    level = max(0, min(num_levels - 1, max(quorum)))
    return level, desired_by_shard


class QoSCoordinator:
    """One shard's view of the service-wide QoS quorum.

    The server's QoS tick calls :meth:`update` per endpoint with the local
    controller's desire; the coordinator batches the endpoint states into
    one published document per tick (:meth:`flush`) and answers
    :meth:`recommendation` from the latest gather.  A changed
    recommendation publishes a ``coordinator_recommendation`` telemetry
    event (the dashboard's coordination panel).
    """

    def __init__(
        self,
        channel: ShardStateChannel,
        stale_after_s: float = STALE_AFTER_S,
        min_publish_s: float = 0.0,
        gather_cache_s: float = 0.0,
    ):
        """``min_publish_s``/``gather_cache_s`` throttle the channel I/O.

        A sharded server ticks every adaptive endpoint a few times per
        second; without throttling that is one document write plus one
        full gather *per endpoint per tick* (all under the governor's
        decide lock).  ``min_publish_s`` skips a flush whose state is
        unchanged and recent; ``gather_cache_s`` reuses one gathered
        snapshot across the endpoints of a tick.  Both default to 0
        (always fresh), which the deterministic tests rely on.
        """
        self.channel = channel
        self.stale_after_s = float(stale_after_s)
        self.min_publish_s = float(min_publish_s)
        self.gather_cache_s = float(gather_cache_s)
        self._lock = threading.Lock()
        self._local: dict[str, dict] = {}
        self._last_recommendation: dict[str, int] = {}
        self._last_published: dict[str, dict] | None = None
        self._last_published_at = float("-inf")
        self._gathered: dict[int, dict] | None = None
        self._gathered_at = float("-inf")

    @property
    def shard_index(self) -> int:
        return self.channel.shard_index

    def update(
        self,
        endpoint: str,
        desired: int,
        applied: int,
        pressure: float = 0.0,
        held: bool = False,
    ) -> None:
        """Record this shard's current state for one endpoint."""
        with self._lock:
            self._local[endpoint] = {
                "desired": int(desired),
                "applied": int(applied),
                "pressure": float(pressure),
                "held": bool(held),
            }

    def flush(self) -> None:
        """Publish the batched local state (one atomic document).

        Skipped when the state is unchanged and the last publish is more
        recent than ``min_publish_s`` -- but an *unchanged* document must
        still republish before it would go stale, or peers would drop
        this shard from the quorum.
        """
        now = time.time()
        with self._lock:
            endpoints = {
                name: dict(entry) for name, entry in self._local.items()
            }
            if (
                endpoints == self._last_published
                and now - self._last_published_at < self.min_publish_s
            ):
                return
            self._last_published = endpoints
            self._last_published_at = now
        try:
            self.channel.publish(endpoints)
        except OSError:  # pragma: no cover - channel dir torn down
            pass

    def _gather(self) -> dict[int, dict]:
        now = time.time()
        with self._lock:
            if (
                self._gathered is not None
                and now - self._gathered_at < self.gather_cache_s
            ):
                return self._gathered
        states = self.channel.gather(self.stale_after_s)
        with self._lock:
            self._gathered = states
            self._gathered_at = now
        return states

    def recommendation(self, endpoint: str, num_levels: int) -> int | None:
        """The rung this shard should serve ``endpoint`` at (None = alone).

        ``None`` means no quorum exists (no live peer state, e.g. during
        startup) and the caller should fall back to its local controller.
        """
        states = self._gather()
        level, desired_by_shard = recommend_level(states, endpoint, num_levels)
        if level is None:
            return None
        with self._lock:
            changed = self._last_recommendation.get(endpoint) != level
            self._last_recommendation[endpoint] = level
        if changed:
            telemetry_bus.publish(
                "coordinator_recommendation",
                endpoint=endpoint,
                level=level,
                shard_levels={
                    str(index): desired
                    for index, desired in sorted(desired_by_shard.items())
                },
                reason=f"max desired rung over {len(desired_by_shard)} shard(s)",
            )
        return level

    def snapshot(self) -> dict:
        """JSON-able view (the operating-point route's coordinator block)."""
        states = self.channel.gather(self.stale_after_s)
        endpoints: dict[str, dict] = {}
        for index, document in sorted(states.items()):
            for name, entry in document.get("endpoints", {}).items():
                endpoints.setdefault(name, {})[str(index)] = entry
        with self._lock:
            recommendations = dict(self._last_recommendation)
        return {
            "shard": self.channel.shard_index,
            "shard_count": self.channel.shard_count,
            "live_shards": sorted(states),
            "endpoints": endpoints,
            "recommendations": recommendations,
        }
