"""Alert engine: declarative rules over the telemetry bus, with history.

The bus (PR 5) streams every health signal -- ``endpoint_health``,
``rung_transition``, shed counters, replica failures -- but nothing ever
*decides* anything from the stream.  This module closes that gap:

* :class:`AlertRule` -- one declarative rule: threshold + hysteresis
  (separate fire/clear thresholds with a dead band in between) + minimum
  duration + cooldown, evaluated per **dedup key** (e.g. per endpoint).
  The state machine deliberately mirrors the QoS controller's
  dead-band/sustain idiom (:mod:`repro.serve.qos`), including the
  injectable clock that makes tests deterministic.
* :class:`AlertEngine` -- consumes bus events, walks each ``(rule, key)``
  state machine, and publishes the full alert lifecycle back onto the
  bus as ``alert_fired`` / ``alert_resolved`` events -- so every existing
  transport (SSE stream, spool, dashboard, followers) carries alerts for
  free.  Extra sinks (webhook, CLI printers) attach as callables.
* :class:`WebhookSink` -- POSTs each alert to an HTTP endpoint from a
  background thread with the retrying client's
  :class:`~repro.serve.client.RetryPolicy` backoff (never blocks the
  publishing path; drops-and-counts when the queue overflows).
* :class:`AlertHistoryStore` -- ring-file persistence of
  ``endpoint_health`` / ``rung_transition`` / alert events (a
  size-rotated :class:`~repro.cluster.spool.SpoolWriter`) plus a small
  state document (:class:`~repro.cluster.documents.DocumentStore`), so
  post-restart timelines and alert history survive.  :meth:`load`
  replays the surviving window and compacts dead writers' files back
  into the live ring.

Synthetic probes (self-test requests per endpoint) are scheduled by the
server (:mod:`repro.serve.server`); their ``probe_result`` events feed
the same rules via :func:`probe_rule`.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass

from repro.cluster.documents import DocumentStore, pid_alive
from repro.telemetry.bus import Event, SpoolFollower, SpoolWriter

#: Alert lifecycle event types (published on the bus; the engine never
#: evaluates rules over them -- see :meth:`AlertEngine.consume`).
ALERT_EVENT_TYPES = frozenset({"alert_fired", "alert_resolved"})

#: Event types the history ring persists by default: enough to rebuild
#: the operating timelines and the alert timeline after a restart.
HISTORY_EVENT_TYPES = frozenset(
    {"endpoint_health", "rung_transition", "probe_result"} | ALERT_EVENT_TYPES
)

#: Ring-file rotation size.  Deliberately small: the history ring is a
#: bounded post-restart window, not an archive (at the 1s health tick
#: this holds tens of minutes per generation).
HISTORY_ROTATE_BYTES = 512 * 1024

#: Name of the engine-state document inside the history directory.
STATE_DOCUMENT = "alerts-state.json"

#: Name of the silence-window document inside the history directory.
#: Kept separate from the engine state so `repro.cli alerts --silence`
#: (a different process) and the live engine never clobber each other's
#: writes: the CLI touches only this document, the engine re-reads it.
SILENCE_DOCUMENT = "alerts-silences.json"


def _lookup(data: dict, path: str):
    """Resolve a (possibly dotted) field path inside an event payload."""
    value = data
    for part in path.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
        if value is None:
            return None
    return value


def _as_float(value) -> float | None:
    """Coerce a payload value to float (bools count 0/1); None if not numeric."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


@dataclass(frozen=True)
class AlertRule:
    """One declarative alerting rule, evaluated per dedup key.

    The rule watches ``field`` (a dotted path into the payload of
    ``event_type`` events, optionally divided by ``divide_by`` -- e.g.
    p99 over the latency budget) and fires once the breach condition has
    held for ``for_s`` continuous seconds.  ``clear_threshold`` opens a
    hysteresis dead band: values between the two thresholds advance
    *neither* the fire nor the resolve streak (the QoS dead-band rule).
    After any fire/resolve transition, ``cooldown_s`` must elapse before
    the next one -- a flapping signal cannot re-fire inside the cooldown.
    """

    name: str
    event_type: str = "endpoint_health"
    field: str = "pressure"
    threshold: float = 0.0
    #: Fire when the value is <= threshold instead of >= threshold.
    below: bool = False
    #: Hysteresis: the condition only counts as *clear* past this value
    #: (default: the threshold itself -- no dead band).
    clear_threshold: float | None = None
    #: Seconds the breach must hold continuously before firing.
    for_s: float = 0.0
    #: Seconds the clear condition must hold continuously before resolving.
    clear_for_s: float = 0.0
    #: Seconds after any fire/resolve during which no transition fires.
    cooldown_s: float = 0.0
    #: Payload fields forming the dedup key (missing fields stamp "-").
    key_fields: tuple = ("endpoint",)
    severity: str = "warning"
    #: Optional denominator field: the rule value becomes
    #: ``field / divide_by`` (skipped when the denominator is missing/0).
    divide_by: str | None = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("an alert rule needs a name")
        if self.event_type in ALERT_EVENT_TYPES:
            raise ValueError(
                f"rules may not watch alert lifecycle events ({self.event_type})"
            )
        clear = self.clear_threshold
        if clear is not None:
            if self.below and clear < self.threshold:
                raise ValueError(
                    "below-rule clear_threshold must be >= threshold"
                )
            if not self.below and clear > self.threshold:
                raise ValueError(
                    "above-rule clear_threshold must be <= threshold"
                )

    # -- evaluation --------------------------------------------------------
    def value_of(self, event: Event) -> float | None:
        """The rule's value for one event, or None when not evaluable."""
        value = _as_float(_lookup(event.data, self.field))
        if value is None:
            return None
        if self.divide_by is not None:
            denominator = _as_float(_lookup(event.data, self.divide_by))
            if not denominator:
                return None
            value = value / denominator
        return value

    def key_of(self, event: Event) -> str:
        parts = [str(event.data.get(name, "-")) for name in self.key_fields]
        return "/".join(parts) if parts else "-"

    def breached(self, value: float) -> bool:
        return value <= self.threshold if self.below else value >= self.threshold

    def cleared(self, value: float) -> bool:
        clear = (
            self.threshold if self.clear_threshold is None
            else self.clear_threshold
        )
        return value > clear if self.below else value < clear

    def describe(self) -> dict:
        return {
            "name": self.name,
            "event_type": self.event_type,
            "field": self.field,
            "threshold": self.threshold,
            "below": self.below,
            "clear_threshold": self.clear_threshold,
            "for_s": self.for_s,
            "clear_for_s": self.clear_for_s,
            "cooldown_s": self.cooldown_s,
            "key_fields": list(self.key_fields),
            "severity": self.severity,
            "divide_by": self.divide_by,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "AlertRule":
        """Build a rule from its JSON form (the CLI's ``--rules`` file)."""
        known = {
            "name", "event_type", "field", "threshold", "below",
            "clear_threshold", "for_s", "clear_for_s", "cooldown_s",
            "key_fields", "severity", "divide_by",
        }
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown alert rule fields: {sorted(unknown)}")
        kwargs = dict(document)
        if "key_fields" in kwargs:
            kwargs["key_fields"] = tuple(kwargs["key_fields"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SinkRoute:
    """One sink-selection route: which named sinks receive which alerts.

    Routes are checked in declaration order; the first match decides the
    alert's sinks (an empty ``sinks`` tuple means bus-only -- lifecycle
    events still publish, no external sink fires).  An alert matching no
    route goes to every sink, so adding a narrow route for one noisy
    rule never silences the rest.
    """

    #: Rule-name pattern (:mod:`fnmatch` glob; ``*`` matches every rule).
    rule: str = "*"
    #: Only match alerts of this severity (None = any severity).
    severity: str | None = None
    #: Names of the sinks that receive matching alerts ("" tuple = bus-only).
    sinks: tuple = ()

    def matches(self, alert: dict) -> bool:
        from fnmatch import fnmatch

        if not fnmatch(str(alert.get("rule", "")), self.rule):
            return False
        return self.severity is None or alert.get("severity") == self.severity

    def describe(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "sinks": list(self.sinks),
        }

    @classmethod
    def from_dict(cls, document: dict) -> "SinkRoute":
        known = {"rule", "severity", "sinks"}
        unknown = set(document) - known
        if unknown:
            raise ValueError(f"unknown sink route fields: {sorted(unknown)}")
        kwargs = dict(document)
        if "sinks" in kwargs:
            kwargs["sinks"] = tuple(kwargs["sinks"])
        return cls(**kwargs)


class _RuleState:
    """Per ``(rule, key)`` hysteresis state (the QoS sustain/cooldown idiom)."""

    __slots__ = (
        "breach_since", "clear_since", "firing", "fired_at",
        "last_transition_at", "last_value", "fired_count",
    )

    def __init__(self):
        self.breach_since: float | None = None
        self.clear_since: float | None = None
        self.firing = False
        self.fired_at: float | None = None
        self.last_transition_at = float("-inf")
        self.last_value: float | None = None
        self.fired_count = 0

    def observe(self, rule: AlertRule, value: float, now: float) -> str | None:
        """Fold one value in; returns ``"fire"`` / ``"resolve"`` / ``None``."""
        self.last_value = value
        if rule.breached(value):
            self.clear_since = None
            if self.breach_since is None:
                self.breach_since = now
        elif rule.cleared(value):
            self.breach_since = None
            if self.clear_since is None:
                self.clear_since = now
        else:
            # Dead band: neither streak may accumulate across it.
            self.breach_since = None
            self.clear_since = None
            return None
        if now - self.last_transition_at < rule.cooldown_s:
            return None
        if (
            not self.firing
            and self.breach_since is not None
            and now - self.breach_since >= rule.for_s
        ):
            self._transition(now, firing=True)
            return "fire"
        if (
            self.firing
            and self.clear_since is not None
            and now - self.clear_since >= rule.clear_for_s
        ):
            self._transition(now, firing=False)
            return "resolve"
        return None

    def _transition(self, now: float, firing: bool) -> None:
        self.firing = firing
        self.last_transition_at = now
        self.breach_since = None
        self.clear_since = None
        if firing:
            self.fired_at = now
            self.fired_count += 1


def default_rules() -> list[AlertRule]:
    """The rules every server ships with (operator rules add to these)."""
    return [
        # Sustained admission saturation: the endpoint is turning work away
        # (or about to).  Clears only once pressure genuinely relaxes.
        AlertRule(
            name="endpoint_overload",
            field="pressure",
            threshold=0.9,
            clear_threshold=0.5,
            for_s=3.0,
            clear_for_s=5.0,
            cooldown_s=10.0,
            severity="warning",
        ),
        # Recent p99 above the configured latency budget (ratio > 1) --
        # the user-facing SLO breach, whatever rung the ladder is on.
        AlertRule(
            name="latency_budget_breach",
            field="recent_p99_ms",
            divide_by="latency_budget_ms",
            threshold=1.0,
            clear_threshold=0.75,
            for_s=3.0,
            clear_for_s=5.0,
            cooldown_s=10.0,
            severity="critical",
        ),
        # A replica slot that exhausted its respawn budget serves degraded
        # capacity until an operator intervenes: fire immediately.
        AlertRule(
            name="replica_failed",
            field="replicas.failed",
            threshold=1.0,
            # clear is *strictly below* the clear threshold, so 0.5 (not
            # 0.0) is what lets an integer count of zero resolve.
            clear_threshold=0.5,
            for_s=0.0,
            clear_for_s=2.0,
            cooldown_s=5.0,
            severity="critical",
        ),
        # Spool corruption observed by the relay's follower this tick
        # (torn writes, crashed writers).  The delta form resolves once
        # the corruption stops; the cumulative count stays in snapshots.
        AlertRule(
            name="spool_corruption",
            event_type="spool_health",
            field="corrupt_delta",
            threshold=1.0,
            clear_threshold=0.5,
            key_fields=(),
            for_s=0.0,
            clear_for_s=5.0,
            cooldown_s=5.0,
            severity="warning",
        ),
    ]


def probe_rule(interval_s: float) -> AlertRule:
    """Sustained synthetic-probe failure, sized to the probe cadence.

    Fires after ~2.5 consecutive failed probes; a single blip inside an
    otherwise healthy cadence never fires.
    """
    return AlertRule(
        name="probe_failure",
        event_type="probe_result",
        field="failed",
        threshold=1.0,
        clear_threshold=0.5,
        for_s=2.5 * interval_s,
        clear_for_s=1.5 * interval_s,
        cooldown_s=2.0 * interval_s,
        severity="critical",
    )


class AlertEngine:
    """Evaluates rules over bus events; publishes the alert lifecycle.

    The engine is a plain event consumer: hand :meth:`consume` to a bus
    subscription, an :class:`~repro.telemetry.dashboard.EventRelay`
    consumer slot, or a spool-following loop.  Lifecycle events go back
    out through ``publish`` (a bus ``publish`` bound method by default),
    so SSE streams, spools and dashboards carry alerts with no extra
    wiring; additional sinks are callables receiving the alert dict.

    The clock is injectable (monotonic by default) and drives *only* the
    hysteresis arithmetic; the wall-clock ``at`` stamped into alerts is
    the triggering event's, so replayed history renders correctly.
    """

    def __init__(
        self,
        rules=None,
        *,
        publish=None,
        clock=time.monotonic,
        history: int = 256,
        sinks=(),
        store: "AlertHistoryStore | None" = None,
        routes=None,
    ):
        self.rules = list(default_rules() if rules is None else rules)
        self._publish = publish
        self.clock = clock
        self._lock = threading.Lock()
        self._states: dict[tuple[str, str], _RuleState] = {}
        self._history: deque[dict] = deque(maxlen=max(1, int(history)))
        # Sinks are named so routes can select them; a plain iterable
        # (the historical form) auto-names entries -- a WebhookSink gets
        # "webhook", everything else "sink<N>".
        self._sinks: dict[str, object] = {}
        if isinstance(sinks, dict):
            for name, sink in sinks.items():
                self._sinks[str(name)] = sink
        else:
            for index, sink in enumerate(sinks):
                if isinstance(sink, WebhookSink) and "webhook" not in self._sinks:
                    self._sinks["webhook"] = sink
                else:
                    self._sinks[f"sink{index}"] = sink
        self.routes = [
            route if isinstance(route, SinkRoute) else SinkRoute.from_dict(route)
            for route in (routes or [])
        ]
        self._store = store
        #: Silence windows: rule name -> wall-clock deadline.  Wall time
        #: because the window is operator-facing and crosses processes
        #: (`repro.cli alerts --silence` writes it from another process).
        self._silences: dict[str, float] = {}
        self._silences_refreshed = float("-inf")
        self.silenced_total = 0
        self.fired_total = 0
        self.resolved_total = 0
        self._by_type: dict[str, list[AlertRule]] = {}
        names = set()
        for rule in self.rules:
            if rule.name in names:
                raise ValueError(f"duplicate alert rule name: {rule.name}")
            names.add(rule.name)
            self._by_type.setdefault(rule.event_type, []).append(rule)
        if store is not None:
            state = store.load_state()
            if state:
                self.fired_total = int(state.get("fired_total", 0))
                self.resolved_total = int(state.get("resolved_total", 0))
            self._silences = store.load_silences()
            self._silences_refreshed = time.monotonic()

    # -- wiring ------------------------------------------------------------
    def add_sink(self, sink, name: str | None = None) -> None:
        with self._lock:
            if name is None:
                name = f"sink{len(self._sinks)}"
                while name in self._sinks:
                    name += "_"
            self._sinks[str(name)] = sink

    def add_rule(self, rule: AlertRule) -> None:
        with self._lock:
            if any(existing.name == rule.name for existing in self.rules):
                raise ValueError(f"duplicate alert rule name: {rule.name}")
            self.rules.append(rule)
            self._by_type.setdefault(rule.event_type, []).append(rule)

    # -- consumption -------------------------------------------------------
    def consume(self, event: Event) -> list[dict]:
        """Evaluate one event; returns the alerts it fired/resolved.

        Lifecycle events the engine itself published loop straight back
        through relays -- the early type check keeps them (and every
        unwatched type) off the lock entirely, which also makes the
        publish-from-consume recursion trivially safe.
        """
        rules = self._by_type.get(event.type)
        if not rules:
            return []
        emitted: list[dict] = []
        with self._lock:
            now = self.clock()
            for rule in rules:
                value = rule.value_of(event)
                if value is None:
                    continue
                key = rule.key_of(event)
                state = self._states.setdefault((rule.name, key), _RuleState())
                action = state.observe(rule, value, now)
                if action is None:
                    continue
                alert = self._build_alert(rule, key, state, value, event, now)
                if self._is_silenced(rule.name):
                    # The state machine still advances (a silence window
                    # must not replay missed transitions when it lapses),
                    # but nothing is published or sunk.
                    alert["silenced"] = True
                    self.silenced_total += 1
                self._history.append(alert)
                if action == "fire":
                    self.fired_total += 1
                else:
                    self.resolved_total += 1
                emitted.append(alert)
        # Publish/sink outside the lock: publishing re-enters consume()
        # through relays, and sinks are arbitrary user code.
        for alert in emitted:
            if not alert.get("silenced"):
                self._emit(alert, self._sinks_for(alert))
        return emitted

    def _sinks_for(self, alert: dict) -> list:
        """The sinks this alert routes to (first matching route wins)."""
        with self._lock:
            for route in self.routes:
                if route.matches(alert):
                    return [
                        self._sinks[name]
                        for name in route.sinks
                        if name in self._sinks
                    ]
            return list(self._sinks.values())

    # -- silencing ---------------------------------------------------------
    def _is_silenced(self, rule_name: str) -> bool:
        """Silence check (lock held); re-reads the shared document ~1/s."""
        now_mono = time.monotonic()
        if (
            self._store is not None
            and now_mono - self._silences_refreshed >= 1.0
        ):
            self._silences_refreshed = now_mono
            try:
                self._silences = self._store.load_silences()
            except (OSError, ValueError):  # pragma: no cover - dir torn down
                pass
        deadline = self._silences.get(rule_name)
        if deadline is None:
            return False
        if time.time() >= deadline:
            self._silences.pop(rule_name, None)
            return False
        return True

    def silence(self, rule_name: str, duration_s: float) -> float:
        """Silence one rule for ``duration_s`` seconds; returns the deadline.

        Persisted through the history store (when attached), so a CLI
        process silencing a rule reaches every engine sharing the
        directory within its ~1s refresh.
        """
        deadline = time.time() + max(0.0, float(duration_s))
        with self._lock:
            self._silences[str(rule_name)] = deadline
            if self._store is not None:
                self._store.save_silences(self._silences)
        return deadline

    def silences(self) -> dict[str, float]:
        """Active silence windows (rule -> wall deadline), pruned."""
        now = time.time()
        with self._lock:
            self._silences = {
                rule: deadline
                for rule, deadline in self._silences.items()
                if deadline > now
            }
            return dict(self._silences)

    def _build_alert(
        self, rule: AlertRule, key: str, state: _RuleState,
        value: float, event: Event, now: float,
    ) -> dict:
        firing = state.firing
        status = "firing" if firing else "resolved"
        comparison = "<=" if rule.below else ">="
        alert = {
            "rule": rule.name,
            "key": key,
            "status": status,
            "severity": rule.severity,
            "event_type": rule.event_type,
            "field": rule.field,
            "value": value,
            "threshold": rule.threshold,
            "at": event.at,
            "fired_count": state.fired_count,
            "message": (
                f"{rule.name}[{key}] {status}: "
                f"{rule.field}={value:.4g} {comparison} {rule.threshold:.4g}"
                if firing else
                f"{rule.name}[{key}] {status}: {rule.field}={value:.4g}"
            ),
        }
        if not firing and state.fired_at is not None:
            alert["duration_s"] = max(0.0, now - state.fired_at)
        return alert

    def _emit(self, alert: dict, sinks) -> None:
        if self._publish is not None:
            try:
                type = (
                    "alert_fired" if alert["status"] == "firing"
                    else "alert_resolved"
                )
                self._publish(type, **alert)
            except Exception:  # noqa: BLE001 - alerting never breaks consumers
                pass
        for sink in sinks:
            try:
                sink(alert)
            except Exception:  # noqa: BLE001
                pass
        if self._store is not None:
            self._store.save_state(
                {
                    "fired_total": self.fired_total,
                    "resolved_total": self.resolved_total,
                }
            )

    # -- state -------------------------------------------------------------
    def active(self) -> list[dict]:
        """Currently-firing alerts, newest fire first."""
        with self._lock:
            firing = {}
            for alert in self._history:
                identity = (alert["rule"], alert["key"])
                if alert["status"] == "firing":
                    firing[identity] = alert
                else:
                    firing.pop(identity, None)
            return sorted(
                firing.values(), key=lambda alert: -float(alert["at"])
            )

    def history(self) -> list[dict]:
        with self._lock:
            return list(self._history)

    def import_history(self, alerts) -> None:
        """Restore alert history (a restart replaying the ring file).

        Imported alerts extend the timeline without re-publishing or
        re-running sinks; rule hysteresis state starts fresh -- live
        conditions re-earn their streaks within seconds of the restart.
        """
        with self._lock:
            for alert in alerts:
                if isinstance(alert, dict) and {"rule", "key", "status"} <= set(alert):
                    self._history.append(dict(alert))

    def snapshot(self) -> dict:
        active = self.active()
        silences = self.silences()
        with self._lock:
            return {
                "rules": [rule.describe() for rule in self.rules],
                "routes": [route.describe() for route in self.routes],
                "active": active,
                "recent": list(self._history)[-32:],
                "fired_total": self.fired_total,
                "resolved_total": self.resolved_total,
                "silenced_total": self.silenced_total,
                "silences": silences,
            }


class WebhookSink:
    """POSTs alerts to an HTTP endpoint with RetryPolicy backoff.

    Delivery runs on one lazy daemon thread so the publishing path never
    blocks on the network; a bounded queue drops the *oldest* alert when
    the receiver cannot keep up (the bus's eviction contract).
    """

    def __init__(
        self,
        url: str,
        *,
        retry=None,
        timeout_s: float = 3.0,
        maxlen: int = 256,
        sleep=time.sleep,
    ):
        from repro.serve.client import RetryPolicy

        self.url = str(url)
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=3, base_backoff_ms=50.0, max_backoff_ms=2000.0
        )
        self.timeout_s = float(timeout_s)
        self._sleep = sleep
        self._rng = random.Random(0xA1E57)
        self._condition = threading.Condition()
        self._queue: deque[dict] = deque(maxlen=max(1, int(maxlen)))
        self._thread: threading.Thread | None = None
        self._closed = False
        self.delivered = 0
        self.failed = 0
        self.dropped = 0
        self.attempts = 0

    def __call__(self, alert: dict) -> None:
        with self._condition:
            if self._closed:
                return
            if len(self._queue) == self._queue.maxlen:
                self.dropped += 1
            self._queue.append(dict(alert))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="alert-webhook", daemon=True
                )
                self._thread.start()
            self._condition.notify()

    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait(1.0)
                if self._closed and not self._queue:
                    return
                alert = self._queue.popleft()
            self._deliver(alert)

    def _deliver(self, alert: dict) -> None:
        for attempt in range(self.retry.max_retries + 1):
            self.attempts += 1
            try:
                self._post(alert)
                self.delivered += 1
                return
            except (urllib.error.URLError, OSError, ValueError):
                if attempt >= self.retry.max_retries:
                    break
                delay_ms = self.retry.delay_ms(attempt, self._rng)
                self._sleep(delay_ms / 1000.0)
        self.failed += 1

    def _post(self, alert: dict) -> None:
        payload = json.dumps(alert).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
            reply.read()

    def stats(self) -> dict:
        return {
            "url": self.url,
            "delivered": self.delivered,
            "failed": self.failed,
            "dropped": self.dropped,
            "attempts": self.attempts,
        }

    def close(self, timeout: float = 5.0) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)


class AlertHistoryStore:
    """Ring-file persistence for health/alert events + engine state.

    One :class:`SpoolWriter` per process appends the selected event
    types into ``directory`` with a small rotation size -- the "ring":
    disk usage is bounded, the newest window survives.  A tiny state
    document rides alongside (cumulative fire/resolve counters).

    :meth:`load` replays everything still in the ring (merged across
    writers/restarts in skew-proof spool order) and then *compacts*:
    files left by dead writers are folded into this process's fresh ring
    file and deleted, so restarts do not accumulate files forever.
    Files of live writers (peer shards sharing the directory) are left
    alone.
    """

    def __init__(
        self,
        directory: str,
        *,
        role: str = "history",
        rotate_bytes: int = HISTORY_ROTATE_BYTES,
        event_types=HISTORY_EVENT_TYPES,
        budget=None,
    ):
        self.directory = str(directory)
        self.event_types = frozenset(event_types)
        self._writer = SpoolWriter(
            self.directory, role=role, rotate_bytes=rotate_bytes, budget=budget
        )
        self._documents = DocumentStore.for_directory(self.directory)
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def record(self, event: Event) -> None:
        """Bus-subscriber entry point: persist the selected event types."""
        if event.type not in self.event_types:
            return
        try:
            self._writer.append(event)
        except (OSError, ValueError):  # pragma: no cover - dir torn down
            pass

    # -- replay ------------------------------------------------------------
    def load(self, compact: bool = True) -> list[Event]:
        """Replay the ring (merged, oldest first); optionally compact it.

        Compaction folds files abandoned by dead writers into this
        process's own ring file (bounded by its rotation) and unlinks
        them; live peers' files (shards sharing the directory) are left
        alone -- their events replay but are never re-appended, so the
        next restart sees each event exactly once.
        """
        with self._lock:
            own = os.path.basename(self._writer.path)
            follower = SpoolFollower(self.directory)
            events = follower.poll()
            if not compact:
                return events
            dead_pids: set[int] = set()
            for path in list(follower._offsets):
                base = os.path.basename(path).removesuffix(".old")
                if base == own:
                    continue
                pid = self._writer_pid(base)
                if pid is None or pid_alive(pid):
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                dead_pids.add(pid)
            # Re-append the dead writers' window under our own writer so
            # the next restart finds one ring, not a file per past process.
            for event in events:
                if (
                    event.source.get("pid") in dead_pids
                    and event.type in self.event_types
                ):
                    self._writer.append(event)
            return events

    @staticmethod
    def _writer_pid(basename: str) -> int | None:
        """The pid baked into a ``<role>-<pid>.jsonl`` spool basename."""
        stem = basename.removesuffix(".jsonl")
        _, _, pid_text = stem.rpartition("-")
        try:
            return int(pid_text)
        except ValueError:
            return None

    # -- state document ----------------------------------------------------
    def save_state(self, document: dict) -> None:
        try:
            self._documents.put(STATE_DOCUMENT, document)
        except OSError:  # pragma: no cover - dir torn down
            pass

    def load_state(self) -> dict | None:
        return self._documents.get(STATE_DOCUMENT)

    # -- silence document --------------------------------------------------
    def save_silences(self, silences: dict) -> None:
        """Persist silence windows, merged with what is already on disk.

        Merge (max deadline wins) rather than overwrite: the live engine
        and a `repro.cli alerts --silence` process write concurrently,
        and neither may shorten a window the other just extended.
        """
        merged = self.load_silences()
        now = time.time()
        for rule, deadline in silences.items():
            deadline = float(deadline)
            if deadline > now:
                merged[str(rule)] = max(merged.get(str(rule), 0.0), deadline)
        try:
            self._documents.put(SILENCE_DOCUMENT, {"silences": merged})
        except OSError:  # pragma: no cover - dir torn down
            pass

    def load_silences(self) -> dict[str, float]:
        """Unexpired silence windows from the shared document."""
        try:
            document = self._documents.get(SILENCE_DOCUMENT)
        except (OSError, ValueError):
            return {}
        silences = (document or {}).get("silences")
        if not isinstance(silences, dict):
            return {}
        now = time.time()
        result = {}
        for rule, deadline in silences.items():
            value = _as_float(deadline)
            if value is not None and value > now:
                result[str(rule)] = value
        return result

    def stats(self) -> dict:
        return {"writer": self._writer.stats()}

    def close(self) -> None:
        self._writer.close()
