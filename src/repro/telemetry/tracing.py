"""Distributed request tracing: spans from the socket to the systolic array.

A :class:`TraceContext` (trace id + current span id + sampling verdict)
is minted at the serving front door -- honoring an inbound ``X-Trace-Id``
header and echoed on the response -- and threaded through admission, the
dynamic batcher, the engine pool (across the fork boundary: the replica
serializes its engine-compute timing back with the result) and across
machines on cluster frames.  Every finished span publishes as a ``span``
event on the telemetry bus, so the existing fork-safe spools, the SSE
dashboard and the relay/aggregator machinery carry traces for free.

Sampling is *consistent head sampling*: the verdict is a deterministic
hash of the trace id against the sampling rate, so every process and
every machine that sees the same trace id keeps (or drops) the same
trace without coordination.  Unsampled traces are not discarded
outright: their spans sit in a bounded tail-sampling ring, and
:meth:`Tracer.keep` retroactively publishes them when the request turns
out to be interesting (budget breach, expiry, shed, error) -- the
*exemplar* policy, so the p99 meter always has concrete slow traces
behind it.

:class:`TraceStore` persists ``span`` events to a ring file (the PR 9
``AlertHistoryStore`` pattern) for ``repro.cli trace`` offline
inspection; :func:`build_tree` / :func:`render_waterfall` turn a span
list back into the per-trace waterfall.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from collections import OrderedDict

from repro.telemetry.alerts import AlertHistoryStore

#: Request header carrying (and response header echoing) the trace id.
#: Lower-case on the wire contract: the front-end normalizes header
#: names *and values* to lower case, and ids are minted as lower-case
#: hex, so the round trip is loss-free.
TRACE_HEADER = "x-trace-id"

#: Event type every finished span publishes under.
SPAN_EVENT = "span"

#: Ring-file rotation size for :class:`TraceStore` (spans are chattier
#: than alerts, so the ring is larger than the alert history's).
TRACE_ROTATE_BYTES = 1024 * 1024

#: Default head-sampling rate (the served fraction of calm traces).
DEFAULT_SAMPLE_RATE = 0.1


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (lower case, header-safe)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return os.urandom(4).hex()


def sample_decision(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling verdict for ``trace_id`` at ``rate``.

    Hash-based, so every process/machine reaches the same verdict for
    the same id without coordination (an upstream's sampled trace stays
    sampled downstream at equal-or-higher rates).
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8", "replace")) / 0x100000000
    return bucket < rate


class TraceContext:
    """One hop's view of a trace: trace id, parent span id, verdict."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    def child(self, span_id: str) -> "TraceContext":
        """The context below ``span_id`` (for nesting deeper spans)."""
        return TraceContext(self.trace_id, span_id, self.sampled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id}/{self.span_id}"
            f"{' sampled' if self.sampled else ''})"
        )


class Span:
    """An in-flight span; :meth:`finish` publishes (or buffers) it."""

    __slots__ = (
        "_tracer", "context", "span_id", "parent_id", "name",
        "start", "_mono0", "data", "_done",
    )

    def __init__(self, tracer, context, span_id, parent_id, name,
                 start, mono0, data):
        self._tracer = tracer
        self.context = context
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self._mono0 = mono0
        self.data = data
        self._done = False

    def annotate(self, **fields) -> None:
        self.data.update(fields)

    def child_context(self) -> TraceContext:
        """A context whose spans nest under this one."""
        return self.context.child(self.span_id)

    def finish(self, status: str = "ok", **fields) -> dict:
        """End the span now; idempotent (the first finish wins)."""
        if self._done:
            return {}
        self._done = True
        if fields:
            self.data.update(fields)
        duration_s = max(0.0, self._tracer._mono() - self._mono0)
        return self._tracer._finish(
            self.context, self.span_id, self.parent_id, self.name,
            self.start, duration_s, status, self.data,
        )


class Tracer:
    """Mints contexts, records spans, applies the sampling/exemplar policy.

    ``publish`` is the telemetry-bus entry point
    (``bus.publish(type, **data)``).  Spans of sampled traces publish
    immediately; spans of unsampled traces go to a bounded ring
    (``exemplar_traces`` traces x ``max_spans_per_trace`` spans) where
    :meth:`keep` can retroactively publish them -- requests that breach
    their budget, expire, get shed or error are always retained, no
    matter the sampling rate.
    """

    def __init__(self, publish, *, sample_rate: float = DEFAULT_SAMPLE_RATE,
                 exemplar_traces: int = 128, max_spans_per_trace: int = 128,
                 clock=time.monotonic, wall=time.time):
        self._publish = publish
        self.sample_rate = float(sample_rate)
        self.exemplar_traces = int(exemplar_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._mono = clock
        self._wall = wall
        self._lock = threading.Lock()
        self._ring: OrderedDict[str, list[dict]] = OrderedDict()
        self._kept: OrderedDict[str, str] = OrderedDict()
        self.published_spans = 0
        self.buffered_spans = 0
        self.exemplars_kept = 0
        self.dropped_traces = 0

    # -- contexts ----------------------------------------------------------
    def trace(self, trace_id: str | None = None,
              sampled: bool | None = None) -> TraceContext:
        """A root context; honors an inbound id, decides sampling."""
        tid = (trace_id or "").strip().lower() or new_trace_id()
        if sampled is None:
            sampled = sample_decision(tid, self.sample_rate)
        return TraceContext(tid, new_span_id(), sampled)

    # -- spans -------------------------------------------------------------
    def start_span(self, context: TraceContext | None, name: str, *,
                   root: bool = False, **data) -> Span | None:
        """Open a span under ``context`` (its ``span_id`` is the parent).

        ``root=True`` claims the context's own span id with no parent --
        the front door's request span.  Returns ``None`` for a ``None``
        context so call sites stay one-liners when tracing is off.
        """
        if context is None:
            return None
        span_id = context.span_id if root else new_span_id()
        parent_id = None if root else context.span_id
        return Span(self, context, span_id, parent_id, name,
                    self._wall(), self._mono(), dict(data))

    def emit(self, context: TraceContext | None, name: str, *,
             start: float, duration_s: float, parent_id: str | None = None,
             span_id: str | None = None, status: str = "ok", **data) -> dict:
        """Record an externally measured span (queue waits, engine layers).

        ``start`` is wall-clock seconds; ``parent_id`` defaults to the
        context's current span id.
        """
        if context is None:
            return {}
        if parent_id is None:
            parent_id = context.span_id
        return self._finish(
            context, span_id or new_span_id(), parent_id, name,
            start, max(0.0, duration_s), status, dict(data),
        )

    def _finish(self, context, span_id, parent_id, name, start,
                duration_s, status, data) -> dict:
        payload = {
            "trace_id": context.trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start": start,
            "duration_ms": duration_s * 1000.0,
            "status": status,
        }
        for key, value in data.items():
            payload.setdefault(key, value)
        self._record(context.trace_id, context.sampled, payload)
        return payload

    def _record(self, trace_id: str, sampled: bool, payload: dict) -> None:
        if sampled:
            self.published_spans += 1
            self._publish(SPAN_EVENT, **payload)
            return
        with self._lock:
            reason = self._kept.get(trace_id)
            if reason is None:
                bucket = self._ring.get(trace_id)
                if bucket is None:
                    bucket = self._ring[trace_id] = []
                    while len(self._ring) > self.exemplar_traces:
                        _, dropped = self._ring.popitem(last=False)
                        self.dropped_traces += 1
                        self.buffered_spans -= len(dropped)
                else:
                    self._ring.move_to_end(trace_id)
                if len(bucket) < self.max_spans_per_trace:
                    bucket.append(payload)
                    self.buffered_spans += 1
                return
        # Trace already kept as an exemplar: late spans publish directly.
        payload["exemplar"] = reason
        self.published_spans += 1
        self._publish(SPAN_EVENT, **payload)

    # -- exemplar policy ---------------------------------------------------
    def keep(self, context, reason: str) -> int:
        """Retroactively publish an unsampled trace's buffered spans.

        ``context`` is a :class:`TraceContext` or a bare trace id.  The
        id is remembered (bounded), so spans that finish *after* the
        keep decision publish too.  Returns the number of spans flushed.
        Sampled traces are already published -- a no-op.
        """
        trace_id = getattr(context, "trace_id", context)
        if getattr(context, "sampled", False):
            return 0
        with self._lock:
            spans = self._ring.pop(trace_id, [])
            self.buffered_spans -= len(spans)
            if trace_id not in self._kept:
                self._kept[trace_id] = reason
                self.exemplars_kept += 1
                while len(self._kept) > self.exemplar_traces:
                    self._kept.popitem(last=False)
        for payload in spans:
            payload["exemplar"] = reason
            self.published_spans += 1
            self._publish(SPAN_EVENT, **payload)
        return len(spans)

    def discard(self, context) -> int:
        """Drop an unsampled trace's buffer early (it ended calm).

        Optional -- the ring evicts oldest traces anyway -- but the
        front door calls it on clean fast responses to keep the ring
        full of *recent* candidates rather than already-fine history.
        """
        trace_id = getattr(context, "trace_id", context)
        with self._lock:
            spans = self._ring.pop(trace_id, None)
            if spans is None:
                return 0
            self.buffered_spans -= len(spans)
            return len(spans)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "published_spans": self.published_spans,
                "buffered_spans": self.buffered_spans,
                "buffered_traces": len(self._ring),
                "exemplars_kept": self.exemplars_kept,
                "dropped_traces": self.dropped_traces,
            }


class TraceStore(AlertHistoryStore):
    """Ring-file persistence of ``span`` events for offline inspection.

    The :class:`AlertHistoryStore` machinery verbatim -- per-process
    spool writer with size rotation, skew-proof merged replay, dead
    writers' files folded exactly once -- just selecting ``span`` events
    into its own subdirectory (``<telemetry-dir>/traces``).
    """

    def __init__(self, directory: str, *,
                 rotate_bytes: int = TRACE_ROTATE_BYTES, budget=None):
        super().__init__(
            directory,
            role="traces",
            rotate_bytes=rotate_bytes,
            event_types=frozenset({SPAN_EVENT}),
            budget=budget,
        )

    def load_traces(self, compact: bool = True) -> "OrderedDict[str, list[dict]]":
        """Replay the ring into ``{trace_id: [span payloads by start]}``."""
        return group_spans(
            event.data for event in self.load(compact=compact)
        )


# -- span-tree utilities (dashboard waterfall + CLI) -----------------------

def group_spans(payloads) -> "OrderedDict[str, list[dict]]":
    """Group span payloads by trace id (dedup span ids, sort by start)."""
    traces: OrderedDict[str, list[dict]] = OrderedDict()
    seen: set[tuple[str, str]] = set()
    for payload in payloads:
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            continue
        if (trace_id, span_id) in seen:
            continue
        seen.add((trace_id, span_id))
        traces.setdefault(trace_id, []).append(payload)
    for spans in traces.values():
        spans.sort(key=lambda p: (p.get("start", 0.0), p.get("span_id", "")))
    return traces


def summarize_trace(trace_id: str, spans: list[dict]) -> dict:
    """One row of the trace listing (dashboard table / CLI list)."""
    roots = [s for s in spans if not s.get("parent_id")]
    root = roots[0] if roots else (spans[0] if spans else {})
    start = min((s.get("start", 0.0) for s in spans), default=0.0)
    end = max(
        (s.get("start", 0.0) + s.get("duration_ms", 0.0) / 1000.0
         for s in spans),
        default=start,
    )
    exemplar = next(
        (s["exemplar"] for s in spans if s.get("exemplar")), None
    )
    status = "ok"
    if any(s.get("status") not in (None, "ok") for s in spans):
        status = next(
            s["status"] for s in spans if s.get("status") not in (None, "ok")
        )
    return {
        "trace_id": trace_id,
        "start": start,
        "duration_ms": (end - start) * 1000.0,
        "spans": len(spans),
        "root": root.get("name", "?"),
        "endpoint": next(
            (s["endpoint"] for s in spans if s.get("endpoint")), None
        ),
        "status": status,
        "exemplar": exemplar,
    }


def build_tree(spans: list[dict]) -> list[dict]:
    """Nest one trace's spans: ``[{span, children: [...]}, ...]`` roots.

    Spans whose ``parent_id`` is missing from the trace are promoted to
    roots (annotated ``orphan``) instead of vanishing -- a visibly
    broken tree beats a silently pruned one.
    """
    by_id = {s["span_id"]: {"span": s, "children": []} for s in spans}
    roots: list[dict] = []
    for span in spans:
        node = by_id[span["span_id"]]
        parent = span.get("parent_id")
        if parent and parent in by_id and parent != span["span_id"]:
            by_id[parent]["children"].append(node)
        else:
            if parent:
                node["span"] = dict(span, orphan=True)
            roots.append(node)
    def order(nodes):
        nodes.sort(key=lambda n: (n["span"].get("start", 0.0),
                                  n["span"].get("span_id", "")))
        for entry in nodes:
            order(entry["children"])
    order(roots)
    return roots


def render_waterfall(spans: list[dict], width: int = 48) -> list[str]:
    """ASCII waterfall of one trace (the CLI's ``--id`` view)."""
    if not spans:
        return ["(no spans)"]
    t0 = min(s.get("start", 0.0) for s in spans)
    t1 = max(s.get("start", 0.0) + s.get("duration_ms", 0.0) / 1000.0
             for s in spans)
    total = max(t1 - t0, 1e-9)
    lines: list[str] = []

    def walk(node, depth):
        span = node["span"]
        off = max(0.0, span.get("start", 0.0) - t0)
        dur = max(0.0, span.get("duration_ms", 0.0) / 1000.0)
        left = int(round(off / total * width))
        bar = max(1, int(round(dur / total * width)))
        bar = min(bar, width - min(left, width - 1))
        gutter = " " * min(left, width - 1)
        label = "  " * depth + span.get("name", "?")
        suffix = ""
        if span.get("status") not in (None, "ok"):
            suffix += f" !{span['status']}"
        if span.get("exemplar"):
            suffix += f" [exemplar:{span['exemplar']}]"
        if span.get("orphan"):
            suffix += " [orphan]"
        lines.append(
            f"{label:<28.28} |{gutter}{'#' * bar:<{width - len(gutter)}}| "
            f"{span.get('duration_ms', 0.0):8.2f} ms{suffix}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_tree(spans):
        walk(root, 0)
    return lines
