"""Bounded time series, operating-point timelines, and the aggregator.

The dashboard (and the ``repro.cli dash`` server backing it) must answer
"what happened recently" questions from an unbounded event stream with
bounded memory:

* :class:`RingSeries` -- a fixed-capacity ring of ``(at, value)`` samples
  with windowed aggregation (mean/last/sum-rate over the trailing
  ``window_s`` seconds).
* :class:`OperatingTimeline` -- one endpoint's (or one shard's) rung
  versus wall clock: an ordered, monotone, non-overlapping list of
  segments, each annotated with the reason/pressure that drove the
  transition into it.  Bounded: the oldest segments are folded away.
* :func:`merge_latency_payloads` -- exact percentile merges over the
  mergeable geometric-histogram payloads the serving metrics publish
  (bucket counts, not quantile estimates -- the same machinery
  ``/v1/metrics`` uses across shards).
* :class:`TelemetryAggregator` -- folds raw :class:`~repro.telemetry.bus.Event`
  streams into one JSON snapshot: sweep progress (points done/total,
  reuse hits, per-model throughput, ETA) plus per-endpoint serving health
  (throughput, recent p99 vs budget, shed rate, rung timeline per shard).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque

#: Clock seams (monkeypatchable in tests).  Wall time stamps and renders;
#: *every* staleness/window decision with a ``now`` of its own couples it
#: to the monotonic clock so an NTP step can neither mask stale data
#: (step backward) nor evict live publishers (step forward) -- the same
#: clock-robustness contract the spool follower's ``wseq`` clamp gives
#: cross-process merges.
_wall = time.time
_mono = time.monotonic


class RingSeries:
    """Fixed-capacity ``(at, value)`` samples with windowed aggregation.

    Sample stamps are wall-clock (they cross processes), but they are
    clamped **monotone per series** on append -- a publisher whose clock
    steps backward cannot interleave its samples out of order -- and the
    implicit ``now`` of a windowed query is *data-anchored*: the newest
    sample's stamp advanced by the local **monotonic** elapsed time since
    it arrived.  A step of the local wall clock therefore never evicts a
    live window (forward step) nor resurrects an expired one (backward
    step); with no new samples the anchor still advances, so rates decay
    to zero exactly as before.  Queries passing an explicit ``now``
    (tests, event-time snapshots) are untouched.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = max(1, int(capacity))
        self._at = [0.0] * self.capacity
        self._values = [0.0] * self.capacity
        self._next = 0
        self._count = 0
        self._latest_at: float | None = None
        self._latest_mono: float | None = None

    def append(self, value: float, at: float | None = None) -> None:
        at = _wall() if at is None else float(at)
        if self._latest_at is not None and at < self._latest_at:
            at = self._latest_at  # per-series monotone clamp
        self._latest_at = at
        self._latest_mono = _mono()
        self._at[self._next] = at
        self._values[self._next] = float(value)
        self._next = (self._next + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)

    def _effective_now(self) -> float:
        """Wall-clock 'now' estimate immune to local wall-clock steps."""
        if self._latest_at is None or self._latest_mono is None:
            return _wall()
        return self._latest_at + max(0.0, _mono() - self._latest_mono)

    def __len__(self) -> int:
        return self._count

    def samples(self) -> list[tuple[float, float]]:
        """Samples oldest-first (at most ``capacity`` of them)."""
        if self._count < self.capacity:
            indices = range(self._count)
        else:
            indices = (
                (self._next + offset) % self.capacity
                for offset in range(self.capacity)
            )
        return [(self._at[index], self._values[index]) for index in indices]

    def _window(self, window_s: float, now: float | None) -> list[float]:
        horizon = (self._effective_now() if now is None else now) - window_s
        return [value for at, value in self.samples() if at >= horizon]

    def window_mean(self, window_s: float, now: float | None = None) -> float:
        values = self._window(window_s, now)
        return sum(values) / len(values) if values else 0.0

    def window_sum(self, window_s: float, now: float | None = None) -> float:
        return sum(self._window(window_s, now))

    def window_rate(self, window_s: float, now: float | None = None) -> float:
        """Sum over the window divided by the window length (per-second)."""
        if window_s <= 0:
            return 0.0
        return self.window_sum(window_s, now) / window_s

    def last(self) -> float:
        if not self._count:
            return 0.0
        return self._values[(self._next - 1) % self.capacity]


class OperatingTimeline:
    """Rung-vs-wall-clock history of one adaptive endpoint (or shard).

    Segments are half-open ``[since, until)`` intervals; the last segment
    is open (``until is None``).  The timeline is monotone by construction:
    segments never overlap and their start times never decrease --
    out-of-order transitions (a delayed spool read) are clamped to the
    current segment boundary rather than rewriting history.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(2, int(capacity))
        self._segments: list[dict] = []
        self.transitions = 0
        self._latest_at: float | None = None
        self._latest_mono: float | None = None

    @property
    def level(self) -> int | None:
        """The current rung (None before the first observation)."""
        return self._segments[-1]["level"] if self._segments else None

    def observe(
        self,
        level: int,
        at: float | None = None,
        reason: str | None = None,
        pressure: float | None = None,
    ) -> bool:
        """Fold one rung observation in; True when a new segment started."""
        at = _wall() if at is None else float(at)
        if self._latest_at is None or at > self._latest_at:
            self._latest_at = at
        self._latest_mono = _mono()
        if self._segments:
            current = self._segments[-1]
            if current["level"] == int(level):
                return False
            # Monotone: a transition may never predate the open segment.
            at = max(at, current["since"])
            current["until"] = at
        self._segments.append(
            {
                "level": int(level),
                "since": at,
                "until": None,
                "reason": reason,
                "pressure": pressure,
            }
        )
        self.transitions += 1
        if len(self._segments) > self.capacity:
            # Fold the two oldest segments into one (keep total coverage).
            oldest = self._segments.pop(0)
            self._segments[0]["since"] = oldest["since"]
        return True

    def segments(self) -> list[dict]:
        return [dict(segment) for segment in self._segments]

    def level_at(self, at: float) -> int | None:
        """The rung in effect at wall-clock ``at`` (None if before history)."""
        for segment in reversed(self._segments):
            if at >= segment["since"]:
                return segment["level"]
        return None

    def describe(self, horizon_s: float | None = None) -> list[dict]:
        """JSON-able segments, optionally only those overlapping the horizon.

        The horizon anchors to the newest observation advanced by the
        monotonic elapsed time since it arrived (see :class:`RingSeries`):
        a wall-clock step cannot truncate or resurrect the timeline, and
        replayed post-restart history keeps its window relative to the
        data rather than vanishing behind a fresh local clock.
        """
        segments = self.segments()
        if horizon_s is not None:
            if self._latest_at is None or self._latest_mono is None:
                now = _wall()
            else:
                now = self._latest_at + max(0.0, _mono() - self._latest_mono)
            cutoff = now - horizon_s
            segments = [
                segment
                for segment in segments
                if segment["until"] is None or segment["until"] >= cutoff
            ]
        return segments


def merge_latency_payloads(payloads: list[dict]) -> dict:
    """Exact merged quantiles over mergeable histogram payloads.

    The payloads are :meth:`repro.serve.metrics.LatencyHistogram.to_payload`
    documents (bucket counts); merging sums buckets, so the p50/p90/p99 of
    the merged histogram are exactly what one process observing all the
    samples would estimate -- never an average of per-shard percentiles.
    """
    # Imported lazily: repro.serve's package __init__ pulls in the server,
    # which imports the dashboard, which imports this module.
    from repro.serve.metrics import LatencyHistogram

    merged = None
    for payload in payloads:
        if merged is None:
            merged = LatencyHistogram.from_payload(payload)
        else:
            merged.merge_payload(payload)
    if merged is None:
        merged = LatencyHistogram()
    return merged.snapshot()


class _SweepState:
    """Progress of one sweep session as seen through its events."""

    def __init__(self):
        self.total = 0
        self.done = 0
        self.reused = 0
        self.failed = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.per_model: dict[str, dict] = {}
        self.workers: dict[int, dict] = {}
        self.experiment: str | None = None
        self.finish_times = RingSeries(capacity=512)
        #: Point keys already counted: the worker that computed a point and
        #: the parent later collecting it from the store both publish a
        #: ``point_finished``; first event wins (spool merge is
        #: wall-clock-ordered, so the compute event precedes the reuse).
        #: Bounded (insertion-ordered, oldest evicted): duplicates arrive
        #: within one sweep, not a hundred-thousand points later.
        self.seen_keys: "OrderedDict[str, None]" = OrderedDict()
        self.max_seen_keys = 65536

    def snapshot(self, now: float | None = None) -> dict:
        # With no explicit ``now`` the rate window uses the ring's
        # clock-step-robust data-anchored clock, not raw wall time.
        rate = self.finish_times.window_rate(30.0, now)
        now = _wall() if now is None else now
        elapsed = (now - self.started_at) if self.started_at else 0.0
        computed = max(0, self.done - self.reused)
        remaining = max(0, self.total - self.done)
        eta_s = remaining / rate if rate > 0 else None
        return {
            "experiment": self.experiment,
            "total": self.total,
            "done": self.done,
            "reused": self.reused,
            "computed": computed,
            "failed": self.failed,
            "elapsed_s": elapsed,
            "points_per_s": rate,
            "eta_s": eta_s,
            "finished": self.finished_at is not None,
            "per_model": {
                model: dict(entry) for model, entry in self.per_model.items()
            },
            "workers": {
                str(pid): dict(entry) for pid, entry in self.workers.items()
            },
        }


#: A shard whose last ``endpoint_health`` event is older than this is
#: excluded from the live tiles (sums/maxima): a crashed shard must not
#: pin the dashboard's throughput or p99 at its dying values forever --
#: the same double-count class the metrics spool reaps.  Its timeline
#: stays: that is history, not a gauge.  Staleness is measured on the
#: **monotonic** clock from the event's local arrival, never on wall
#: stamps: an NTP step backward must not resurrect a dead shard, and a
#: step forward must not evict every live one.
HEALTH_STALE_S = 10.0


class _EndpointState:
    """Serving health of one endpoint, possibly across several shards."""

    def __init__(self, name: str):
        self.name = name
        self.latency_budget_ms = 0.0
        self.shards: dict[int, dict] = {}
        self.timelines: dict[int, OperatingTimeline] = {}
        self.shed_images = 0
        self.respawns = 0

    def shard_timeline(self, shard: int) -> OperatingTimeline:
        timeline = self.timelines.get(shard)
        if timeline is None:
            timeline = OperatingTimeline()
            self.timelines[shard] = timeline
        return timeline

    def _live_shards(self) -> dict[int, dict]:
        horizon = _mono() - HEALTH_STALE_S
        return {
            index: shard
            for index, shard in self.shards.items()
            if shard.get("seen_mono", float("-inf")) >= horizon
        }

    def snapshot(self) -> dict:
        live = self._live_shards()
        latency_payloads = [
            shard["latency"]
            for shard in live.values()
            if shard.get("latency")
        ]
        shard_levels = {
            str(shard): timeline.level
            for shard, timeline in sorted(self.timelines.items())
        }
        return {
            "name": self.name,
            "latency_budget_ms": self.latency_budget_ms,
            "live_shards": sorted(live),
            "throughput_images_per_s": sum(
                shard.get("throughput", 0.0) for shard in live.values()
            ),
            "recent_p99_ms": max(
                (shard.get("recent_p99_ms", 0.0) for shard in live.values()),
                default=0.0,
            ),
            "pressure": max(
                (shard.get("pressure", 0.0) for shard in live.values()),
                default=0.0,
            ),
            "requests": sum(
                shard.get("requests", 0) for shard in live.values()
            ),
            "images": sum(
                shard.get("images", 0) for shard in live.values()
            ),
            "rejected_images": sum(
                shard.get("rejected_images", 0) for shard in live.values()
            ),
            "goodput_images_per_s": sum(
                shard.get("goodput", 0.0) for shard in live.values()
            ),
            "latency_merged": (
                merge_latency_payloads(latency_payloads)
                if latency_payloads
                else None
            ),
            "shard_levels": shard_levels,
            # Cumulative images shed, folded from the aggregated `shed`
            # events (the health gauge's rejected_images is per-shard and
            # ages out with a dead shard; this one is event-sourced).
            "shed_images": self.shed_images,
            "respawns": self.respawns,
            "timelines": {
                str(shard): timeline.describe(horizon_s=300.0)
                for shard, timeline in sorted(self.timelines.items())
            },
        }


class TelemetryAggregator:
    """Folds raw telemetry events into one dashboard-ready snapshot.

    Feed it events (from an in-process subscription or a spool follower)
    through :meth:`consume`; read the current state with :meth:`snapshot`.
    Thread-safe: the dash server consumes on its follower thread while SSE
    handlers snapshot concurrently.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.sweep = _SweepState()
        self.endpoints: dict[str, _EndpointState] = {}
        self.coordinator: dict[str, dict] = {}
        self.events_seen = 0
        #: Alert lifecycle folded from ``alert_fired`` / ``alert_resolved``
        #: events -- live *and* replayed history render the same timeline.
        self._alerts_active: "OrderedDict[str, dict]" = OrderedDict()
        self._alerts_recent: deque[dict] = deque(maxlen=64)
        self.alerts_fired = 0
        self.alerts_resolved = 0
        #: Span trees folded from ``span`` events, keyed by trace id.
        #: Bounded both ways: oldest trace evicted past ``max_traces``,
        #: and a runaway trace stops accumulating past
        #: ``max_spans_per_trace`` (the count still ticks).
        self._traces: "OrderedDict[str, list[dict]]" = OrderedDict()
        self.max_traces = 64
        self.max_spans_per_trace = 256
        self.spans_seen = 0

    def endpoint(self, name: str) -> _EndpointState:
        state = self.endpoints.get(name)
        if state is None:
            state = _EndpointState(name)
            self.endpoints[name] = state
        return state

    # -- event folding -----------------------------------------------------
    def consume(self, event) -> None:
        handler = getattr(self, f"_on_{event.type}", None)
        with self._lock:
            self.events_seen += 1
            if handler is not None:
                handler(event)

    def consume_all(self, events) -> None:
        for event in events:
            self.consume(event)

    # sweep lifecycle
    def _on_experiment_started(self, event) -> None:
        self.sweep.experiment = event.data.get("name", self.sweep.experiment)

    def _on_sweep_started(self, event) -> None:
        sweep = self.sweep
        if sweep.started_at is None:
            sweep.started_at = event.at
        # A new sweep re-opens the run: without this, experiment 2..N of a
        # multi-experiment session would report "finished" mid-compute.
        sweep.finished_at = None
        sweep.total += int(event.data.get("points", 0))
        sweep.experiment = event.data.get("experiment", sweep.experiment)

    def _on_sweep_finished(self, event) -> None:
        self.sweep.finished_at = event.at

    def _on_point_started(self, event) -> None:
        model = event.data.get("model") or "-"
        entry = self.sweep.per_model.setdefault(
            model, {"done": 0, "reused": 0, "in_flight": 0}
        )
        entry["in_flight"] = entry.get("in_flight", 0) + 1

    def _on_point_finished(self, event) -> None:
        sweep = self.sweep
        key = event.data.get("key")
        if key is not None:
            if key in sweep.seen_keys:
                return
            sweep.seen_keys[key] = None
            while len(sweep.seen_keys) > sweep.max_seen_keys:
                sweep.seen_keys.popitem(last=False)
        sweep.done += 1
        reused = bool(event.data.get("reused", False))
        if reused:
            sweep.reused += 1
        else:
            sweep.finish_times.append(1.0, at=event.at)
        model = event.data.get("model") or "-"
        entry = sweep.per_model.setdefault(
            model, {"done": 0, "reused": 0, "in_flight": 0}
        )
        entry["done"] += 1
        if reused:
            entry["reused"] += 1
        entry["in_flight"] = max(0, entry.get("in_flight", 0) - 1)

    def _on_point_failed(self, event) -> None:
        self.sweep.failed += 1
        model = event.data.get("model") or "-"
        entry = self.sweep.per_model.get(model)
        if entry is not None:
            entry["in_flight"] = max(0, entry.get("in_flight", 0) - 1)

    def _on_worker_started(self, event) -> None:
        pid = event.source.get("pid", 0)
        self.sweep.workers[pid] = {"started_at": event.at, "alive": True}

    def _on_worker_exited(self, event) -> None:
        workers = self.sweep.workers
        pid = event.source.get("pid", 0)
        entry = workers.setdefault(pid, {"started_at": event.at})
        entry["alive"] = False
        entry["exited_at"] = event.at
        entry["drained"] = bool(event.data.get("drained", False))
        if len(workers) > 256:
            # Bounded: drop the oldest exited workers (live ones stay).
            exited = sorted(
                (pid for pid, e in workers.items() if not e.get("alive")),
                key=lambda pid: workers[pid].get("exited_at", 0.0),
            )
            for stale_pid in exited[: len(workers) - 256]:
                workers.pop(stale_pid, None)

    # serving health
    def _on_endpoint_health(self, event) -> None:
        name = event.data.get("endpoint", "?")
        shard = int(event.source.get("shard", 0))
        state = self.endpoint(name)
        state.latency_budget_ms = float(
            event.data.get("latency_budget_ms", state.latency_budget_ms)
        )
        state.shards[shard] = {
            "at": event.at,
            # Local monotonic arrival stamp: drives staleness reaping
            # (the wall ``at`` is display/merge metadata only).
            "seen_mono": _mono(),
            "requests": event.data.get("requests", 0),
            "images": event.data.get("images", 0),
            "rejected_images": event.data.get("rejected_images", 0),
            "throughput": event.data.get("throughput_images_per_s", 0.0),
            "goodput": event.data.get("goodput_images_per_s", 0.0),
            "recent_p99_ms": event.data.get("recent_p99_ms", 0.0),
            "pressure": event.data.get("pressure", 0.0),
            "latency": event.data.get("latency"),
        }
        level = event.data.get("level")
        if level is not None:
            state.shard_timeline(shard).observe(int(level), at=event.at)

    def _on_rung_transition(self, event) -> None:
        name = event.data.get("endpoint", "?")
        shard = int(event.source.get("shard", 0))
        self.endpoint(name).shard_timeline(shard).observe(
            int(event.data.get("to_level", 0)),
            at=event.at,
            reason=event.data.get("reason"),
            pressure=event.data.get("pressure"),
        )

    def _on_shed(self, event) -> None:
        name = event.data.get("endpoint", "?")
        self.endpoint(name).shed_images += int(event.data.get("images", 0))

    def _on_replica_respawn(self, event) -> None:
        name = event.data.get("endpoint", "?")
        self.endpoint(name).respawns += 1

    # alert lifecycle
    @staticmethod
    def _alert_entry(event) -> dict:
        entry = {
            key: event.data.get(key)
            for key in (
                "rule", "key", "status", "severity", "field",
                "value", "threshold", "message", "duration_s",
            )
            if event.data.get(key) is not None
        }
        entry["at"] = event.at
        return entry

    def _on_alert_fired(self, event) -> None:
        entry = self._alert_entry(event)
        identity = f"{entry.get('rule', '?')}|{entry.get('key', '-')}"
        self._alerts_active[identity] = entry
        self._alerts_active.move_to_end(identity)
        while len(self._alerts_active) > 256:  # bounded like every fold
            self._alerts_active.popitem(last=False)
        self._alerts_recent.append(entry)
        self.alerts_fired += 1

    def _on_alert_resolved(self, event) -> None:
        entry = self._alert_entry(event)
        identity = f"{entry.get('rule', '?')}|{entry.get('key', '-')}"
        self._alerts_active.pop(identity, None)
        self._alerts_recent.append(entry)
        self.alerts_resolved += 1

    # request tracing
    def _on_span(self, event) -> None:
        trace_id = event.data.get("trace_id")
        if not trace_id:
            return
        self.spans_seen += 1
        spans = self._traces.get(trace_id)
        if spans is None:
            spans = self._traces[trace_id] = []
        else:
            # A trace receiving spans is live; keep it away from eviction.
            self._traces.move_to_end(trace_id)
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
        if len(spans) < self.max_spans_per_trace:
            spans.append(dict(event.data))

    def trace_summaries(self, limit: int = 32) -> list[dict]:
        """Newest-first one-line summaries of the folded traces."""
        # Imported lazily, same cycle-avoidance as merge_latency_payloads.
        from repro.telemetry.tracing import group_spans, summarize_trace

        with self._lock:
            traces = [
                (trace_id, list(spans))
                for trace_id, spans in self._traces.items()
            ]
        summaries = [
            summarize_trace(trace_id, group_spans(spans).get(trace_id, []))
            for trace_id, spans in traces
        ]
        summaries.sort(key=lambda s: s.get("start") or 0.0, reverse=True)
        return summaries[: max(0, int(limit))]

    def trace_spans(self, trace_id: str) -> list[dict]:
        """All folded spans of one trace (deduped, start-ordered)."""
        from repro.telemetry.tracing import group_spans

        trace_id = str(trace_id).strip().lower()
        with self._lock:
            spans = list(self._traces.get(trace_id, []))
        return group_spans(spans).get(trace_id, [])

    def _on_coordinator_recommendation(self, event) -> None:
        name = event.data.get("endpoint", "?")
        self.coordinator[name] = {
            "at": event.at,
            "level": event.data.get("level"),
            "shard_levels": event.data.get("shard_levels"),
            "reason": event.data.get("reason"),
        }

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "at": _wall(),
                "events_seen": self.events_seen,
                "sweep": self.sweep.snapshot(),
                "endpoints": {
                    name: state.snapshot()
                    for name, state in sorted(self.endpoints.items())
                },
                "coordinator": {
                    name: dict(entry)
                    for name, entry in sorted(self.coordinator.items())
                },
                "alerts": {
                    "active": [
                        dict(entry) for entry in self._alerts_active.values()
                    ],
                    "recent": [dict(entry) for entry in self._alerts_recent],
                    "fired": self.alerts_fired,
                    "resolved": self.alerts_resolved,
                },
                "traces": {
                    "spans_seen": self.spans_seen,
                    "count": len(self._traces),
                },
            }
