"""Remote sweep executors: lease points elsewhere, reduce bit-identically.

The pair that turns ``run_sweep`` multi-machine:

* :class:`SweepHub` (parent side) embeds a
  :class:`~repro.cluster.agent.ClusterAgent` whose ``points`` space *is*
  the parent's content-addressed :class:`~repro.eval.sweep.PointStore`
  directory, offers pending affinity groups to the agent's
  :class:`~repro.cluster.agent.WorkLedger`, and drains: waiting while
  live workers hold leases, recycling the leases of dead or partitioned
  nodes.  Whatever nobody computed, the parent recomputes serially at
  collection time -- a dying node degrades the sweep, never fails it
  (the same contract as a crashed fork worker).
* :class:`RemoteWorker` (the ``repro.cli worker --connect`` process)
  leases groups, rebuilds the :class:`~repro.eval.sweep.SweepPoint` from
  each spec, evaluates it with a normal
  :class:`~repro.eval.sweep.SweepContext` whose store is a
  :class:`RemotePointStore` -- saves become ``doc_put`` frames landing
  as ordinary store entries in the parent's directory, stamped with the
  parent's session id -- and streams its telemetry through a
  :class:`~repro.cluster.transport.RemoteSpoolWriter` into the parent's
  spool.  A heartbeat thread keeps the worker live in the roster while
  a long point computes.

Bit-identical reduction holds by construction: store entries carry the
JSON-normalized payload whichever process computed them, and the parent
still collects every payload from its own store in declaration order.
"""

from __future__ import annotations

import threading
import time

from repro.cluster.agent import ClusterAgent
from repro.cluster.documents import DocumentCorrupt
from repro.cluster.transport import (
    RemoteSpoolWriter,
    SocketTransport,
    TransportError,
)

#: Spaces every sweep hub serves.
POINTS_SPACE = "points"
TELEMETRY_SPACE = "telemetry"


class RemotePointStore:
    """The :class:`~repro.eval.sweep.PointStore` API over a transport.

    Entries keep the exact ``{"spec", "session", "result"}`` schema, so
    the parent's local store reads a remotely-computed point exactly as
    one it wrote itself.
    """

    def __init__(self, transport, space: str = POINTS_SPACE):
        self.transport = transport
        self.space = space
        self.budget = None
        self.refused_writes = 0

    def _name(self, point) -> str:
        return f"{point.key}.json"

    def load(self, point):
        try:
            entry = self.transport.doc_get(self.space, self._name(point))
        except (DocumentCorrupt, TransportError, OSError):
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            return None
        return entry["result"], entry.get("session", "")

    def save(self, point, payload: dict, session_id: str) -> dict:
        from repro.eval.sweep import _normalize

        normalized = _normalize(payload)
        entry = {
            "spec": point.spec(),
            "session": session_id,
            "result": normalized,
        }
        try:
            self.transport.doc_put(self.space, self._name(point), entry)
        except (TransportError, OSError):
            # Same degrade as a full local disk: the normalized payload
            # still flows, only persistence is lost.
            self.refused_writes += 1
        return normalized

    def discard(self, point) -> None:
        try:
            self.transport.doc_delete(self.space, self._name(point))
        except (TransportError, OSError):
            pass


class SweepHub:
    """The parent-side hub: an embedded agent + lease-drain orchestration."""

    def __init__(
        self,
        agent: ClusterAgent,
        *,
        connect_grace_s: float = 10.0,
        poll_s: float = 0.05,
        trace_id: str | None = None,
        root_span_id: str | None = None,
    ):
        self.agent = agent
        self.connect_grace_s = float(connect_grace_s)
        self.poll_s = float(poll_s)
        self.offered_groups = 0
        self.offered_points = 0
        #: The distributed trace this hub's sweep runs under.  Workers
        #: adopt it from ``hello`` meta, so their lease spans land in the
        #: parent's merged spool with the same trace id -- the sweep-side
        #: analog of serving's ``X-Trace-Id`` propagation.
        self.trace_id = trace_id
        self.root_span_id = root_span_id
        self._started_wall = time.time()

    @classmethod
    def create(
        cls,
        session,
        listen: str = "127.0.0.1:0",
        telemetry_dir: str | None = None,
        stale_after_s: float = 5.0,
        connect_grace_s: float = 10.0,
        trace_id: str | None = None,
    ) -> "SweepHub":
        """A hub for one :class:`~repro.eval.sweep.SweepSession`.

        The agent's ``points`` space is the session store's directory;
        ``telemetry_dir`` (when the caller attached a spool) lets remote
        workers stream events into the same merged stream.  The hub runs
        under one trace (``trace_id`` or a freshly minted one) that every
        connecting worker inherits.
        """
        from repro.cluster.transport import parse_address
        from repro.telemetry.tracing import new_span_id, new_trace_id

        host, port = parse_address(listen)
        session.store.dir.mkdir(parents=True, exist_ok=True)
        spaces = {POINTS_SPACE: str(session.store.dir)}
        if telemetry_dir:
            spaces[TELEMETRY_SPACE] = str(telemetry_dir)
        agent = ClusterAgent(
            spaces,
            host=host,
            port=port,
            node="sweep-hub",
            stale_after_s=stale_after_s,
        )
        trace_id = trace_id or new_trace_id()
        root_span_id = new_span_id()
        agent.meta = {
            "kind": "sweep",
            "session": session.id,
            "scale": session.scale,
            "resume": bool(session.resume),
            "telemetry": TELEMETRY_SPACE in spaces,
            "trace_id": trace_id,
            "span_id": root_span_id,
        }
        agent.start_in_thread()
        return cls(
            agent,
            connect_grace_s=connect_grace_s,
            trace_id=trace_id,
            root_span_id=root_span_id,
        )

    @property
    def address(self) -> tuple[str, int]:
        return self.agent.address

    def offer(self, groups: list[list]) -> int:
        """Offer affinity groups of points to the ledger (specs on the wire)."""
        for group in groups:
            if not group:
                continue
            self.agent.ledger.offer(
                [{"spec": point.spec(), "cost": point.cost} for point in group]
            )
            self.offered_groups += 1
            self.offered_points += len(group)
        return self.offered_groups

    def drain(self, clock=time.monotonic) -> dict:
        """Block until every offered lease is completed or abandoned.

        The loop's exit conditions are exactly the liveness rules: work
        still queued/leased *and* a live worker to do it -> wait; no
        live worker (and the connect grace spent) -> stop, the parent
        recomputes what is missing.  Leases held by dead nodes are
        recycled every poll so a surviving worker picks them up.
        """
        ledger, roster = self.agent.ledger, self.agent.roster
        started = clock()
        ever_live = False
        while ledger.outstanding():
            ledger.requeue_dead(roster.is_live)
            if not ledger.outstanding():
                break
            # Any member ever seen counts as a connection -- a worker that
            # leased and died *between two polls* must not leave the hub
            # waiting out the whole connect grace for a node it already had.
            if roster.members():
                ever_live = True
            if not roster.live() and (
                ever_live or clock() - started >= self.connect_grace_s
            ):
                break
            time.sleep(self.poll_s)
        summary = dict(ledger.snapshot())
        summary["abandoned"] = ledger.queued() + ledger.leased()
        summary["workers_seen"] = len(roster.members())
        return summary

    def close(self) -> None:
        if self.trace_id is not None:
            # The hub's root span closes when the hub does: every worker
            # lease span published under this trace is its child.
            from repro.telemetry import bus as telemetry_bus

            telemetry_bus.publish(
                "span",
                trace_id=self.trace_id,
                span_id=self.root_span_id,
                parent_id=None,
                name="sweep_hub",
                start=self._started_wall,
                duration_ms=(time.time() - self._started_wall) * 1000.0,
                status="ok",
                offered_groups=self.offered_groups,
                offered_points=self.offered_points,
            )
        self.agent.stop()


class RemoteWorker:
    """One leasing executor process (``repro.cli worker --connect``)."""

    def __init__(
        self,
        address,
        *,
        node: str | None = None,
        heartbeat_s: float = 1.0,
        idle_poll_s: float = 0.2,
        max_idle_s: float | None = None,
        transport: SocketTransport | None = None,
    ):
        self.transport = transport or SocketTransport(
            address, node=node, role="sweep-worker"
        )
        self.heartbeat_s = float(heartbeat_s)
        self.idle_poll_s = float(idle_poll_s)
        #: Exit after this long with no work (``None`` = stay resident
        #: until the hub goes away).
        self.max_idle_s = max_idle_s
        self.completed_points = 0
        self.completed_groups = 0
        self.failed_groups = 0

    def _start_heartbeat(self) -> threading.Event:
        stop = threading.Event()

        def beat():
            while not stop.wait(self.heartbeat_s):
                try:
                    self.transport.heartbeat()
                except (TransportError, OSError):
                    # The work loop notices the dead hub on its next call.
                    pass

        thread = threading.Thread(
            target=beat, name="cluster-heartbeat", daemon=True
        )
        thread.start()
        return stop

    def _build_context(self, meta: dict):
        """A sweep context evaluating into the *parent's* store identity."""
        from repro.eval.sweep import SweepContext, SweepSession

        session = SweepSession(
            scale=str(meta.get("scale", "fast")),
            workers=1,
            resume=bool(meta.get("resume", False)),
        )
        session.id = str(meta.get("session", session.id))
        session.store = RemotePointStore(self.transport)
        return SweepContext(session)

    def _publish_lease_span(
        self,
        trace_id,
        parent_span,
        lease: dict,
        points: int,
        started_wall: float,
        status: str = "ok",
    ) -> None:
        """One ``span`` event per evaluated lease group (hub trace child).

        Published on the local bus *after* the spool sink is attached, so
        it streams through the :class:`RemoteSpoolWriter` into the
        parent's merged spool and folds into the hub's trace there.
        """
        if not trace_id:
            return
        from repro.telemetry import bus as telemetry_bus
        from repro.telemetry.tracing import new_span_id

        telemetry_bus.publish(
            "span",
            trace_id=str(trace_id),
            span_id=new_span_id(),
            parent_id=str(parent_span) if parent_span else None,
            name="remote_lease",
            start=started_wall,
            duration_ms=(time.time() - started_wall) * 1000.0,
            status=status,
            lease=lease.get("lease"),
            points=points,
            node=self.transport.node,
        )

    def run(self) -> dict:
        """Lease and evaluate until the hub goes away (or idle expiry)."""
        # Point runners register on import; without this the worker would
        # refuse every kind the parent offers.
        import repro.eval.experiments  # noqa: F401
        from repro.eval.sweep import point_from_spec
        from repro.telemetry import bus as telemetry_bus

        hello = self.transport.hello()
        meta = hello.get("meta", {})
        context = self._build_context(meta)
        # Adopt the hub's trace: every frame this worker sends is stamped
        # with it, and each lease evaluation publishes a child span of the
        # hub's root -- same trace id on both sides of the machine gap.
        trace_id = meta.get("trace_id")
        parent_span = meta.get("span_id")
        if trace_id:
            self.transport.trace_id = str(trace_id)
        if meta.get("telemetry"):
            telemetry_bus.get_bus().configure_source(
                role="remote-worker", node=self.transport.node
            )
            telemetry_bus.get_bus().attach_spool_sink(
                RemoteSpoolWriter(
                    self.transport, TELEMETRY_SPACE, role="remote-worker"
                )
            )
        stop_heartbeat = self._start_heartbeat()
        idle_since: float | None = None
        try:
            while True:
                try:
                    response = self.transport.lease_next()
                except TransportError:
                    break  # hub gone: the worker's work is done
                lease = response.get("lease")
                if not lease:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.max_idle_s is not None
                        and now - idle_since >= self.max_idle_s
                    ):
                        break
                    time.sleep(self.idle_poll_s)
                    continue
                idle_since = None
                points = [
                    point_from_spec(item["spec"]) for item in lease["items"]
                ]
                lease_started = time.time()
                try:
                    for point in points:
                        context.evaluate(point)
                except Exception:  # noqa: BLE001 - a bad point, not a bad worker
                    self.failed_groups += 1
                    self._publish_lease_span(
                        trace_id, parent_span, lease, len(points),
                        lease_started, status="error",
                    )
                    try:
                        self.transport.lease_fail(lease["lease"])
                    except TransportError:
                        break
                    continue
                self.completed_points += len(points)
                self.completed_groups += 1
                self._publish_lease_span(
                    trace_id, parent_span, lease, len(points), lease_started
                )
                try:
                    self.transport.lease_done(
                        lease["lease"], [point.key for point in points]
                    )
                except TransportError:
                    break
        finally:
            stop_heartbeat.set()
            try:
                from repro.eval.experiments.common import clear_harness_cache

                clear_harness_cache()
            except Exception:  # noqa: BLE001 - shutdown must not raise
                pass
            telemetry_bus.get_bus().detach_spool()
            self.transport.close()
        return {
            "completed_points": self.completed_points,
            "completed_groups": self.completed_groups,
            "failed_groups": self.failed_groups,
        }
