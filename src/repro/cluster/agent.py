"""The node-local cluster agent: one TCP endpoint per shared-state hub.

A :class:`ClusterAgent` is a stdlib-asyncio TCP server that exposes a
set of named *spaces* (each mapped to a host directory) to remote
processes over length-prefixed JSON frames: document GET/PUT/LIST/DELETE
(the :class:`~repro.cluster.documents.DocumentStore` wire backend),
spool append (remote telemetry writers), membership (hello/heartbeat/
members against a :class:`~repro.cluster.membership.MembershipRoster`),
and work leases (a :class:`WorkLedger` of
:class:`~repro.eval.sweep.SweepPoint` groups for remote sweep
executors).

Because a space is just a directory, everything an agent serves is
bit-compatible with the local substrate: a remote ``doc_put`` lands as
the same atomic-rename JSON file a local publisher would have written,
and a remote spool append extends the same JSONL files a local
:class:`~repro.cluster.spool.SpoolFollower` merges.  The parent process
embeds an agent (:meth:`ClusterAgent.start_in_thread`) to become a hub;
``repro.cli agent`` runs one standalone.

Every request carrying a node identity beats the roster, so a worker
that is busy computing still proves liveness with its heartbeat thread
-- and a worker that dies (or is partitioned) goes stale within one
horizon, at which point its leases are recycled.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from repro.cluster.documents import (
    QOS_STALE_AFTER_S,
    DocumentCorrupt,
    atomic_write_json,
)
from repro.cluster.membership import MembershipRoster
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    encode_frame,
    safe_name,
)


class WorkLedger:
    """A lease queue of work groups (lists of JSON-able items).

    ``offer`` enqueues a group; ``lease`` hands the next group to a
    node; ``complete`` retires a lease (only by its owner);
    ``requeue_dead`` returns the leases of dead nodes to the queue so a
    live worker -- or, ultimately, the parent's serial recompute -- picks
    them up.  ``fail`` abandons a lease terminally (a runner that raised
    deterministically must not ping-pong between workers; the parent
    recomputes it).
    """

    def __init__(self, clock=time.time):
        self.clock = clock
        self._lock = threading.Lock()
        self._queue: list[tuple[int, list]] = []
        self._leases: dict[int, dict] = {}
        self._next_group = 0
        self._next_lease = 0
        self.completed_groups = 0
        self.failed_groups = 0
        self.recycled_leases = 0

    def offer(self, items: list) -> int:
        with self._lock:
            self._next_group += 1
            group = self._next_group
            self._queue.append((group, list(items)))
            return group

    def lease(self, node: str) -> dict | None:
        with self._lock:
            if not self._queue:
                return None
            group, items = self._queue.pop(0)
            self._next_lease += 1
            lease = {
                "lease": self._next_lease,
                "group": group,
                "items": items,
                "node": str(node),
                "leased_at": self.clock(),
            }
            self._leases[lease["lease"]] = lease
            return {"lease": lease["lease"], "group": group, "items": items}

    def complete(self, lease_id: int, node: str) -> bool:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None or lease["node"] != str(node):
                # A recycled lease completed late by a returned node: the
                # results are content-addressed, so the store is still
                # consistent -- only the lease bookkeeping refuses.
                return False
            del self._leases[lease_id]
            self.completed_groups += 1
            return True

    def fail(self, lease_id: int, node: str) -> bool:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None or lease["node"] != str(node):
                return False
            del self._leases[lease_id]
            self.failed_groups += 1
            return True

    def requeue_dead(self, is_live) -> int:
        """Return the leases of dead nodes to the queue head."""
        with self._lock:
            recycled = 0
            for lease_id in list(self._leases):
                lease = self._leases[lease_id]
                if not is_live(lease["node"]):
                    del self._leases[lease_id]
                    self._queue.insert(0, (lease["group"], lease["items"]))
                    recycled += 1
            self.recycled_leases += recycled
            return recycled

    def outstanding(self) -> bool:
        with self._lock:
            return bool(self._queue or self._leases)

    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    def leased(self) -> int:
        with self._lock:
            return len(self._leases)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._queue),
                "leased": len(self._leases),
                "completed": self.completed_groups,
                "failed": self.failed_groups,
                "recycled": self.recycled_leases,
            }


class ClusterAgent:
    """One node's shared-state endpoint (see module docstring)."""

    def __init__(
        self,
        spaces: dict,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        node: str = "hub",
        stale_after_s: float = QOS_STALE_AFTER_S,
        clock=time.time,
    ):
        self.spaces = {name: str(path) for name, path in spaces.items()}
        for directory in self.spaces.values():
            os.makedirs(directory, exist_ok=True)
        self.host = host
        self.port = int(port)
        self.node = node
        self.clock = clock
        self.roster = MembershipRoster(stale_after_s=stale_after_s, clock=clock)
        self.ledger = WorkLedger(clock=clock)
        #: Handed to every ``hello`` (the sweep hub puts its session id,
        #: scale and resume policy here so workers evaluate into the same
        #: store identity).
        self.meta: dict = {}
        self.address: tuple[str, int] | None = None
        self.frames = 0
        self.errors = 0
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._spool_lock = threading.Lock()

    # -- request handling --------------------------------------------------
    def _space_dir(self, request: dict) -> str:
        space = str(request.get("space", ""))
        try:
            return self.spaces[space]
        except KeyError:
            raise ValueError(f"unknown space: {space!r}") from None

    def _beat(self, request: dict) -> None:
        node = request.get("node")
        if node:
            self.roster.beat(
                str(node),
                host=request.get("host"),
                pid=request.get("pid"),
                role=request.get("role"),
                info=request.get("info"),
            )

    def handle(self, request: dict) -> dict:
        """Dispatch one request document to its op (errors become
        ``ok: false`` responses -- a bad request must not kill the
        connection, let alone the agent)."""
        try:
            return self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - refused, not fatal
            self.errors += 1
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        self._beat(request)
        if op == "ping":
            return {"ok": True, "node": self.node, "at": self.clock()}
        if op == "hello":
            return {
                "ok": True,
                "node": self.node,
                "spaces": sorted(self.spaces),
                "meta": dict(self.meta),
            }
        if op == "heartbeat":
            return {"ok": True}
        if op == "members":
            return {"ok": True, "members": [
                member.document() for member in self.roster.members()
            ]}
        if op == "doc_put":
            directory = self._space_dir(request)
            name = safe_name(str(request.get("name", "")))
            document = request.get("document")
            if not isinstance(document, dict):
                raise ValueError("document must be a JSON object")
            atomic_write_json(directory, name, document)
            return {"ok": True}
        if op == "doc_get":
            directory = self._space_dir(request)
            name = safe_name(str(request.get("name", "")))
            try:
                with open(
                    os.path.join(directory, name), encoding="utf-8"
                ) as handle:
                    document = json.load(handle)
                if not isinstance(document, dict):
                    raise DocumentCorrupt(name)
            except OSError:
                return {"ok": True, "document": None}
            except (ValueError, DocumentCorrupt):
                return {"ok": True, "document": None, "corrupt": True}
            return {"ok": True, "document": document}
        if op == "doc_list":
            directory = self._space_dir(request)
            try:
                names = os.listdir(directory)
            except OSError:
                names = []
            return {"ok": True, "names": sorted(
                name for name in names
                if name.endswith(".json") and not name.startswith(".")
            )}
        if op == "doc_delete":
            directory = self._space_dir(request)
            name = safe_name(str(request.get("name", "")))
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass
            return {"ok": True}
        if op == "doc_size":
            directory = self._space_dir(request)
            name = safe_name(str(request.get("name", "")))
            try:
                size = os.path.getsize(os.path.join(directory, name))
            except OSError:
                size = 0
            return {"ok": True, "size": size}
        if op == "spool_append":
            directory = self._space_dir(request)
            writer = safe_name(str(request.get("writer", "")), suffix=".jsonl")
            lines = request.get("lines")
            if not isinstance(lines, list):
                raise ValueError("lines must be a list")
            for line in lines:
                if not isinstance(line, str) or "\n" in line:
                    raise ValueError("spool lines must be newline-free strings")
                json.loads(line)  # refuse garbage before it hits the spool
            with self._spool_lock:
                with open(
                    os.path.join(directory, writer), "a", encoding="utf-8"
                ) as handle:
                    for line in lines:
                        handle.write(line + "\n")
                    handle.flush()
            return {"ok": True, "appended": len(lines)}
        if op == "lease_next":
            self.ledger.requeue_dead(self.roster.is_live)
            lease = self.ledger.lease(str(request.get("node", "")))
            return {"ok": True, "lease": lease}
        if op == "lease_done":
            accepted = self.ledger.complete(
                int(request.get("lease", 0)), str(request.get("node", ""))
            )
            return {"ok": True, "accepted": accepted}
        if op == "lease_fail":
            accepted = self.ledger.fail(
                int(request.get("lease", 0)), str(request.get("node", ""))
            )
            return {"ok": True, "accepted": accepted}
        raise ValueError(f"unknown op: {op!r}")

    # -- the asyncio server ------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    break  # hostile length prefix: drop the connection
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    request = json.loads(body.decode("utf-8"))
                    if not isinstance(request, dict):
                        raise ValueError("request is not a JSON object")
                except ValueError:
                    self.errors += 1
                    break  # unframeable garbage: the peer is broken
                self.frames += 1
                response = self.handle(request)
                try:
                    writer.write(encode_frame(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        except asyncio.CancelledError:
            pass  # stop() cancels live connection handlers
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    async def start(self) -> tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- embedding ---------------------------------------------------------
    def start_in_thread(self) -> tuple[str, int]:
        """Run the agent on a daemon thread; returns the bound address.

        How a parent process becomes a hub without owning an event loop:
        the sweep orchestrator and tests embed the agent this way.
        """
        def run():
            try:
                asyncio.run(self.serve_forever())
            except asyncio.CancelledError:
                pass  # stop() cancels serve_forever to unwind the loop

        self._thread = threading.Thread(
            target=run, name=f"cluster-agent-{self.node}", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("cluster agent failed to start")
        return self.address

    def stop(self) -> None:
        loop, server = self._loop, self._server
        if loop is not None and server is not None:
            def shutdown():
                server.close()
                # Cancel serve_forever so asyncio.run unwinds the thread.
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            try:
                loop.call_soon_threadsafe(shutdown)
            except RuntimeError:  # pragma: no cover - loop already dead
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def snapshot(self) -> dict:
        return {
            "node": self.node,
            "address": list(self.address) if self.address else None,
            "spaces": sorted(self.spaces),
            "frames": self.frames,
            "errors": self.errors,
            "members": self.roster.snapshot()["members"],
            "ledger": self.ledger.snapshot(),
        }
